"""CLI tests: exit codes, report format, rule selection — the contract CI
composes with (``repro-lint`` exits non-zero iff findings survive)."""

from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURE_TREE = Path(__file__).parent / "fixtures" / "tree"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_exit_zero_and_clean_banner_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("def fine():\n    return 1\n")
    assert main([str(tmp_path)]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_exit_one_with_anchored_report_on_findings(capsys):
    assert main([str(FIXTURE_TREE)]) == 1
    out = capsys.readouterr().out
    # file:line:col anchors, rule ids, and a per-rule summary line.
    assert "transport/reliability.py:13:" in out
    assert "RL002" in out
    assert "repro-lint: 17 findings" in out
    assert "RL001 x4" in out and "RL005 x4" in out


def test_select_runs_only_named_rules(capsys):
    assert main(["--select", "RL002", str(FIXTURE_TREE)]) == 1
    out = capsys.readouterr().out
    assert "RL002" in out
    assert "RL001" not in out and "RL003" not in out
    assert "2 findings" in out


def test_select_unknown_rule_is_usage_error(capsys):
    assert main(["--select", "RL042", str(FIXTURE_TREE)]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert rule_id in out


@pytest.mark.parametrize("target", ["src", "benchmarks", "examples"])
def test_shipped_tree_is_clean(target, capsys):
    # The CI gate: `python -m repro.analysis src/` (and friends) exit 0.
    assert main([str(REPO_ROOT / target)]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out
