"""repro-lint rule tests: every rule fires on its planted fixture violation,
respects ``# repro-lint: ignore[...]``, and stays silent on clean code.

The fixture tree under ``fixtures/tree`` mirrors the repository layout
(``sim/``, ``transport/``, ``core/``, ``matching/``, ``deploy/``) so the
path-scoping half of every rule is exercised alongside its AST half.
"""

from pathlib import Path

from repro.analysis import ALL_RULES, Analyzer
from repro.analysis.engine import ENGINE_RULE_ID
from repro.analysis.rules import (
    CodecSymmetryRule,
    ForkSafetyRule,
    SerialArithmeticRule,
    WallClockRule,
    ZeroCopyRule,
)

FIXTURE_TREE = Path(__file__).parent / "fixtures" / "tree"

#: Every finding the fixture tree must produce — and nothing else.
#: (relative path, line, rule id); note the deliberate pair on wire.py:38,
#: one per missing sibling of ``encode_orphan``.
EXPECTED = sorted([
    ("core/protocol.py", 17, "RL004"),          # GOSSIP not in opcode table
    ("core/workers.py", 3, "RL005"),            # direct pickle import
    ("deploy/realtime.py", 12, "RL005"),        # unguarded listener
    ("deploy/realtime.py", 30, "RL005"),        # anonymous socket
    ("matching/helpers.py", 5, "RL005"),        # transitive cloudpickle
    ("sim/clock_user.py", 7, "RL001"),          # from time import sleep
    ("sim/clock_user.py", 11, "RL001"),         # time.time()
    ("sim/clock_user.py", 15, "RL001"),         # aliased time.monotonic()
    ("sim/clock_user.py", 19, "RL001"),         # datetime.now()
    ("transport/reliability.py", 13, "RL002"),  # raw seq ordering
    ("transport/reliability.py", 17, "RL002"),  # raw seq subtraction
    ("transport/wire.py", 14, "RL003"),         # bytes() materialisation
    ("transport/wire.py", 25, "RL003"),         # b"".join off boundary
    ("transport/wire.py", 29, "RL003"),         # byte + concatenation
    ("transport/wire.py", 34, "RL003"),         # byte += concatenation
    ("transport/wire.py", 38, "RL004"),         # missing write_orphan
    ("transport/wire.py", 38, "RL004"),         # missing decode_orphan
])


def run_tree(rules=ALL_RULES):
    return Analyzer(rules,
                    known_ids=[r.rule_id for r in ALL_RULES]).run(
        [str(FIXTURE_TREE)])


def rel(finding):
    return Path(finding.path).relative_to(FIXTURE_TREE).as_posix()


def test_fixture_tree_exact_findings():
    found = sorted((rel(f), f.line, f.rule_id) for f in run_tree())
    assert found == EXPECTED


def test_all_five_rules_fire_and_every_finding_is_anchored():
    findings = run_tree()
    assert {f.rule_id for f in findings} == {
        "RL001", "RL002", "RL003", "RL004", "RL005"}
    for finding in findings:
        assert finding.line > 0 and finding.col > 0
        assert f":{finding.line}:" in finding.render()


def test_rules_run_independently():
    # --select semantics: a single rule over the tree reports only its id.
    for rule, expected_count in ((WallClockRule(), 4),
                                 (SerialArithmeticRule(), 2),
                                 (ZeroCopyRule(), 4),
                                 (CodecSymmetryRule(), 3),
                                 (ForkSafetyRule(), 4)):
        findings = run_tree([rule])
        assert {f.rule_id for f in findings} == {rule.rule_id}
        assert len(findings) == expected_count


def test_suppressions_respected():
    # clock_user.py suppresses two sleeps (same line + line above);
    # reliability/wire/deploy each suppress one planted violation.
    found = {(rel(f), f.line) for f in run_tree()}
    assert ("sim/clock_user.py", 23) not in found
    assert ("sim/clock_user.py", 25) not in found
    assert ("transport/reliability.py", 22) not in found
    assert ("transport/wire.py", 20) not in found
    assert ("deploy/realtime.py", 25) not in found


def test_exemptions_respected():
    # sim/kernel.py is the designated wall-clock seam; deploy/ may read
    # the real clock; range checks against literal/UPPER bounds are not
    # serial comparisons; encode_* functions are the join boundary.
    found = {rel(f) for f in run_tree()}
    assert "sim/kernel.py" not in found
    clock_lines = {f.line for f in run_tree()
                   if rel(f) == "deploy/realtime.py"}
    assert 8 not in clock_lines                  # tick() reads time.time()
    serial_lines = {f.line for f in run_tree()
                    if rel(f) == "transport/reliability.py"}
    assert serial_lines == {13, 17}
    wire_lines = {f.line for f in run_tree()
                  if rel(f) == "transport/wire.py" and f.rule_id == "RL003"}
    assert wire_lines == {14, 25, 29, 34}        # not encode_thing's join


def test_finding_messages_name_the_remedy():
    by_rule = {}
    for finding in run_tree():
        by_rule.setdefault(finding.rule_id, finding.message)
    assert "scheduler clock" in by_rule["RL001"]
    assert "serial_lt" in by_rule["RL002"]
    assert "send boundary" in by_rule["RL003"]
    assert "sibling" in by_rule["RL004"] or "opcode" in by_rule["RL004"]
    assert "pickle" in by_rule["RL005"] or "set_inheritable" in by_rule["RL005"]


def test_transitive_pickle_finding_names_the_chain():
    (finding,) = [f for f in run_tree() if rel(f) == "matching/helpers.py"]
    assert "matching/plan.py -> " in finding.message
    assert finding.message.count("matching/helpers.py") == 1


def test_unknown_suppression_id_is_reported(tmp_path):
    source = tmp_path / "module.py"
    source.write_text("x = 1  # repro-lint: ignore[RL999]\n")
    (finding,) = Analyzer(ALL_RULES).run([str(tmp_path)])
    assert finding.rule_id == ENGINE_RULE_ID
    assert "RL999" in finding.message


def test_syntax_error_is_a_finding_not_a_crash(tmp_path):
    source = tmp_path / "broken.py"
    source.write_text("def broken(:\n    pass\n")
    findings = Analyzer(ALL_RULES).run([str(tmp_path)])
    assert [f.rule_id for f in findings] == [ENGINE_RULE_ID]
    assert "syntax error" in findings[0].message


def test_docstring_mention_of_suppression_syntax_does_not_suppress(tmp_path):
    # Prose about the ignore[] syntax (like this repo's own docstrings)
    # must neither suppress findings nor trip the unknown-id audit.
    source = tmp_path / "sim" / "doc.py"
    source.parent.mkdir()
    source.write_text(
        '"""Suppress with # repro-lint: ignore[RLxyz] on the line."""\n'
        "import time\n"
        "\n"
        "def now():\n"
        "    return time.time()\n")
    findings = Analyzer(ALL_RULES).run([str(tmp_path)])
    assert [(f.rule_id, f.line) for f in findings] == [("RL001", 5)]


def test_single_file_argument_keeps_directory_scoping(tmp_path):
    # Passing transport/wire.py as a file must still scope RL003 to it.
    findings = Analyzer(ALL_RULES).run(
        [str(FIXTURE_TREE / "transport" / "wire.py")])
    assert {f.rule_id for f in findings} == {"RL003", "RL004"}
    # ...and sim/kernel.py stays exempt even when named directly.
    assert Analyzer(ALL_RULES).run(
        [str(FIXTURE_TREE / "sim" / "kernel.py")]) == []


def test_real_tree_is_clean():
    # The acceptance criterion: the shipped source tree has no findings.
    src = Path(__file__).resolve().parents[2] / "src"
    assert Analyzer(ALL_RULES).run([str(src)]) == []
