"""RL001 fixture: the exempt wall-clock seam (no findings expected)."""

import time


class RealtimeScheduler:
    def now(self) -> float:
        return time.monotonic()

    def block(self, timeout: float) -> None:
        time.sleep(timeout)
