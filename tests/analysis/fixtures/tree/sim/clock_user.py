"""RL001 fixture: sim-path code touching the wall clock (planted bugs)."""

import time
import time as wallclock

from datetime import datetime
from time import sleep                                          # RL001: banned from-import


def read_clock() -> float:
    return time.time()                                          # RL001


def read_monotonic() -> float:
    return wallclock.monotonic()                                # RL001


def stamp() -> object:
    return datetime.now()                                       # RL001


def nap() -> None:
    time.sleep(0.1)  # repro-lint: ignore[RL001] fixture: suppressed on line
    # repro-lint: ignore[RL001] fixture: suppressed from the line above
    time.sleep(0.2)


def fine(scheduler) -> float:
    return scheduler.now()
