"""RL003/RL004 fixture: copies off the send boundary, codec drift."""


def encode_thing(value: bytes) -> bytes:
    return b"".join([b"\x01", value])   # exempt: encode_* is the boundary


def write_thing(out: list, value: bytes) -> None:
    out.append(b"\x01")
    out.append(value)


def decode_thing(buf, offset: int = 0):
    body = bytes(buf[offset:])                                  # RL003
    return body, len(buf)


def decode_quietly(buf, offset: int = 0):
    # repro-lint: ignore[RL003] fixture: deliberate escape copy
    body = bytes(buf[offset:])
    return body, len(buf)


def frame_pair(left: bytes, right: bytes) -> bytes:
    return b"".join((left, right))                              # RL003


def stamp_header(body: bytes) -> bytes:
    return b"\xa5" + body                                       # RL003


def grow(payload: bytes) -> bytes:
    total = b""
    total += encode_thing(payload)                              # RL003
    return total


def encode_orphan(value: int) -> bytes:                         # RL004 x2
    return value.to_bytes(4, "big")


def chunk_constants() -> bytes:
    return bytes((1, 2, 3))             # exempt: constant construction
