"""RL002 fixture: raw seq/ack arithmetic in transport/ (planted bugs)."""

_SEQ_MOD = 2 ** 32
WINDOW = 32


def serial_lt(a: int, b: int) -> bool:
    half = _SEQ_MOD // 2
    return (a < b and b - a < half) or (a > b and a - b > half)


def misordered(seq: int, expected_seq: int) -> bool:
    return seq < expected_seq                                   # RL002


def window_gap(next_seq: int, last_ack: int) -> int:
    return next_seq - last_ack                                  # RL002


def suppressed_gap(next_seq: int, last_ack: int) -> int:
    # repro-lint: ignore[RL002] fixture: wrap handled by caller
    return next_seq - last_ack


def range_check(seq: int) -> bool:
    return 0 <= seq <= 0xFFFFFFFF       # exempt: literal-bound validation


def mod_check(initial_seq: int) -> bool:
    return 0 < initial_seq < _SEQ_MOD   # exempt: UPPER_CASE-bound validation


def counter_check(dup_acks: int) -> bool:
    return dup_acks >= 3                # exempt: not a sequence number


def increment(seq: int) -> int:
    return (seq + 1) % _SEQ_MOD or 1    # exempt: addition is not ordering
