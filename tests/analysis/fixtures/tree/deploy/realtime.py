"""RL001/RL005 fixture: deploy/ may use wall-clock but must guard fds."""

import socket
import time


def tick() -> float:
    return time.time()          # exempt: deploy/ runs on real time


def make_listener():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)  # RL005
    listener.bind(("127.0.0.1", 0))
    return listener


def make_guarded_listener():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.set_inheritable(False)
    return listener


def make_suppressed_listener():
    # repro-lint: ignore[RL005] fixture: inheritance is the point here
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    return listener


def make_anonymous():
    return socket.socket(socket.AF_INET, socket.SOCK_DGRAM)      # RL005
