"""RL004 fixture: an opcode table that drifted.

===============  ==========================================
opcode           body
===============  ==========================================
PUBLISH          encoded event
DELIVER          encoded event
===============  ==========================================
"""

import enum


class BusOp(enum.IntEnum):
    PUBLISH = 1
    DELIVER = 2
    GOSSIP = 3                                                  # RL004
