"""Clean fixture: none of the rules has anything to say here."""

from matching.plan import build_plan


def relay(scheduler, plan) -> None:
    scheduler.call_later(0.5, build_plan, plan)
