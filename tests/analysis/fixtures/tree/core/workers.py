"""RL005 fixture: the worker hot path leaking pickle (planted bugs)."""

import pickle                                                   # RL005 direct

from matching.plan import build_plan


def ship(plan) -> bytes:
    return pickle.dumps(build_plan(plan))
