"""RL005 fixture: transitively reachable module importing pickle."""


def thaw(raw):
    import cloudpickle                                          # RL005 transitive
    return cloudpickle.loads(raw)
