"""RL005 fixture: reachable from workers; leaks pickle one hop deeper."""

from matching import helpers


def build_plan(raw):
    return helpers.thaw(raw)
