"""Policy deployment on discovery events (paper Section II-A)."""

import pytest

from repro.core.bus import EventBus
from repro.core.events import (
    NEW_MEMBER_TYPE,
    POLICY_DEPLOYED_TYPE,
    PURGE_MEMBER_TYPE,
)
from repro.errors import PolicyError
from repro.ids import ServiceId
from repro.matching.filters import Filter
from repro.policy.deployment import PolicyDeployer
from repro.policy.engine import PolicyEngine
from repro.policy.model import ActionSpec, ObligationPolicy


@pytest.fixture
def setup(sim):
    bus = EventBus(sim)
    engine = PolicyEngine(bus)
    deployer = PolicyDeployer(engine, bus)
    discovery = bus.local_publisher("discovery")

    def join(member_int, name, device_type):
        discovery.publish(NEW_MEMBER_TYPE, {
            "member": member_int, "name": name,
            "device_type": device_type, "address": "-"})
        sim.run_until_idle()

    def leave(member_int, name="x"):
        discovery.publish(PURGE_MEMBER_TYPE, {
            "member": member_int, "name": name, "reason": "test"})
        sim.run_until_idle()

    return sim, bus, engine, deployer, join, leave


def shared_policy(name="Shared"):
    return ObligationPolicy(name=name, event_filter=Filter.where("health.hr"),
                            actions=(ActionSpec("notify"),))


class TestSharedPolicies:
    def test_enabled_on_first_member_of_type(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        deployer.register_shared("sensor.hr", [shared_policy()])
        assert not engine.is_enabled("Shared")
        join(101, "hr-1", "sensor.hr")
        assert engine.is_enabled("Shared")

    def test_stays_enabled_with_second_member(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        deployer.register_shared("sensor.hr", [shared_policy()])
        join(101, "hr-1", "sensor.hr")
        join(102, "hr-2", "sensor.hr")
        leave(101)
        assert engine.is_enabled("Shared")

    def test_disabled_when_last_member_leaves(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        deployer.register_shared("sensor.hr", [shared_policy()])
        join(101, "hr-1", "sensor.hr")
        join(102, "hr-2", "sensor.hr")
        leave(101)
        leave(102)
        assert not engine.is_enabled("Shared")
        assert deployer.stats.retractions == 2

    def test_unrelated_device_type_does_not_enable(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        deployer.register_shared("sensor.hr", [shared_policy()])
        join(101, "pump-1", "actuator.pump")
        assert not engine.is_enabled("Shared")

    def test_deployment_event_published(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        deployed = []
        bus.subscribe_local(Filter.where(POLICY_DEPLOYED_TYPE),
                            deployed.append)
        deployer.register_shared("sensor.hr", [shared_policy()])
        join(101, "hr-1", "sensor.hr")
        assert len(deployed) == 1
        assert deployed[0].get("policies") == "Shared"


class TestPerMemberTemplates:
    def test_template_instantiated_per_member(self, setup):
        sim, bus, engine, deployer, join, leave = setup

        def template(member: ServiceId, name: str):
            return [ObligationPolicy(
                name=f"Watch-{name}",
                event_filter=Filter.where("health.hr", patient=name),
                actions=(ActionSpec("notify"),))]

        deployer.register_template("sensor.hr", template)
        join(101, "hr-1", "sensor.hr")
        join(102, "hr-2", "sensor.hr")
        assert engine.obligations() == ["Watch-hr-1", "Watch-hr-2"]

    def test_template_policies_removed_on_purge(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        deployer.register_template("sensor.hr", lambda m, n: [
            ObligationPolicy(name=f"W-{n}",
                             event_filter=Filter.where("t"),
                             actions=(ActionSpec("a"),))])
        join(101, "hr-1", "sensor.hr")
        leave(101, "hr-1")
        assert engine.obligations() == []

    def test_duplicate_template_rejected(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        deployer.register_template("t", lambda m, n: [])
        with pytest.raises(PolicyError):
            deployer.register_template("t", lambda m, n: [])

    def test_purge_of_unknown_member_ignored(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        leave(999)          # never joined; no exception

    def test_duplicate_join_event_ignored(self, setup):
        sim, bus, engine, deployer, join, leave = setup
        deployer.register_template("sensor.hr", lambda m, n: [
            ObligationPolicy(name=f"W-{n}",
                             event_filter=Filter.where("t"),
                             actions=(ActionSpec("a"),))])
        join(101, "hr-1", "sensor.hr")
        join(101, "hr-1", "sensor.hr")
        assert engine.obligations() == ["W-hr-1"]
