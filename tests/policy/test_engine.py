"""Policy engine: ECA evaluation, authorisation, runtime management."""

import pytest

from repro.core.bus import EventBus
from repro.core.events import POLICY_VIOLATION_TYPE
from repro.errors import PolicyConflictError, PolicyError
from repro.matching.filters import Constraint, Filter, Op
from repro.policy.actions import ActionExecutor
from repro.policy.engine import PolicyEngine
from repro.policy.model import (
    ActionSpec,
    AttrRef,
    AuthorisationPolicy,
    ObligationPolicy,
)


@pytest.fixture
def bus(sim):
    return EventBus(sim)


@pytest.fixture
def engine(bus):
    return PolicyEngine(bus)


def oblig(name="R", event_type="t", condition=None, actions=None,
          subject="s", target="d"):
    return ObligationPolicy(
        name=name, event_filter=Filter.where(event_type),
        condition=condition,
        actions=tuple(actions or [ActionSpec("act")]),
        subject=subject, target=target)


def command_log(bus, sim):
    log = []
    bus.subscribe_local(Filter.for_type_prefix("smc.cmd."), log.append)
    return log


class TestEvaluation:
    def test_event_triggers_action(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig())
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert [c.type for c in commands] == ["smc.cmd.act"]
        assert commands[0].get("target") == "d"

    def test_condition_gates_action(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig(
            condition=Filter([Constraint("hr", Op.GT, 100)])))
        publisher = bus.local_publisher("p")
        publisher.publish("t", {"hr": 90})
        publisher.publish("t", {"hr": 150})
        sim.run_until_idle()
        assert len(commands) == 1
        assert engine.stats.conditions_failed == 1

    def test_actions_run_in_sequence(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig(actions=[ActionSpec("first"),
                                             ActionSpec("second")]))
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert [c.type for c in commands] == ["smc.cmd.first",
                                              "smc.cmd.second"]

    def test_attr_refs_resolved_from_event(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig(actions=[
            ActionSpec("act", params=(("value", AttrRef("hr")),))]))
        bus.local_publisher("p").publish("t", {"hr": 133.5})
        sim.run_until_idle()
        assert commands[0].get("value") == 133.5

    def test_missing_attr_ref_counts_failure(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig(actions=[
            ActionSpec("act", params=(("value", AttrRef("missing")),))]))
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert commands == []
        assert engine.stats.action_failures == 1

    def test_local_handler_replaces_command_event(self, sim, bus, engine):
        commands = command_log(bus, sim)
        called = []
        engine.executor.register_handler(
            "act", lambda target, params: called.append((target, params)))
        engine.add_obligation(oblig())
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert called == [("d", {})]
        assert commands == []

    def test_action_target_override(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig(actions=[
            ActionSpec("act", target="pump")]))
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert commands[0].get("target") == "pump"


class TestAuthorisation:
    def test_negative_blocks_and_reports(self, sim, bus, engine):
        commands = command_log(bus, sim)
        violations = []
        bus.subscribe_local(Filter.where(POLICY_VIOLATION_TYPE),
                            violations.append)
        engine.add_authorisation(AuthorisationPolicy(
            "No", positive=False, subject="s", target="d",
            operations=("act",)))
        engine.add_obligation(oblig())
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert commands == []
        assert engine.stats.actions_denied == 1
        assert len(violations) == 1
        assert violations[0].get("policy") == "R"

    def test_negative_overrides_positive(self, engine):
        engine.add_authorisation(AuthorisationPolicy(
            "Yes", positive=True, subject="s", target="d",
            operations=("act",)))
        engine.add_authorisation(AuthorisationPolicy(
            "No", positive=False, subject="s", target="d",
            operations=("act",)))
        assert not engine.is_authorised("s", "d", "act")

    def test_default_allow(self, engine):
        assert engine.is_authorised("anyone", "anything", "whatever")

    def test_default_deny_mode(self, bus):
        engine = PolicyEngine(bus, default_authorise=False)
        assert not engine.is_authorised("s", "d", "act")
        engine.add_authorisation(AuthorisationPolicy(
            "Yes", positive=True, subject="s", target="d",
            operations=("act",)))
        assert engine.is_authorised("s", "d", "act")
        assert not engine.is_authorised("s", "other", "act")

    def test_wildcard_operations(self, engine):
        engine.add_authorisation(AuthorisationPolicy(
            "No", positive=False, subject="s", target="pump",
            operations=("*",)))
        assert not engine.is_authorised("s", "pump", "anything")

    def test_duplicate_authorisation_rejected(self, engine):
        auth = AuthorisationPolicy("A", positive=True, subject="s",
                                   target="d", operations=("x",))
        engine.add_authorisation(auth)
        with pytest.raises(PolicyConflictError):
            engine.add_authorisation(auth)


class TestRuntimeManagement:
    def test_disable_stops_evaluation(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig())
        engine.disable("R")
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert commands == []
        assert not engine.is_enabled("R")

    def test_enable_resumes(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig())
        engine.disable("R")
        engine.enable("R")
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert len(commands) == 1

    def test_remove_policy(self, sim, bus, engine):
        commands = command_log(bus, sim)
        engine.add_obligation(oblig())
        engine.remove_obligation("R")
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert commands == []
        assert engine.obligations() == []

    def test_duplicate_name_rejected(self, engine):
        engine.add_obligation(oblig())
        with pytest.raises(PolicyConflictError):
            engine.add_obligation(oblig())

    def test_unknown_name_rejected(self, engine):
        with pytest.raises(PolicyError):
            engine.enable("ghost")
        with pytest.raises(PolicyError):
            engine.remove_obligation("ghost")

    def test_enable_disable_idempotent(self, sim, bus, engine):
        engine.add_obligation(oblig())
        engine.enable("R")            # already enabled: no double sub
        bus.local_publisher("p").publish("t")
        sim.run_until_idle()
        assert engine.stats.events_evaluated == 1
        engine.disable("R")
        engine.disable("R")


class TestActionExecutor:
    def test_reserved_target_param_rejected(self, bus):
        executor = ActionExecutor(bus)
        with pytest.raises(PolicyError):
            executor.execute("op", "role", {"target": "smuggled"})

    def test_duplicate_handler_rejected(self, bus):
        executor = ActionExecutor(bus)
        executor.register_handler("op", lambda t, p: None)
        with pytest.raises(PolicyError):
            executor.register_handler("op", lambda t, p: None)

    def test_unregister_handler(self, sim, bus):
        executor = ActionExecutor(bus)
        executor.register_handler("op", lambda t, p: None)
        executor.unregister_handler("op")
        commands = command_log(bus, sim)
        executor.execute("op", "role", {})
        sim.run_until_idle()
        assert len(commands) == 1

    def test_command_type_helper(self, bus):
        assert ActionExecutor(bus).command_type("dose") == "smc.cmd.dose"
