"""The Ponder-lite parser."""

import pytest

from repro.errors import PolicyParseError
from repro.matching.filters import Op
from repro.policy.language import parse_policies
from repro.policy.model import AttrRef


class TestObligations:
    def test_minimal(self):
        result = parse_policies(
            'inst oblig R { on health.hr ; do notify() ; }')
        policy = result.obligation("R")
        assert policy.subject == "smc" and policy.target == "smc"
        assert policy.condition is None
        assert policy.actions[0].operation == "notify"
        assert policy.event_filter.matches({"type": "health.hr"})

    def test_full_clause_set(self):
        result = parse_policies('''
            inst oblig Tachy {
                on health.hr ;
                if hr > 120 and patient = "p-1" ;
                do notify(msg="hi", hr=$hr) -> log(sev=2) ;
                subject monitor ;
                target nurse ;
            }''')
        policy = result.obligation("Tachy")
        assert policy.subject == "monitor"
        assert policy.target == "nurse"
        assert len(policy.actions) == 2
        assert policy.condition.matches({"hr": 130, "patient": "p-1"})
        assert not policy.condition.matches({"hr": 130, "patient": "p-2"})

    def test_type_subtree(self):
        result = parse_policies('inst oblig R { on health.* ; do a() ; }')
        filt = result.obligation("R").event_filter
        assert filt.matches({"type": "health.hr"})
        assert not filt.matches({"type": "smc.cmd.x"})

    def test_any_event(self):
        result = parse_policies('inst oblig R { on * ; do a() ; }')
        assert result.obligation("R").event_filter.matches({"type": "zzz"})

    def test_all_comparison_operators(self):
        result = parse_policies('''
            inst oblig R {
                on t ;
                if a = 1 and b != 2 and c < 3 and d <= 4 and e > 5
                   and f >= 6 and g prefix "x" and h suffix "y"
                   and i contains "z" and j exists ;
                do act() ;
            }''')
        ops = {c.name: c.op for c in result.obligation("R").condition}
        assert ops == {"a": Op.EQ, "b": Op.NE, "c": Op.LT, "d": Op.LE,
                       "e": Op.GT, "f": Op.GE, "g": Op.PREFIX,
                       "h": Op.SUFFIX, "i": Op.CONTAINS, "j": Op.EXISTS}

    def test_literal_types(self):
        result = parse_policies('''
            inst oblig R {
                on t ;
                if a = 1 and b = 1.5 and c = "text" and d = true
                   and e = false and f = -3 and g = bareword ;
                do act() ;
            }''')
        values = {c.name: c.value for c in result.obligation("R").condition}
        assert values == {"a": 1, "b": 1.5, "c": "text", "d": True,
                          "e": False, "f": -3, "g": "bareword"}

    def test_action_params_and_refs(self):
        result = parse_policies(
            'inst oblig R { on t ; do act(x=1, y=$hr, z="s") ; }')
        action = result.obligation("R").actions[0]
        assert dict(action.params) == {"x": 1, "y": AttrRef("hr"), "z": "s"}

    def test_action_target_override(self):
        result = parse_policies(
            'inst oblig R { on t ; do act(target=pump, dose=1) ; }')
        action = result.obligation("R").actions[0]
        assert action.target == "pump"
        assert dict(action.params) == {"dose": 1}

    def test_comments_ignored(self):
        result = parse_policies('''
            // a line comment
            # another comment style
            inst oblig R { on t ; do a() ; }   // trailing
        ''')
        assert result.obligation("R")

    def test_missing_on_clause_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policies('inst oblig R { do a() ; }')

    def test_missing_do_clause_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policies('inst oblig R { on t ; }')

    def test_unknown_clause_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policies('inst oblig R { on t ; wat x ; do a() ; }')

    def test_error_carries_location(self):
        try:
            parse_policies('inst oblig R {\n  on t \n  do a() ; }')
        except PolicyParseError as exc:
            assert exc.line == 3       # the missing ';' is noticed at 'do'
        else:
            pytest.fail("expected a parse error")

    def test_garbage_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policies('@@@@')


class TestAuthorisations:
    def test_positive(self):
        result = parse_policies(
            'auth+ A { subject s ; target t ; action op1, op2 ; }')
        auth = result.authorisations[0]
        assert auth.positive
        assert auth.operations == ("op1", "op2")

    def test_negative(self):
        result = parse_policies(
            'auth- D { subject s ; target t ; action * ; }')
        auth = result.authorisations[0]
        assert not auth.positive
        assert auth.operations == ("*",)

    def test_wildcard_roles(self):
        result = parse_policies(
            'auth- D { subject * ; target pump ; action * ; }')
        auth = result.authorisations[0]
        assert auth.applies("anything", "pump", "dose")
        assert not auth.applies("anything", "nurse", "dose")

    def test_incomplete_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_policies('auth+ A { subject s ; }')


class TestRoles:
    def test_role_assignment(self):
        result = parse_policies('role nurse : nurse.pda, display.wall ;')
        assert result.roles.device_types("nurse") == {"nurse.pda",
                                                      "display.wall"}
        assert result.roles.roles_of("nurse.pda") == {"nurse"}

    def test_multiple_roles_merge(self):
        result = parse_policies('''
            role a : t1 ;
            role a : t2 ;
            role b : t1 ;
        ''')
        assert result.roles.device_types("a") == {"t1", "t2"}
        assert result.roles.roles_of("t1") == {"a", "b"}


class TestWholeFiles:
    def test_mixed_document(self):
        result = parse_policies('''
            role nurse : nurse.pda ;
            inst oblig A { on t1 ; do x() ; }
            auth+ P { subject s ; target t ; action x ; }
            inst oblig B { on t2 ; do y() ; }
            auth- N { subject s ; target t ; action y ; }
        ''')
        assert [p.name for p in result.obligations] == ["A", "B"]
        assert [p.name for p in result.authorisations] == ["P", "N"]

    def test_empty_document(self):
        result = parse_policies("   \n  // nothing\n")
        assert result.obligations == [] and result.authorisations == []
