"""The control plane in isolation: sensors, controllers, the manager.

End-to-end behaviour (all loops live over a full core under churn) is
pinned by the autonomic soak parametrisation and the bench gates; these
tests pin each piece's contract — what it observes, when it actuates,
and what it writes to the audit log.
"""

import pytest

from repro.autonomic import (
    AutonomicConfig,
    AutonomicManager,
    FlushController,
    MetricRegistry,
    RollingWindow,
    RttController,
    ShardRebalancer,
    build_bus_manager,
)
from repro.core.bus import EventBus
from repro.core.sharding import ShardedEventBus, ShardedMatcher, shard_index
from repro.errors import ConfigurationError
from repro.ids import service_id_from_name
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.sim.kernel import Simulator
from repro.transport.inmem import InMemoryHub
from repro.transport.packets import Packet
from repro.transport.reliability import ChannelStats, ReliableChannel

SID = service_id_from_name("autonomic-test")


def make_channel_pair(sim, delay_s, *, rto_initial=0.05, window=32):
    hub = InMemoryHub(sim, delay_s=delay_s)
    ta, tb = hub.create("tx"), hub.create("rx")
    delivered = []
    sender = ReliableChannel(ta, sim, "rx", lambda s, p: None,
                             window=window, rto_initial=rto_initial,
                             rto_max=2.0)
    receiver = ReliableChannel(tb, sim, "tx",
                               lambda s, p: delivered.append(p),
                               window=window)
    ta.set_receiver(lambda src, d: sender.handle_packet(Packet.decode(d)))
    tb.set_receiver(lambda src, d: receiver.handle_packet(Packet.decode(d)))
    return sender, receiver, delivered, hub


class TestTelemetry:
    def test_rolling_window_reductions(self):
        window = RollingWindow(capacity=3)
        assert window.last is None and window.mean() is None
        assert window.delta() == 0.0
        for t, v in ((0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0)):
            window.append(t, v)
        assert len(window) == 3                      # capacity-bounded
        assert window.last == 40.0
        assert window.mean() == 30.0
        assert window.delta() == 20.0                # 40 - 20
        assert window.rate() == pytest.approx(10.0)  # 20 over 2 s

    def test_registry_samples_and_skips_unavailable(self):
        registry = MetricRegistry(window=8)
        value = {"v": 1}
        registry.add("alpha", lambda: value["v"])
        registry.add("missing", lambda: None)
        snapshot = registry.sample(now=0.0)
        assert snapshot == {"alpha": 1.0}
        value["v"] = 5
        registry.sample(now=1.0)
        assert registry.latest("alpha") == 5.0
        assert registry.window("alpha").delta() == 4.0
        assert len(registry.window("missing")) == 0
        with pytest.raises(ConfigurationError):
            registry.add("alpha", lambda: 0)


class TestRttController:
    def test_converges_from_default_config(self):
        """One default config, two links: the loop lands the RTO just
        above each link's true RTT."""
        for rtt in (0.003, 0.2):
            sim = Simulator()
            sender, _, _, _ = make_channel_pair(sim, rtt / 2.0)
            controller = RttController(lambda: [sender])
            manager = AutonomicManager(sim, controllers=[controller],
                                       config=AutonomicConfig(tick_s=0.05))
            manager.start()
            for i in range(120):
                sim.call_at(i * (rtt / 2.0) + 0.001, sender.send, b"x" * 64)
            sim.run(120 * (rtt / 2.0) + 5.0)
            manager.stop()
            assert sender.stats.rtt_samples > 30
            assert rtt < sender.rto_initial <= 2.0 * rtt, (
                f"rtt={rtt}: rto={sender.rto_initial}")
            assert manager.actuations("rtt")

    def test_blind_backoff_breaks_the_karn_deadlock(self):
        """RTO far below the RTT: every packet retransmits before its ack
        so Karn yields no samples — the controller must back off blind
        until the estimator gets evidence, then converge."""
        sim = Simulator()
        sender, _, delivered, _ = make_channel_pair(sim, 0.1,  # 200 ms RTT
                                                    rto_initial=0.02)
        controller = RttController(lambda: [sender])
        manager = AutonomicManager(sim, controllers=[controller],
                                   config=AutonomicConfig(tick_s=0.05))
        manager.start()
        for i in range(100):
            sim.call_at(i * 0.05, sender.send, b"y" * 64)
        sim.run(10.0)
        manager.stop()
        assert len(delivered) == 100
        actions = {a.action for a in manager.actuations("rtt")}
        assert "backoff_rto" in actions and "set_rto" in actions
        assert sender.stats.rtt_samples > 0
        assert 0.2 < sender.rto_initial <= 0.4

    def test_no_actuation_without_new_evidence(self):
        sim = Simulator()
        sender, _, _, _ = make_channel_pair(sim, 0.005)
        controller = RttController(lambda: [sender])
        sender.send(b"z")
        sim.run_until_idle()
        assert controller.tick(sim.now())          # first: adapts
        assert not controller.tick(sim.now())      # same samples: silent


class _FakeTarget:
    """Duck-typed FlushController target with scriptable stats."""

    def __init__(self):
        self.flush_limit = None
        self.stats = ChannelStats()
        self.quench = False

    def transport_stats(self):
        return self.stats


class TestFlushController:
    def make(self, target, **kwargs):
        kwargs.setdefault("min_sent", 4)
        return FlushController(lambda: [target], quenched=lambda t: t.quench,
                               label=lambda t: "member", min_bytes=1024,
                               max_bytes=32768,
                               default_limit=lambda t: 4096, **kwargs)

    def test_grows_on_clean_traffic_and_caps(self):
        target = _FakeTarget()
        controller = self.make(target)
        controller.tick(0.0)                       # baseline only
        grown = []
        for tick in range(1, 6):
            target.stats.sent += 50                # lossless traffic
            acts = controller.tick(float(tick))
            grown.extend(acts)
        assert target.flush_limit == 32768         # doubled up to the cap
        assert all(a.action == "grow_flush" for a in grown)
        assert controller.tick(6.0) == []          # at cap with no traffic

    def test_shrinks_under_loss_and_recovers(self):
        target = _FakeTarget()
        controller = self.make(target)
        controller.tick(0.0)
        target.stats.sent += 100
        target.stats.retransmissions += 20         # 20% loss
        (act,) = controller.tick(1.0)
        assert act.action == "shrink_flush"
        assert target.flush_limit == 2048          # 4096 // 2
        target.stats.sent += 100
        target.stats.retransmissions += 30
        controller.tick(2.0)
        assert target.flush_limit == 1024          # floor
        target.stats.sent += 100                   # clean again
        (act,) = controller.tick(3.0)
        assert act.action == "grow_flush" and target.flush_limit == 2048

    def test_quench_shrinks_without_traffic(self):
        target = _FakeTarget()
        controller = self.make(target)
        target.quench = True
        (act,) = controller.tick(0.0)
        assert act.action == "shrink_flush" and act.detail["quenched"]
        assert target.flush_limit == 2048

    def test_disconnected_target_is_skipped(self):
        target = _FakeTarget()
        target.transport_stats = lambda: None
        controller = self.make(target)
        assert controller.tick(0.0) == []
        assert target.flush_limit is None


def build_skewed_matcher(count=64, shards=8):
    matcher = ShardedMatcher(shards)
    for index in range(count):
        filt = Filter([Constraint("ward", Op.EQ, f"w-{index % 16}"),
                       Constraint("hr", Op.GT, 40 + index % 100)])
        matcher.subscribe(Subscription(index + 1, SID, [filt]))
    return matcher


class TestShardRebalancer:
    def test_splits_the_dominant_class(self):
        matcher = build_skewed_matcher()
        rebalancer = ShardRebalancer(matcher, hot_ratio=2.0, min_fragments=8)
        (act,) = rebalancer.tick(1.0)
        assert act.action == "split_class"
        assert act.detail["bucket_name"] == "ward"
        assert act.detail["moved"] == 64
        assert max(matcher.shard_loads()) < 64
        assert rebalancer.tick(2.0) == []          # already split: settles

    def test_balanced_table_is_left_alone(self):
        matcher = ShardedMatcher(4)
        for index, name in enumerate("abcdefgh"):
            matcher.subscribe(Subscription(index + 1, SID, [
                Filter([Constraint(name, Op.EQ, index)])]))
        rebalancer = ShardRebalancer(matcher, hot_ratio=2.0, min_fragments=1)
        assert rebalancer.tick(0.0) == []

    def test_no_eq_diversity_means_no_split(self):
        """A class whose only EQ operand is one value cannot be spread —
        splitting would just move the pin to another shard."""
        matcher = ShardedMatcher(8)
        for index in range(32):
            matcher.subscribe(Subscription(index + 1, SID, [
                Filter([Constraint("ward", Op.EQ, "w-0"),
                        Constraint("hr", Op.GT, index)])]))
        rebalancer = ShardRebalancer(matcher, hot_ratio=2.0, min_fragments=8)
        assert rebalancer.tick(0.0) == []
        assert not matcher.splits()

    def test_event_sense_levels_match_work(self):
        """``sense="events"`` splits on actual per-shard match traffic —
        the per-worker load view when a WorkerPoolExecutor is attached,
        making split_class the pool's load-levelling actuator."""
        matcher = build_skewed_matcher()
        rebalancer = ShardRebalancer(matcher, hot_ratio=2.0,
                                     min_fragments=8, sense="events")
        batch = [{"ward": f"w-{index % 16}", "hr": 60 + index % 40}
                 for index in range(48)]
        # First tick only observes (a delta needs two samples), even on a
        # skewed table — events, not fragments, drive this sense.
        assert rebalancer.tick(0.0) == []
        matcher.match_batch_ids(batch)
        (act,) = rebalancer.tick(1.0)
        assert act.action == "split_class"
        assert act.detail["sense"] == "events"
        # The same traffic now spreads its match work across shards.
        before = matcher.shard_events()
        matcher.match_batch_ids(batch)
        deltas = [now - then
                  for now, then in zip(matcher.shard_events(), before)]
        assert sum(1 for delta in deltas if delta) > 1
        assert rebalancer.tick(2.0) == []          # settles once split

    def test_sense_validated(self):
        with pytest.raises(ConfigurationError):
            ShardRebalancer(ShardedMatcher(4), sense="vibes")


class TestManager:
    def test_tick_records_audit_and_samples(self):
        sim = Simulator()
        matcher = build_skewed_matcher()
        registry = MetricRegistry()
        registry.add("probe", lambda: 7)
        manager = AutonomicManager(
            sim, registry,
            [ShardRebalancer(matcher, hot_ratio=2.0, min_fragments=8)])
        fresh = manager.tick()
        assert [a.action for a in fresh] == ["split_class"]
        assert list(manager.audit) == fresh
        assert manager.actuations("rebalance") == fresh
        assert manager.actuations("rtt") == []
        assert registry.latest("probe") == 7.0
        assert manager.ticks == 1

    def test_periodic_start_stop(self):
        sim = Simulator()
        manager = AutonomicManager(sim, config=AutonomicConfig(tick_s=0.5))
        manager.start()
        with pytest.raises(ConfigurationError):
            manager.start()
        sim.run(2.6)
        assert manager.ticks == 5
        manager.stop()
        sim.run(5.0)
        assert manager.ticks == 5                  # timer cancelled

    def test_audit_is_bounded(self):
        sim = Simulator()
        matcher = build_skewed_matcher()
        manager = AutonomicManager(
            sim, None,
            [ShardRebalancer(matcher, hot_ratio=2.0, min_fragments=8)],
            config=AutonomicConfig(audit_limit=1))
        manager.tick()
        assert len(manager.audit) == 1

    def test_build_bus_manager_respects_flags(self):
        sim = Simulator()
        hub = InMemoryHub(sim)
        from repro.transport.endpoint import PacketEndpoint
        endpoint = PacketEndpoint(hub.create("core"), sim)

        sharded = ShardedEventBus(sim, 8)
        manager = build_bus_manager(sim, sharded, endpoint)
        assert {c.name for c in manager.controllers} == {
            "rtt", "flush", "rebalance"}
        assert "shard.load.0" in manager.registry.names()

        single = EventBus(sim)
        manager = build_bus_manager(
            sim, single, PacketEndpoint(hub.create("c2"), sim),
            config=AutonomicConfig(flush=False))
        assert {c.name for c in manager.controllers} == {"rtt"}
