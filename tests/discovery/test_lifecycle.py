"""Member health lifecycle: DEGRADED detection, graceful drain, capacity,
jittered backoff, and the beacon-silence watchdog.

Everything runs on the simulator + in-memory hub with the fault injector
from :mod:`repro.sim.faults`, so each scenario is deterministic.
(``sim.run(t)`` runs to *absolute* virtual time ``t``.)
"""

import dataclasses

import pytest

from repro.core.bootstrap import ProxyBootstrap
from repro.core.bus import EventBus
from repro.core.client import BusClient
from repro.core.events import (
    MEMBER_STATE_TYPE,
    NEW_MEMBER_TYPE,
    PURGE_MEMBER_TYPE,
)
from repro.discovery.agent import AgentConfig, AgentState, DiscoveryAgent
from repro.discovery.lifecycle import (
    LifecycleState,
    advance,
    can_advance,
    degraded_threshold,
)
from repro.discovery.membership import MemberRecord, MemberState
from repro.discovery.messages import LeaveIntentBody
from repro.discovery.service import DiscoveryConfig, DiscoveryService
from repro.errors import ConfigurationError, DiscoveryError
from repro.matching.filters import Filter
from repro.sim.faults import HubFaults
from repro.transport.packets import PacketType


def make_service(sim, endpoint, bus=None, authenticator=None, **config):
    defaults = dict(cell_name="cell", beacon_period_s=0.5,
                    heartbeat_period_s=0.5, silent_after_s=1.5,
                    purge_after_s=4.0, sweep_period_s=0.25)
    defaults.update(config)
    bus = bus or EventBus(sim)
    service = DiscoveryService(bus, endpoint, sim,
                               DiscoveryConfig(**defaults), authenticator)
    return service, bus


def make_agent(sim, endpoint, name="dev", **config):
    defaults = dict(name=name, device_type="service", beacon_timeout_s=2.0)
    defaults.update(config)
    return DiscoveryAgent(endpoint, sim, AgentConfig(**defaults))


def state_log(bus):
    """Collect (state, previous, name, capacity, reason) per state event."""
    log = []
    bus.subscribe_local(
        Filter.where(MEMBER_STATE_TYPE),
        lambda e: log.append((e.get("state"), e.get("previous"),
                              e.get("name"), e.get("capacity"),
                              e.get("reason"))))
    return log


class TestLifecycleTable:
    def test_legal_transitions(self):
        assert advance(LifecycleState.JOINING,
                       LifecycleState.HEALTHY) is LifecycleState.HEALTHY
        assert can_advance(LifecycleState.HEALTHY, LifecycleState.DEGRADED)
        assert can_advance(LifecycleState.DEGRADED, LifecycleState.HEALTHY)
        assert can_advance(LifecycleState.DEGRADED, LifecycleState.DRAINING)
        assert can_advance(LifecycleState.DRAINING, LifecycleState.GONE)

    def test_gone_is_terminal_and_draining_never_recovers(self):
        for target in LifecycleState:
            assert not can_advance(LifecycleState.GONE, target)
        assert not can_advance(LifecycleState.DRAINING,
                               LifecycleState.HEALTHY)
        with pytest.raises(DiscoveryError):
            advance(LifecycleState.DRAINING, LifecycleState.HEALTHY)

    def test_record_enforces_table(self):
        record = MemberRecord(member_id=1, name="x", device_type="service",
                              address="x", admitted_at=0.0, last_heard=0.0)
        assert record.lifecycle is LifecycleState.JOINING
        record.advance_lifecycle(LifecycleState.HEALTHY)
        record.advance_lifecycle(LifecycleState.DRAINING)
        with pytest.raises(DiscoveryError):
            record.advance_lifecycle(LifecycleState.DEGRADED)

    def test_degraded_threshold_defaults_to_three_heartbeats(self):
        assert degraded_threshold(0.5) == pytest.approx(1.5)
        assert degraded_threshold(0.5, 9.0) == pytest.approx(9.0)
        assert DiscoveryConfig(cell_name="c").degraded_threshold_s == \
            pytest.approx(3.0)

    def test_config_validates_lifecycle_fields(self):
        with pytest.raises(ConfigurationError):
            DiscoveryConfig(cell_name="c", degraded_after_s=0.0)
        with pytest.raises(ConfigurationError):
            DiscoveryConfig(cell_name="c", drain_deadline_s=-1.0)


class TestDegradedDetection:
    def test_first_heartbeat_promotes_joining_to_healthy(self, sim, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = state_log(bus)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        record = service.table.get(agent.endpoint.service_id)
        assert record.lifecycle is LifecycleState.HEALTHY
        assert ("healthy", "joining", "dev", 0, None) in log

    def test_ghost_degraded_within_three_heartbeats(self, sim, hub,
                                                    endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = state_log(bus)
        agent = make_agent(sim, endpoints("dev"))
        faults = HubFaults(hub)
        service.start()
        agent.start()
        sim.run(2.2)     # joined and healthy, mid-heartbeat-interval
        assert agent.joined
        faults.kill("dev")
        sim.run(5.0)     # past the degraded threshold, before the purge
        assert ("degraded", "healthy", "dev", 0, None) in log
        # The measured detection latency respects the advertised bound:
        # threshold (3 x heartbeat) plus at most one sweep period.
        threshold = service.config.degraded_threshold_s
        assert service.degraded_latencies
        assert all(lat <= threshold + service.config.sweep_period_s + 1e-9
                   for lat in service.degraded_latencies)
        assert service.stats.degradations == 1
        # Left dead, the masking machine still purges the ghost.
        sim.run(12.0)
        assert service.table.get(agent.endpoint.service_id) is None
        assert ("gone", "degraded", "dev", 0, "timeout") in log

    def test_degraded_member_recovers_to_healthy(self, sim, hub, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = state_log(bus)
        agent = make_agent(sim, endpoints("dev"), beacon_timeout_s=10.0)
        faults = HubFaults(hub)
        service.start()
        agent.start()
        sim.run(2.0)
        faults.kill("dev")
        sim.run(4.0)     # past the degraded threshold, before the purge
        record = service.table.get(agent.endpoint.service_id)
        assert record.lifecycle is LifecycleState.DEGRADED
        faults.revive("dev")
        sim.run(5.0)     # next heartbeat lands
        assert record.lifecycle is LifecycleState.HEALTHY
        assert ("healthy", "degraded", "dev", 0, None) in log
        assert record.state is MemberState.ACTIVE

    def test_lifecycle_counts(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        counts = service.table.lifecycle_counts()
        assert counts["healthy"] == 1
        assert counts["joining"] == counts["degraded"] == 0


class TestCapacity:
    def test_announce_carries_capacity_into_record_and_event(self, sim,
                                                             endpoints):
        core = endpoints("core")
        service, bus = make_service(sim, core)
        bootstrap = ProxyBootstrap(bus, core)
        new_member = []
        bus.subscribe_local(Filter.where(NEW_MEMBER_TYPE),
                            lambda e: new_member.append(e.get("capacity")))
        agent = make_agent(sim, endpoints("dev"), capacity=4)
        service.start()
        agent.start()
        sim.run(2.0)
        member = agent.endpoint.service_id
        assert service.capacity_of(member) == 4
        assert new_member == [4]
        assert bus.proxy_of(member).capacity == 4
        assert bootstrap.stats.proxies_created == 1

    def test_heartbeat_refreshes_capacity(self, sim, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = state_log(bus)
        agent = make_agent(sim, endpoints("dev"), capacity=4)
        service.start()
        agent.start()
        sim.run(2.0)
        agent.config = dataclasses.replace(agent.config, capacity=8)
        sim.run(3.0)     # next heartbeat carries the new figure
        member = agent.endpoint.service_id
        assert service.capacity_of(member) == 8
        # A same-state event announced the new figure.
        assert ("healthy", "healthy", "dev", 8, None) in log

    def test_capacity_of_unknown_member_is_zero(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        assert service.capacity_of(12345) == 0


class TestJitteredBackoff:
    def test_backoff_is_exponential_jittered_and_capped(self, sim,
                                                        endpoints):
        agent = make_agent(sim, endpoints("dev"))
        for attempt in range(8):
            nominal = min(8.0, 1.0 * 2 ** attempt)
            for _ in range(5):
                delay = agent._backoff(1.0, attempt, 8.0)
                assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_different_devices_desynchronise(self, sim, endpoints):
        a = make_agent(sim, endpoints("dev-a"), name="dev-a")
        b = make_agent(sim, endpoints("dev-b"), name="dev-b")
        delays_a = [a._backoff(1.0, i, 8.0) for i in range(4)]
        delays_b = [b._backoff(1.0, i, 8.0) for i in range(4)]
        assert delays_a != delays_b
        # ... but each device's own schedule is reproducible.
        a2 = make_agent(sim, endpoints("dev-a2"), name="dev-a")
        assert [a2._backoff(1.0, i, 8.0) for i in range(4)] == delays_a

    def test_unanswered_announces_spread_out(self, sim, endpoints):
        """With no cell answering, retries decelerate instead of drumming
        at a fixed period."""
        agent = make_agent(sim, endpoints("dev"), announce_retry_s=0.5,
                           announce_backoff_cap_s=4.0)
        endpoints("core")              # address exists, nobody answers
        agent.announce_to("core")
        sim.run(4.0)
        early = agent.stats.announces_sent
        sim.run(8.0)
        late = agent.stats.announces_sent - early
        assert early >= 3             # eager at first...
        assert late < early           # ...then backing off

    def test_rejected_agents_retry_with_growing_backoff(self, sim,
                                                        endpoints):
        class DenyAll:
            def authenticate(self, member_id, announce):
                return False, "no"

        service, _ = make_service(sim, endpoints("core"),
                                  authenticator=DenyAll())
        agent = make_agent(sim, endpoints("dev"), rejection_backoff_s=1.0,
                           rejection_backoff_cap_s=4.0)
        service.start()
        agent.start()
        sim.run(12.0)
        assert agent.stats.rejections >= 2
        assert agent.state in (AgentState.REJECTED, AgentState.ANNOUNCING,
                               AgentState.SEARCHING)

    def test_config_validates_backoff_fields(self):
        with pytest.raises(ConfigurationError):
            AgentConfig(name="d", device_type="s", announce_backoff_cap_s=0)
        with pytest.raises(ConfigurationError):
            AgentConfig(name="d", device_type="s", capacity=-1)


class TestBeaconWatchdog:
    """Satellite coverage for DiscoveryAgent._check_beacons."""

    def test_falls_out_of_range_on_beacon_silence(self, sim, hub,
                                                  endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agent = make_agent(sim, endpoints("dev"), beacon_timeout_s=1.5)
        left = []
        agent.on_left = left.append
        faults = HubFaults(hub)
        service.start()
        agent.start()
        sim.run(2.0)
        assert agent.joined
        faults.block_one_way("core", "dev")   # beacons lost; uplink fine
        sim.run(5.0)
        assert agent.state is AgentState.SEARCHING
        assert left == ["beacon silence"]
        assert agent.stats.losses == 1

    def test_rejoins_on_next_beacon(self, sim, hub, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agent = make_agent(sim, endpoints("dev"), beacon_timeout_s=1.5)
        faults = HubFaults(hub)
        service.start()
        agent.start()
        sim.run(2.0)
        faults.block_one_way("core", "dev")
        sim.run(5.0)
        assert not agent.joined
        heard_before = agent.stats.beacons_heard
        faults.unblock_one_way("core", "dev")
        sim.run(7.0)
        assert agent.joined
        assert agent.stats.beacons_heard > heard_before
        assert agent.stats.joins == 2
        # The cell never purged us (outage shorter than the lease), so the
        # membership session continued.
        assert not agent.last_join_was_new

    def test_no_loss_counted_while_beacons_flow(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agent = make_agent(sim, endpoints("dev"), beacon_timeout_s=1.5)
        service.start()
        agent.start()
        sim.run(10.0)
        assert agent.joined
        assert agent.stats.losses == 0


class TestStopIdempotence:
    def test_double_stop_sends_one_leave(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        agent.stop()
        agent.stop()
        sim.run(3.0)
        assert service.stats.leaves == 1
        assert agent.state is AgentState.STOPPED
        agent.stop()              # and again, after the cell reacted
        sim.run(4.0)
        assert service.stats.leaves == 1

    def test_stop_while_draining_sends_no_leave(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"),
                                  drain_deadline_s=1.0)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        agent.leave_gracefully()
        sim.run(2.2)
        agent.stop()              # already announced intent; no LEAVE
        sim.run(5.0)
        assert service.stats.leaves == 0
        assert service.stats.drains == 1


class TestAgentFreeze:
    def test_freeze_stops_heartbeats_thaw_resumes(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agent = make_agent(sim, endpoints("dev"), beacon_timeout_s=30.0)
        service.start()
        agent.start()
        sim.run(2.0)
        agent.freeze()
        before = agent.stats.heartbeats_sent
        sim.run(4.0)
        assert agent.stats.heartbeats_sent == before
        record = service.table.get(agent.endpoint.service_id)
        assert record.lifecycle is LifecycleState.DEGRADED
        agent.thaw()
        sim.run(5.0)
        assert agent.stats.heartbeats_sent > before
        assert record.lifecycle is LifecycleState.HEALTHY


class TestGracefulDrain:
    def _cell(self, sim, endpoints, **config):
        core = endpoints("core")
        service, bus = make_service(sim, core, **config)
        bootstrap = ProxyBootstrap(bus, core)
        return core, service, bus, bootstrap

    def _joined_pair(self, sim, endpoints, service):
        """A publisher and a subscriber device, both joined."""
        publisher = make_agent(sim, endpoints("pub"), name="pub",
                               beacon_timeout_s=30.0)
        subscriber = make_agent(sim, endpoints("sub"), name="sub",
                                beacon_timeout_s=30.0)
        pub_client = BusClient(publisher.endpoint, sim, None)
        sub_client = BusClient(subscriber.endpoint, sim, None)
        publisher.on_joined = lambda _c, addr: setattr(
            pub_client, "bus_address", addr)
        subscriber.on_joined = lambda _c, addr: setattr(
            sub_client, "bus_address", addr)
        service.start()
        publisher.start()
        subscriber.start()
        return publisher, subscriber, pub_client, sub_client

    def test_drain_flushes_backlog_then_purges_with_zero_loss(
            self, sim, hub, endpoints):
        _, service, bus, _ = self._cell(sim, endpoints,
                                        drain_deadline_s=30.0)
        log = state_log(bus)
        purges = []
        bus.subscribe_local(Filter.where(PURGE_MEMBER_TYPE),
                            lambda e: purges.append(e.get("reason")))
        faults = HubFaults(hub)
        _pub, subscriber, pub_client, sub_client = self._joined_pair(
            sim, endpoints, service)

        inbox = []
        sim.run(2.0)
        sub_client.subscribe(Filter.where("ward.data"),
                             lambda e: inbox.append(e.get("n")))
        sim.run(3.0)
        member = subscriber.endpoint.service_id
        proxy = bus.proxy_of(member)

        # Cut the core -> subscriber direction so deliveries pile up on
        # the channel (heartbeats still flow sub -> core).
        faults.block_one_way("core", "sub")
        for n in range(10):
            pub_client.publish("ward.data", {"n": n})
        sim.run(4.0)
        assert inbox == []                # queued, undeliverable

        subscriber.leave_gracefully()
        sim.run(5.0)
        record = service.table.get(member)
        assert record.lifecycle is LifecycleState.DRAINING
        # Subscriptions were re-homed away *before* teardown: no new
        # matches can join the queue.
        assert bus.subscriptions_of(member) == set()
        assert proxy.draining
        assert not purges                 # still flushing: not purged yet

        faults.unblock_one_way("core", "sub")
        sim.run(12.0)
        # Every queued delivery landed, then the purge fired, and the
        # proxy found an empty channel: zero matched-event loss.
        assert sorted(inbox) == list(range(10))
        assert purges == ["drain"]
        assert proxy.destroyed
        assert proxy.stats.dropped_on_destroy == 0
        assert service.stats.drains_completed == 1
        assert ("draining", "healthy", "sub", 0, "drain") in log
        assert ("gone", "draining", "sub", 0, "drain") in log

    def test_drain_deadline_degrades_to_purge(self, sim, hub, endpoints):
        _, service, bus, _ = self._cell(sim, endpoints, drain_deadline_s=1.0)
        purges = []
        bus.subscribe_local(Filter.where(PURGE_MEMBER_TYPE),
                            lambda e: purges.append(e.get("reason")))
        faults = HubFaults(hub)
        _pub, subscriber, pub_client, sub_client = self._joined_pair(
            sim, endpoints, service)
        sim.run(2.0)
        sub_client.subscribe(Filter.where("ward.data"), lambda e: None)
        sim.run(3.0)
        member = subscriber.endpoint.service_id
        proxy = bus.proxy_of(member)

        faults.block_one_way("core", "sub")
        for n in range(5):
            pub_client.publish("ward.data", {"n": n})
        sim.run(4.0)
        subscriber.leave_gracefully()
        sim.run(8.0)                      # never healed: deadline fires
        assert purges == ["drain-deadline"]
        assert service.stats.drain_timeouts == 1
        assert proxy.destroyed
        assert proxy.stats.dropped_on_destroy > 0

    def test_leave_intent_is_idempotent(self, sim, endpoints):
        _, service, bus, _ = self._cell(sim, endpoints)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        member = agent.endpoint.service_id
        # Datagrams repeat; a re-sent LEAVE_INTENT must not double-count.
        agent.endpoint.send_control(agent.core_address,
                                    PacketType.LEAVE_INTENT,
                                    LeaveIntentBody("drain").encode())
        agent.endpoint.send_control(agent.core_address,
                                    PacketType.LEAVE_INTENT,
                                    LeaveIntentBody("drain").encode())
        sim.run(2.3)
        assert service.stats.drains == 1
        sim.run(5.0)                      # empty queue: drains right away
        assert service.table.get(member) is None
        assert service.stats.drains_completed == 1

    def test_drain_with_no_backlog_purges_promptly(self, sim, endpoints):
        _, service, bus, _ = self._cell(sim, endpoints)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        agent.leave_gracefully("battery swap")
        sim.run(3.5)
        assert service.table.get(agent.endpoint.service_id) is None
        assert service.stats.drains_completed == 1
