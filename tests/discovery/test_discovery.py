"""Discovery service + agent over the in-memory hub.

Membership lifecycle: admission, auth, heartbeats, masking, purge, leave.
"""

import pytest

from repro.core.bus import EventBus
from repro.core.events import (
    MEMBER_RECOVERED_TYPE,
    MEMBER_SILENT_TYPE,
    NEW_MEMBER_TYPE,
    PURGE_MEMBER_TYPE,
)
from repro.discovery.agent import AgentConfig, AgentState, DiscoveryAgent
from repro.discovery.auth import (
    AllowAllAuthenticator,
    CompositeAuthenticator,
    DeviceTypeAllowList,
    SharedSecretAuthenticator,
)
from repro.discovery.membership import MembershipTable, MemberRecord, MemberState
from repro.discovery.messages import AnnounceBody, BeaconBody, JoinAckBody
from repro.discovery.service import DiscoveryConfig, DiscoveryService
from repro.errors import ConfigurationError, DiscoveryError
from repro.matching.filters import Filter


def make_service(sim, endpoint, bus=None, authenticator=None, **config):
    defaults = dict(cell_name="cell", beacon_period_s=0.5,
                    heartbeat_period_s=0.5, silent_after_s=1.5,
                    purge_after_s=4.0, sweep_period_s=0.25)
    defaults.update(config)
    bus = bus or EventBus(sim)
    service = DiscoveryService(bus, endpoint, sim,
                               DiscoveryConfig(**defaults), authenticator)
    return service, bus


def make_agent(sim, endpoint, name="dev", **config):
    defaults = dict(name=name, device_type="service", beacon_timeout_s=2.0)
    defaults.update(config)
    return DiscoveryAgent(endpoint, sim, AgentConfig(**defaults))


def membership_log(bus, sim):
    log = []
    bus.subscribe_local(Filter.for_type_prefix("smc.member"),
                        lambda e: log.append((e.type, e.get("name"),
                                              e.get("reason"))))
    return log


class TestConfig:
    def test_purge_must_exceed_silent(self):
        with pytest.raises(ConfigurationError):
            DiscoveryConfig(cell_name="c", silent_after_s=5.0,
                            purge_after_s=4.0)

    def test_empty_cell_name_rejected(self):
        with pytest.raises(ConfigurationError):
            DiscoveryConfig(cell_name="")

    def test_agent_needs_identity(self):
        with pytest.raises(ConfigurationError):
            AgentConfig(name="", device_type="x")


class TestAdmission:
    def test_join_produces_new_member_event(self, sim, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = membership_log(bus, sim)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(3.0)
        assert agent.joined
        assert service.is_member(agent.endpoint.service_id)
        assert (NEW_MEMBER_TYPE, "dev", None) in log
        assert agent.last_join_was_new

    def test_target_cell_filtering(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"), cell_name="ward-3")
        agent = make_agent(sim, endpoints("dev"), target_cell="ward-9")
        service.start()
        agent.start()
        sim.run(3.0)
        assert not agent.joined
        assert agent.state == AgentState.SEARCHING

    def test_stopped_service_ignores_announces(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agent = make_agent(sim, endpoints("dev"))
        agent.start()        # service never started: no beacons, no joins
        sim.run(3.0)
        assert not agent.joined

    def test_leave_purges_immediately(self, sim, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = membership_log(bus, sim)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        agent.stop()
        sim.run(3.0)
        assert (PURGE_MEMBER_TYPE, "dev", "leave") in log
        assert not service.is_member(agent.endpoint.service_id)

    def test_many_devices_join(self, sim, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agents = [make_agent(sim, endpoints(f"dev-{i}"), name=f"dev-{i}")
                  for i in range(8)]
        service.start()
        for agent in agents:
            agent.start()
        sim.run(5.0)
        assert sorted(service.member_names()) == [f"dev-{i}"
                                                  for i in range(8)]


class TestAuthentication:
    def test_shared_secret_accepts_valid_credential(self, sim, endpoints):
        auth = SharedSecretAuthenticator(b"ward-key")
        service, _ = make_service(sim, endpoints("core"), authenticator=auth)
        credential = auth.credential_for("dev", "service")
        agent = make_agent(sim, endpoints("dev"), credentials=credential)
        service.start()
        agent.start()
        sim.run(3.0)
        assert agent.joined

    def test_shared_secret_rejects_bad_credential(self, sim, endpoints):
        auth = SharedSecretAuthenticator(b"ward-key")
        service, _ = make_service(sim, endpoints("core"), authenticator=auth)
        agent = make_agent(sim, endpoints("dev"), credentials=b"wrong")
        reasons = []
        agent.on_rejected = reasons.append
        service.start()
        agent.start()
        sim.run(3.0)
        assert not agent.joined
        assert agent.state == AgentState.REJECTED
        assert reasons == ["bad credential"]
        assert service.stats.rejections >= 1

    def test_device_type_allowlist(self, sim, endpoints):
        auth = DeviceTypeAllowList({"sensor.hr"})
        service, _ = make_service(sim, endpoints("core"), authenticator=auth)
        good = make_agent(sim, endpoints("hr"), name="hr",
                          device_type="sensor.hr")
        bad = make_agent(sim, endpoints("toaster"), name="toaster",
                         device_type="kitchen.toaster")
        service.start()
        good.start()
        bad.start()
        sim.run(3.0)
        assert good.joined
        assert not bad.joined

    def test_composite_requires_all(self, sim, endpoints):
        secret = SharedSecretAuthenticator(b"k")
        auth = CompositeAuthenticator([DeviceTypeAllowList({"service"}),
                                       secret])
        service, _ = make_service(sim, endpoints("core"), authenticator=auth)
        agent = make_agent(sim, endpoints("dev"),
                           credentials=secret.credential_for("dev", "service"))
        service.start()
        agent.start()
        sim.run(3.0)
        assert agent.joined

    def test_rejected_agent_retries_after_backoff(self, sim, endpoints):
        auth = SharedSecretAuthenticator(b"k")
        service, _ = make_service(sim, endpoints("core"), authenticator=auth)
        agent = make_agent(sim, endpoints("dev"), credentials=b"bad",
                           rejection_backoff_s=2.0)
        service.start()
        agent.start()
        sim.run(1.5)
        assert agent.state == AgentState.REJECTED
        sim.run(5.0)
        # Back to trying (and being rejected again).
        assert agent.stats.rejections >= 2


class TestLiveness:
    def test_heartbeats_keep_membership(self, sim, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = membership_log(bus, sim)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(20.0)
        assert agent.joined
        assert not any(t == PURGE_MEMBER_TYPE for t, *_ in log)
        assert agent.stats.heartbeats_sent > 10

    def test_silence_then_purge(self, sim, hub, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = membership_log(bus, sim)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        assert agent.joined
        hub.drop_filter = lambda src, dest, data: False   # total partition
        sim.run(12.0)
        assert (MEMBER_SILENT_TYPE, "dev", None) in log
        assert (PURGE_MEMBER_TYPE, "dev", "timeout") in log

    def test_transient_silence_masked(self, sim, hub, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = membership_log(bus, sim)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        hub.drop_filter = lambda src, dest, data: False
        sim.run(4.0)          # silent but under the 4s purge threshold? 2s in
        hub.drop_filter = None
        sim.run(6.0)
        types = [t for t, *_ in log]
        assert MEMBER_SILENT_TYPE in types
        assert MEMBER_RECOVERED_TYPE in types
        assert PURGE_MEMBER_TYPE not in types
        assert agent.joined

    def test_rejoin_after_purge_is_new_session(self, sim, hub, endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = membership_log(bus, sim)
        agent = make_agent(sim, endpoints("dev"))
        service.start()
        agent.start()
        sim.run(2.0)
        hub.drop_filter = lambda src, dest, data: False
        sim.run(12.0)         # purged
        hub.drop_filter = None
        sim.run(22.0)         # rejoins
        assert agent.joined
        assert agent.last_join_was_new
        assert [t for t, *_ in log].count(NEW_MEMBER_TYPE) == 2

    def test_reannounce_of_live_member_is_not_new_session(self, sim, hub,
                                                          endpoints):
        service, bus = make_service(sim, endpoints("core"))
        log = membership_log(bus, sim)
        dev_endpoint = endpoints("dev")
        agent = make_agent(sim, dev_endpoint)
        service.start()
        agent.start()
        sim.run(2.0)
        # Force a re-announce by hand (e.g. the device missed our ack).
        from repro.transport.packets import PacketType
        dev_endpoint.send_control(
            "core", PacketType.ANNOUNCE,
            AnnounceBody("dev", "service").encode())
        sim.run(3.0)
        assert agent.last_join_was_new is False
        assert [t for t, *_ in log].count(NEW_MEMBER_TYPE) == 1

    def test_out_of_range_agent_detects_loss(self, sim, hub, endpoints):
        service, _ = make_service(sim, endpoints("core"))
        agent = make_agent(sim, endpoints("dev"))
        losses = []
        agent.on_left = losses.append
        service.start()
        agent.start()
        sim.run(2.0)
        hub.drop_filter = lambda src, dest, data: False
        sim.run(5.0)
        assert not agent.joined
        assert losses == ["beacon silence"]
        assert agent.state == AgentState.SEARCHING


class TestMembershipTable:
    def test_admit_and_remove(self):
        table = MembershipTable()
        record = MemberRecord(member_id=1, name="a", device_type="t",
                              address="x", admitted_at=0.0, last_heard=0.0)
        table.admit(record)
        assert 1 in table
        assert table.by_name("a") is record
        removed = table.remove(1)
        assert removed.state == MemberState.PURGED
        assert 1 not in table

    def test_double_admit_rejected(self):
        table = MembershipTable()
        record = MemberRecord(member_id=1, name="a", device_type="t",
                              address="x", admitted_at=0.0, last_heard=0.0)
        table.admit(record)
        with pytest.raises(DiscoveryError):
            table.admit(record)

    def test_remove_unknown_rejected(self):
        with pytest.raises(DiscoveryError):
            MembershipTable().remove(9)

    def test_heard_recovers_silent(self):
        record = MemberRecord(member_id=1, name="a", device_type="t",
                              address="x", admitted_at=0.0, last_heard=0.0)
        record.state = MemberState.SILENT
        assert record.heard(5.0) is True
        assert record.state == MemberState.ACTIVE
        assert record.heard(6.0) is False

    def test_in_state_listing(self):
        table = MembershipTable()
        for index in range(3):
            table.admit(MemberRecord(member_id=index, name=f"n{index}",
                                     device_type="t", address="x",
                                     admitted_at=0.0, last_heard=0.0))
        table.get(1).state = MemberState.SILENT
        assert [r.member_id for r in table.in_state(MemberState.ACTIVE)] == [0, 2]
        assert [r.member_id for r in table.in_state(MemberState.SILENT)] == [1]


class TestMessages:
    def test_beacon_roundtrip(self):
        body = BeaconBody("ward-3", "10.0.0.1:41200")
        assert BeaconBody.decode(body.encode()) == body

    def test_announce_roundtrip(self):
        body = AnnounceBody("hr-1", "sensor.hr", b"\x01\x02")
        assert AnnounceBody.decode(body.encode()) == body

    def test_join_ack_roundtrip(self):
        body = JoinAckBody("ward-3", 1.5, 10.0, new_session=False)
        assert JoinAckBody.decode(body.encode()) == body

    def test_trailing_bytes_rejected(self):
        from repro.errors import CodecError
        with pytest.raises(CodecError):
            BeaconBody.decode(BeaconBody("a", "b").encode() + b"junk")

    def test_truncated_rejected(self):
        from repro.errors import CodecError
        with pytest.raises(CodecError):
            JoinAckBody.decode(JoinAckBody("a", 1.0, 2.0).encode()[:-4])


class TestRoaming:
    """Satellite 2: a known member heard from a new address has roamed.

    Before the fix, the known-member re-announce path re-acked without
    updating ``record.address`` or migrating transport state, so the
    roamed device kept receiving its queued deliveries (and directed
    beacons) at the stale address until it was purged.
    """

    def _joined(self, sim, hub, endpoints):
        core_ep = endpoints("core")
        service, bus = make_service(sim, core_ep)
        log = membership_log(bus, sim)
        dev_ep = endpoints("dev")
        agent = make_agent(sim, dev_ep)
        service.start()
        agent.start()
        sim.run(sim.now() + 2.0)
        assert agent.joined
        # Mute the real device's timers: its live heartbeats from "dev"
        # would legitimately roam the record straight back (last heard
        # address wins), racing the spoofed packets below.
        agent._cancel_timers()
        return service, bus, core_ep, dev_ep, agent, log

    def _spoof_from(self, hub, address, packet):
        """Send ``packet`` into the core from a new transport address,
        keeping the original sender id — the device roamed."""
        roamed = hub.create(address)
        roamed.set_receiver(lambda src, data: None)
        roamed.send("core", packet.encode())
        return roamed

    def test_announce_from_new_address_updates_record(
            self, sim, hub, endpoints):
        from repro.core.events import MEMBER_MOVED_TYPE
        from repro.transport.packets import Packet, PacketType

        service, bus, core_ep, dev_ep, agent, log = self._joined(
            sim, hub, endpoints)
        record = service.table.get(dev_ep.service_id)
        assert record.address == "dev"

        announce = AnnounceBody("dev", "service", b"")
        self._spoof_from(hub, "dev-roamed",
                         Packet(type=PacketType.ANNOUNCE,
                                sender=dev_ep.service_id,
                                payload=announce.encode()))
        sim.run(sim.now() + 1.0)
        assert record.address == "dev-roamed"
        assert service.stats.roams == 1
        assert core_ep.address_of(dev_ep.service_id) == "dev-roamed"
        assert core_ep.channel_addresses(dev_ep.service_id) <= {"dev-roamed"}
        moved = [entry for entry in log if entry[0] == MEMBER_MOVED_TYPE]
        assert moved == [(MEMBER_MOVED_TYPE, "dev", None)]
        # Still one member — a roam is not a rejoin.
        assert len(service.table) == 1
        assert service.stats.admissions == 1

    def test_queued_deliveries_follow_the_roam(self, sim, hub, endpoints):
        from repro.transport.packets import Packet, PacketType

        service, bus, core_ep, dev_ep, agent, log = self._joined(
            sim, hub, endpoints)
        # Strand deliveries toward the old address.
        hub.drop_filter = lambda src, dest, data: src != "core" or dest != "dev"
        core_ep.send_reliable("dev", b"queued-while-away")
        sim.run(sim.now() + 0.5)

        got = []
        roamed = hub.create("dev-roamed")

        def on_datagram(src, data):
            packet = Packet.decode(data)
            if packet.type == PacketType.DATA:
                got.append(bytes(packet.payload))
                roamed.send(src, Packet(type=PacketType.ACK,
                                        sender=dev_ep.service_id,
                                        ack=packet.seq).encode())

        roamed.set_receiver(on_datagram)
        announce = AnnounceBody("dev", "service", b"")
        roamed.send("core", Packet(type=PacketType.ANNOUNCE,
                                   sender=dev_ep.service_id,
                                   payload=announce.encode()).encode())
        sim.run(sim.now() + 2.0)
        assert b"queued-while-away" in got

    def test_heartbeat_from_new_address_also_roams(self, sim, hub,
                                                   endpoints):
        from repro.transport.packets import Packet, PacketType

        service, bus, core_ep, dev_ep, agent, log = self._joined(
            sim, hub, endpoints)
        record = service.table.get(dev_ep.service_id)
        # The re-announce was lost; the first packet from the new home
        # is a heartbeat.
        self._spoof_from(hub, "dev-roamed",
                         Packet(type=PacketType.HEARTBEAT,
                                sender=dev_ep.service_id))
        sim.run(sim.now() + 1.0)
        assert record.address == "dev-roamed"
        assert service.stats.roams == 1

    def test_same_address_reannounce_is_not_a_roam(self, sim, hub,
                                                   endpoints):
        service, bus, core_ep, dev_ep, agent, log = self._joined(
            sim, hub, endpoints)
        agent._send_announce()          # duplicate from the same address
        sim.run(sim.now() + 1.0)
        assert service.stats.roams == 0
        assert service.table.get(dev_ep.service_id).address == "dev"

    def test_roam_of_silent_member_also_recovers(self, sim, hub,
                                                 endpoints):
        from repro.transport.packets import Packet, PacketType

        service, bus, core_ep, dev_ep, agent, log = self._joined(
            sim, hub, endpoints)
        hub.drop_filter = lambda src, dest, data: False
        sim.run(sim.now() + 2.5)                    # past silent_after_s
        record = service.table.get(dev_ep.service_id)
        assert record.state is MemberState.SILENT
        hub.drop_filter = None
        announce = AnnounceBody("dev", "service", b"")
        self._spoof_from(hub, "dev-roamed",
                         Packet(type=PacketType.ANNOUNCE,
                                sender=dev_ep.service_id,
                                payload=announce.encode()))
        sim.run(sim.now() + 1.0)
        assert record.state is MemberState.ACTIVE
        assert record.address == "dev-roamed"
        assert service.stats.roams == 1
        assert service.stats.recoveries == 1
