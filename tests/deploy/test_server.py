"""Deployment layer: edge controls, the cell server and its healthz.

Edge units (admission, backpressure) run on the simulator + in-memory
hub; the CellServer tests stand up real loopback sockets, because the
server *is* the real-socket assembly — but with OS-chosen ports and
sub-second timers they stay fast and collision-free.
"""

import time

import pytest

from repro.core.bus import EventBus
from repro.core.proxies import ServiceProxy
from repro.deploy import (
    BackpressureGuard,
    CapacityAuthenticator,
    CellServer,
    ServerConfig,
    make_devices,
    read_healthz,
)
from repro.discovery.membership import MembershipTable, MemberRecord
from repro.discovery.messages import AnnounceBody
from repro.errors import ConfigurationError
from repro.ids import service_id_from_name
from repro.smc.cell import CellConfig


class TestCapacityAuthenticator:
    def _table_with(self, count):
        table = MembershipTable()
        for index in range(count):
            table.admit(MemberRecord(
                member_id=service_id_from_name(f"m{index}"),
                name=f"m{index}", device_type="service", address=f"a{index}",
                admitted_at=0.0, last_heard=0.0))
        return table

    def test_admits_below_capacity(self):
        auth = CapacityAuthenticator(2)
        auth.bind_table(self._table_with(1))
        ok, reason = auth.authenticate(service_id_from_name("new"),
                                       AnnounceBody("new", "service", b""))
        assert ok

    def test_naks_at_capacity(self):
        auth = CapacityAuthenticator(2)
        auth.bind_table(self._table_with(2))
        ok, reason = auth.authenticate(service_id_from_name("new"),
                                       AnnounceBody("new", "service", b""))
        assert not ok
        assert "capacity" in reason
        assert auth.stats.capacity_rejections == 1

    def test_delegates_to_inner_when_room(self):
        class Deny:
            def authenticate(self, member_id, announce):
                return False, "bad credentials"

        auth = CapacityAuthenticator(5, inner=Deny())
        auth.bind_table(self._table_with(0))
        ok, reason = auth.authenticate(service_id_from_name("new"),
                                       AnnounceBody("new", "service", b""))
        assert not ok and reason == "bad credentials"
        assert auth.stats.capacity_rejections == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            CapacityAuthenticator(0)


class TestBackpressureGuard:
    def _stack(self, sim, hub, endpoints, **bounds):
        core = endpoints("core", window=2)
        dev = endpoints("dev")
        dev.set_payload_handler(lambda peer, data: None)   # swallow frames
        bus = EventBus(sim)
        dev_id = dev.service_id
        core.learn_peer(dev_id, "dev")
        proxy = ServiceProxy(bus, core, dev_id, "dev", "dev", "service")
        guard = BackpressureGuard(bus, core, **bounds)
        return core, bus, dev_id, proxy, guard

    def test_bounds_validated(self, sim, hub, endpoints):
        core = endpoints("core")
        bus = EventBus(sim)
        for bad in (dict(quench_backlog=4, wake_backlog=4, shed_backlog=8),
                    dict(quench_backlog=4, wake_backlog=0, shed_backlog=8),
                    dict(quench_backlog=8, wake_backlog=2, shed_backlog=4)):
            with pytest.raises(ConfigurationError):
                BackpressureGuard(bus, core, **bad)

    def test_quench_then_wake_hysteresis(self, sim, hub, endpoints):
        core, bus, dev_id, proxy, guard = self._stack(
            sim, hub, endpoints, quench_backlog=4, wake_backlog=2,
            shed_backlog=64)
        hub.drop_filter = lambda src, dest, data: False   # strand sends
        for index in range(6):
            core.send_reliable("dev", bytes([index]))
        guard.sweep()
        assert guard.edge_quenched() == {dev_id}
        assert guard.stats.quench_advisories == 1
        guard.sweep()                     # still over: no duplicate
        assert guard.stats.quench_advisories == 1
        # The member drains: acks arrive, backlog falls below wake.
        hub.drop_filter = None
        sim.run_until_idle(max_time=sim.now() + 60.0)
        guard.sweep()
        assert guard.edge_quenched() == set()
        assert guard.stats.wake_advisories == 1

    def test_shed_trims_pending_tail(self, sim, hub, endpoints):
        core, bus, dev_id, proxy, guard = self._stack(
            sim, hub, endpoints, quench_backlog=3, wake_backlog=1,
            shed_backlog=6)
        hub.drop_filter = lambda src, dest, data: False
        for index in range(10):           # window 2 -> 8 pending
            core.send_reliable("dev", bytes([index]))
        channel = core.existing_channel("dev")
        assert channel.unacked_count() == 10
        guard.sweep()
        # The sweep quenches first (its advisory frame joins the pending
        # queue: 8 + 1), then sheds the oldest pending beyond 6.
        assert guard.stats.payloads_shed == 3
        assert channel.stats.backlog_shed == 3
        assert channel.unacked_count() == 8            # 2 in flight + 6

    def test_purged_member_forgotten(self, sim, hub, endpoints):
        core, bus, dev_id, proxy, guard = self._stack(
            sim, hub, endpoints, quench_backlog=2, wake_backlog=1,
            shed_backlog=64)
        hub.drop_filter = lambda src, dest, data: False
        for index in range(4):
            core.send_reliable("dev", bytes([index]))
        guard.sweep()
        assert guard.edge_quenched() == {dev_id}
        bus.unregister_member(dev_id)
        guard.sweep()
        assert guard.edge_quenched() == set()


@pytest.fixture
def server():
    config = ServerConfig(
        cell=CellConfig(cell_name="test-ward",
                        beacon_period_s=0.05, heartbeat_period_s=0.05,
                        silent_after_s=0.5, purge_after_s=1.5,
                        sweep_period_s=0.1),
        discovery_port=0,
        max_members=2,
        guard_period_s=0.1,
    )
    cell_server = CellServer(config)
    cell_server.start()
    yield cell_server
    cell_server.close()


def wait(server, condition, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        server.run_for(0.02)
        if condition():
            return True
    return condition()


class TestCellServer:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(cell=CellConfig(cell_name="x"), guard_period_s=0.0)
        with pytest.raises(ConfigurationError):
            ServerConfig(cell=CellConfig(cell_name="x"), audit_tail=-1)

    def test_snapshot_shape(self, server):
        snapshot = server.snapshot()
        for key in ("cell", "engine", "started", "uptime_s", "address",
                    "pollables", "member_count", "members", "bus",
                    "channels", "transport", "discovery", "edge",
                    "edge_quenched"):
            assert key in snapshot, key
        assert snapshot["cell"] == "test-ward"
        assert snapshot["started"] is True
        assert snapshot["member_count"] == 0
        # Unicast + broadcast + healthz are all selector-registered.
        assert snapshot["pollables"] == 3

    def test_join_updates_snapshot_and_beacon_domain(self, server):
        device = make_devices(server.scheduler, server.address, 1,
                              announce_retry_s=0.05)[0]
        try:
            device.start()
            assert wait(server, lambda: device.joined)
            snapshot = server.snapshot()
            assert snapshot["member_count"] == 1
            assert snapshot["members"][0]["name"] == "dev-0"
            assert snapshot["members"][0]["state"] == "active"
            # Directed beacons now reach the member's address.
            assert device.transport.local_address \
                in server.transport._broadcast_peers
        finally:
            device.close()

    def test_capacity_nak_past_max_members(self, server):
        devices = make_devices(server.scheduler, server.address, 3,
                               announce_retry_s=0.05)
        rejected = []
        for device in devices:
            device.agent.on_rejected = rejected.append
        try:
            for device in devices:
                device.start()
            assert wait(server, lambda: sum(d.joined for d in devices) == 2
                        and rejected)
            assert server.edge_stats.capacity_rejections >= 1
            assert all("capacity" in reason for reason in rejected)
            assert server.snapshot()["member_count"] == 2
        finally:
            for device in devices:
                device.close()

    def test_healthz_over_real_tcp(self, server):
        snapshot = read_healthz(server.healthz_address,
                                pump=lambda: server.run_for(0.2))
        assert snapshot["cell"] == "test-ward"
        assert server.healthz.requests_served == 1

    def test_sharded_cell_reports_shard_loads(self):
        config = ServerConfig(
            cell=CellConfig(cell_name="sharded-ward", shards=4,
                            beacon_period_s=0.05, heartbeat_period_s=0.05,
                            silent_after_s=0.5, purge_after_s=1.5,
                            sweep_period_s=0.1),
            discovery_port=0)
        cell_server = CellServer(config)
        try:
            cell_server.start()
            snapshot = cell_server.snapshot()
            # The server's own smc.member subscription (directed beacons)
            # already occupies a shard; assert shape, not emptiness.
            assert len(snapshot["shard_loads"]) == 4
            assert sum(snapshot["shard_loads"]) >= 1
            assert len(snapshot["shard_events"]) == 4
        finally:
            cell_server.close()

    def test_close_releases_all_pollables(self):
        config = ServerConfig(
            cell=CellConfig(cell_name="short-lived"), discovery_port=0)
        cell_server = CellServer(config)
        cell_server.start()
        assert cell_server.scheduler.pollable_count() == 3
        cell_server.close()
        assert cell_server.scheduler.pollable_count() == 0
        assert cell_server.transport.fileno() == -1

    def test_double_stop_and_double_close_are_idempotent(self):
        """Regression: stop/close twice (in any mix) must be harmless —
        signal handlers and finally-blocks routinely double up."""
        config = ServerConfig(
            cell=CellConfig(cell_name="twice"), discovery_port=0)
        cell_server = CellServer(config)
        cell_server.start()
        cell_server.stop()
        cell_server.stop()
        cell_server.close()
        cell_server.close()
        assert cell_server.scheduler.pollable_count() == 0
        assert cell_server.transport.fileno() == -1

    def test_close_without_start_is_safe(self):
        config = ServerConfig(
            cell=CellConfig(cell_name="unstarted"), discovery_port=0)
        cell_server = CellServer(config)
        cell_server.close()
        cell_server.close()
        assert cell_server.transport.fileno() == -1

    def test_sockets_are_not_inheritable(self):
        """Fork-safety: no child (match workers included) may inherit the
        cell's sockets — a worker crash must never be able to disturb,
        or hold open, the parent's transport."""
        config = ServerConfig(
            cell=CellConfig(cell_name="no-leak"), discovery_port=0)
        cell_server = CellServer(config)
        try:
            assert not cell_server.transport._socket.get_inheritable()
            assert not cell_server.transport._broadcast_socket \
                .get_inheritable()
            assert not cell_server.healthz._listener.get_inheritable()
        finally:
            cell_server.close()


class TestWorkerDeployment:
    def _sharded_config(self, workers):
        return ServerConfig(
            cell=CellConfig(cell_name="worker-ward", shards=4,
                            beacon_period_s=0.05, heartbeat_period_s=0.05,
                            silent_after_s=0.5, purge_after_s=1.5,
                            sweep_period_s=0.1),
            discovery_port=0, guard_period_s=0.05, workers=workers)

    def test_workers_require_sharded_bus(self):
        config = ServerConfig(cell=CellConfig(cell_name="unsharded"),
                              discovery_port=0, workers=2)
        with pytest.raises(ConfigurationError):
            CellServer(config)
        with pytest.raises(ConfigurationError):
            ServerConfig(cell=CellConfig(cell_name="x"), workers=-1)

    def test_pool_lifecycle_and_crash_isolation(self):
        """The server owns the pool: spawned at start, supervised by the
        guard sweep, drained at stop — and a SIGKILLed worker cannot
        disturb the parent's selector (healthz keeps answering, no
        pollable appears or vanishes)."""
        import os
        import signal

        cell_server = CellServer(self._sharded_config(workers=2))
        try:
            assert cell_server.worker_pool is None     # start() spawns it
            cell_server.start()
            pool = cell_server.worker_pool
            assert pool is not None and pool.workers == 2
            pollables_before = cell_server.scheduler.pollable_count()

            snapshot = cell_server.snapshot()
            assert snapshot["workers"]["workers"] == 2
            assert len(snapshot["workers"]["alive"]) == 2

            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            # The guard sweep notices and respawns; the selector loop
            # never stutters while it happens.
            assert wait(cell_server,
                        lambda: pool.stats.respawns >= 1
                        and all(pool.stats_dict()["alive"]))
            assert cell_server.scheduler.pollable_count() \
                == pollables_before
            snapshot = read_healthz(
                cell_server.healthz_address,
                pump=lambda: cell_server.run_for(0.2))
            assert snapshot["workers"]["respawns"] >= 1
            assert pool.worker_pids()[0] != victim

            pids = [pid for pid in pool.worker_pids() if pid is not None]
            cell_server.stop()
            assert cell_server.worker_pool is None     # drained
            for pid in pids:
                with pytest.raises(OSError):
                    os.kill(pid, 0)                    # really gone
        finally:
            cell_server.close()


class TestDeviceBatching:
    def test_batched_publishes_ride_one_batch_frame(self):
        """A batching device coalesces N publishes into one BATCH send
        instead of N packets — the client-harness half of the batch
        pipeline."""
        config = ServerConfig(
            cell=CellConfig(cell_name="batch-ward", beacon_period_s=0.05,
                            heartbeat_period_s=0.05, silent_after_s=0.5,
                            purge_after_s=1.5, sweep_period_s=0.1),
            discovery_port=0, guard_period_s=0.1)
        cell_server = CellServer(config)
        device = None
        try:
            cell_server.start()
            device = make_devices(cell_server.scheduler, cell_server.address,
                                  1, announce_retry_s=0.05, batch=8)[0]
            device.start()
            assert wait(cell_server, lambda: device.joined)
            # The bus publishes its own smc.member.* events on join.
            base = cell_server.cell.bus.stats.published

            for index in range(7):
                assert device.publish("vitals", {"hr": 60 + index}) is None
            assert device.pending == 7                 # buffered, not sent
            assert device.client.stats.published == 0
            device.publish("vitals", {"hr": 99})       # 8th: auto-flush
            assert device.pending == 0
            assert device.client.stats.batches_sent >= 1
            assert device.client.stats.published == 8
            assert wait(cell_server,
                        lambda: cell_server.cell.bus.stats.published
                        >= base + 8)

            device.publish("vitals", {"hr": 42})       # partial buffer...
            device.leave()                             # ...flushed on leave
            assert device.pending == 0
            assert wait(cell_server,
                        lambda: cell_server.cell.bus.stats.published
                        >= base + 9)
        finally:
            if device is not None:
                device.close()
            cell_server.close()
