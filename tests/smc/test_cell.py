"""The assembled Self-Managed Cell."""

import pytest

from repro.devices.actuators import ManualSensor, NurseDisplay
from repro.devices.protocols import HeartRateProtocol
from repro.errors import ConfigurationError
from repro.matching.filters import Filter
from repro.matching.siena import SienaTranslationBackend
from repro.sim.hosts import PDA_PROFILE, SENSOR_PROFILE, SimHost
from repro.smc.cell import CellConfig, SelfManagedCell
from repro.transport.endpoint import PacketEndpoint
from repro.transport.simnet import SimTransport

POLICY_SRC = '''
role nurse : actuator.display ;
role monitor : sensor.hr ;
inst oblig Tachy {
    on health.hr ;
    if hr > 120 ;
    do notify(msg="alarm", target=nurse) -> log(what="hr", hr=$hr) ;
    subject monitor ;
    target nurse ;
}
'''


@pytest.fixture
def make_cell(sim, simnet):
    def factory(**config):
        simnet.add_node("pda", profile=PDA_PROFILE)
        defaults = dict(cell_name="ward", patient="p-1")
        defaults.update(config)
        return SelfManagedCell(SimTransport(simnet, "pda"), sim,
                               CellConfig(**defaults))
    return factory


@pytest.fixture
def device_endpoint(sim, simnet):
    def factory(name):
        simnet.add_node(name, profile=SENSOR_PROFILE)
        return PacketEndpoint(SimTransport(simnet, name), sim)
    return factory


class TestAssembly:
    def test_start_stop(self, make_cell):
        cell = make_cell()
        cell.start()
        assert cell.started
        assert cell.discovery.running
        cell.stop()
        assert not cell.discovery.running

    def test_double_start_rejected(self, make_cell):
        cell = make_cell()
        cell.start()
        with pytest.raises(ConfigurationError):
            cell.start()

    def test_engine_selection(self, make_cell):
        cell = make_cell(engine="siena")
        assert isinstance(cell.engine, SienaTranslationBackend)

    def test_cost_meter_wired_to_sim_host(self, make_cell):
        cell = make_cell(engine="siena")
        assert cell.engine._meter is cell.transport.host
        assert cell.bus.meter is cell.transport.host

    def test_standard_translators_registered(self, make_cell):
        cell = make_cell()
        assert "sensor.hr" in cell.bootstrap.known_device_types()
        assert "actuator.pump" in cell.bootstrap.known_device_types()

    def test_quench_optional(self, make_cell):
        assert make_cell().quench is None

    def test_quench_enabled(self, sim, simnet):
        simnet.add_node("pda2", profile=PDA_PROFILE)
        cell = SelfManagedCell(SimTransport(simnet, "pda2"), sim,
                               CellConfig(cell_name="q", enable_quench=True))
        assert cell.quench is not None
        assert cell.bus.quench is cell.quench


class TestEndToEndPolicyFlow:
    def test_sensor_to_nurse_via_policy(self, sim, make_cell,
                                        device_endpoint):
        cell = make_cell()
        cell.load_policies(POLICY_SRC)
        sensor = ManualSensor(device_endpoint("hr-1"), sim, "hr-1",
                              "sensor.hr")
        display = NurseDisplay(device_endpoint("nurse"), sim, "nurse")
        cell.start()
        sensor.start()
        display.start()
        sim.run(4.0)
        assert set(cell.member_names()) == {"hr-1", "nurse"}

        proto = HeartRateProtocol("p-1")
        sensor.send_reading(proto.encode_reading(90.0))    # quiet
        sensor.send_reading(proto.encode_reading(150.0))   # alarm
        sim.run(10.0)
        assert display.last_message() == "alarm"
        assert len(cell.log) == 1
        assert cell.log[0][2]["hr"] == 150.0

    def test_cell_subscribe_helper(self, sim, make_cell):
        cell = make_cell()
        got = []
        cell.subscribe(Filter.where("t"), got.append)
        cell.publisher("svc").publish("t", {"v": 1})
        sim.run_until_idle()
        assert len(got) == 1

    def test_repr_is_informative(self, make_cell):
        cell = make_cell()
        text = repr(cell)
        assert "ward" in text and "forwarding" in text
