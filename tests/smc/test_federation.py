"""SMC federation: import, aggregation, loops, duplicates, purge survival."""

import pytest

from repro.devices.actuators import ManualSensor
from repro.devices.protocols import HeartRateProtocol
from repro.errors import FederationError
from repro.matching.filters import Constraint, Filter, Op
from repro.sim.hosts import LAPTOP_PROFILE, PDA_PROFILE, SENSOR_PROFILE
from repro.smc.cell import CellConfig, SelfManagedCell
from repro.smc.federation import FederationLink, aggregate_filters
from repro.transport.endpoint import PacketEndpoint
from repro.transport.simnet import SimTransport


class TestAggregation:
    def test_covered_filters_dropped(self):
        broad = Filter([Constraint("type", Op.PREFIX, "health.")])
        narrow = Filter([Constraint("type", Op.EQ, "health.hr")])
        assert aggregate_filters([narrow, broad]) == [broad]
        assert aggregate_filters([broad, narrow]) == [broad]

    def test_unrelated_filters_kept(self):
        a = Filter.where("health.hr")
        b = Filter.where("smc.member.new")
        assert set(aggregate_filters([a, b])) == {a, b}

    def test_duplicates_collapse(self):
        a = Filter.where("health.hr")
        assert aggregate_filters([a, Filter.where("health.hr")]) == [a]


@pytest.fixture
def two_cells(sim, simnet):
    """patient cell + clinic cell + a sensor in the patient cell."""
    simnet.add_node("pda-a", profile=PDA_PROFILE)
    simnet.add_node("pc-b", profile=LAPTOP_PROFILE)
    cell_a = SelfManagedCell(SimTransport(simnet, "pda-a"), sim,
                             CellConfig(cell_name="patient",
                                        patient="p-1", purge_after_s=4.0,
                                        silent_after_s=1.5))
    cell_b = SelfManagedCell(SimTransport(simnet, "pc-b"), sim,
                             CellConfig(cell_name="clinic", patient="-"))

    def endpoint(name):
        simnet.add_node(name, profile=SENSOR_PROFILE)
        return PacketEndpoint(SimTransport(simnet, name), sim)

    sensor = ManualSensor(endpoint("hr-1"), sim, "hr-1", "sensor.hr",
                          target_cell="patient")
    link = FederationLink(cell_b, endpoint("fed-link"), sim,
                          [Filter.where("health.hr")],
                          peer_cell_name="patient")
    cell_a.start()
    cell_b.start()
    sensor.start()
    link.start()
    sim.run(4.0)
    assert link.connected and sensor.joined
    return cell_a, cell_b, sensor, link


class TestImport:
    def test_matching_events_imported_with_metadata(self, sim, two_cells):
        cell_a, cell_b, sensor, link = two_cells
        got = []
        cell_b.subscribe(Filter.where("health.hr"), got.append)
        sensor.send_reading(HeartRateProtocol("p-1").encode_reading(140.0))
        sim.run(sim.now() + 8.0)
        assert len(got) == 1
        event = got[0]
        assert event.get("hr") == 140.0
        assert event.get("fed.path") == "patient>clinic"
        assert event.get("fed.origin")
        assert link.stats.imported == 1

    def test_non_matching_events_stay_home(self, sim, two_cells):
        cell_a, cell_b, sensor, link = two_cells
        got = []
        cell_b.subscribe(Filter.for_type_prefix("health."), got.append)
        cell_a.publisher("svc").publish("health.temp", {"celsius": 37.0})
        sim.run(sim.now() + 5.0)
        assert got == []

    def test_no_import_loop_between_peered_cells(self, sim, simnet,
                                                 two_cells):
        cell_a, cell_b, sensor, link_ab = two_cells
        # Peer the other way too: patient imports hr events from clinic.
        simnet.add_node("fed-link-2", profile=SENSOR_PROFILE)
        link_ba = FederationLink(
            cell_a, PacketEndpoint(SimTransport(simnet, "fed-link-2"), sim),
            sim, [Filter.where("health.hr")], peer_cell_name="clinic")
        link_ba.start()
        sim.run(sim.now() + 6.0)
        assert link_ba.connected

        before_a = cell_a.bus.stats.published
        sensor.send_reading(HeartRateProtocol("p-1").encode_reading(150.0))
        sim.run(sim.now() + 15.0)
        # The event visited the clinic once and was NOT re-imported home.
        assert link_ba.stats.suppressed_loops >= 1
        # No publication storm in the patient cell.
        assert cell_a.bus.stats.published - before_a < 10

    def test_duplicate_suppression_by_origin(self, sim, two_cells):
        cell_a, cell_b, sensor, link = two_cells
        got = []
        cell_b.subscribe(Filter.where("health.hr"), got.append)
        # Inject the same origin event twice through the import callback
        # (as two redundant paths would).
        from repro.core.events import Event
        from repro.ids import service_id_from_name
        event = Event("health.hr", {"hr": 99.0},
                      service_id_from_name("origin-x"), 7, 0.0)
        link._on_imported(event)
        link._on_imported(event)
        sim.run(sim.now() + 1.0)    # cells keep beaconing: bounded run
        assert len(got) == 1
        assert link.stats.suppressed_duplicates == 1

    def test_link_needs_imports(self, sim, two_cells, simnet):
        cell_a, cell_b, *_ = two_cells
        simnet.add_node("empty-link", profile=SENSOR_PROFILE)
        with pytest.raises(FederationError):
            FederationLink(cell_b,
                           PacketEndpoint(SimTransport(simnet, "empty-link"),
                                          sim),
                           sim, [])

    def test_survives_purge_and_rejoin(self, sim, simnet, two_cells):
        cell_a, cell_b, sensor, link = two_cells
        got = []
        cell_b.subscribe(Filter.where("health.hr"), got.append)

        # Partition the link node from the patient cell long enough to be
        # purged, then heal.
        simnet.set_link_blocked("pda-a", "fed-link", True)
        sim.run(sim.now() + 10.0)
        assert not cell_a.bus.is_member(link.client.service_id)
        simnet.set_link_blocked("pda-a", "fed-link", False)
        sim.run(sim.now() + 10.0)
        assert link.connected

        sensor.send_reading(HeartRateProtocol("p-1").encode_reading(155.0))
        sim.run(sim.now() + 10.0)
        assert [e.get("hr") for e in got] == [155.0]
