"""Shared fixtures.

Unit tests run on a virtual-time :class:`Simulator`; network-flavoured
tests get an in-memory hub or a simulated network.  Everything is
deterministic — no test depends on wall-clock time or real sockets except
the explicitly-marked UDP integration tests.
"""

import pytest

from repro.ids import service_id_from_name
from repro.sim.hosts import LAPTOP_PROFILE, PDA_PROFILE, SENSOR_PROFILE, SimHost
from repro.sim.kernel import Simulator
from repro.sim.radio import USB_IP, WIFI_11B, SimNetwork
from repro.sim.rng import RngRegistry
from repro.transport.endpoint import PacketEndpoint
from repro.transport.inmem import InMemoryHub
from repro.transport.simnet import SimTransport


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def hub(sim):
    return InMemoryHub(sim)


@pytest.fixture
def sid():
    """Factory for deterministic service ids."""
    return service_id_from_name


@pytest.fixture
def simnet(sim):
    """A simulated network with one WiFi medium and a node factory."""
    network = SimNetwork(sim, RngRegistry(1234))
    medium = network.add_medium("wifi", WIFI_11B)

    def add_node(name, profile=SENSOR_PROFILE, position=(0.0, 0.0)):
        network.attach(name, SimHost(sim, profile, name), medium, position)
        return SimTransport(network, name)

    network.add_node = add_node
    return network


@pytest.fixture
def usb_net(sim):
    """The paper's wired testbed: PDA + laptop over USB-IP."""
    network = SimNetwork(sim, RngRegistry(99))
    medium = network.add_medium("usb", USB_IP)
    network.attach("pda", SimHost(sim, PDA_PROFILE, "pda"), medium)
    network.attach("laptop", SimHost(sim, LAPTOP_PROFILE, "laptop"), medium)
    return network


@pytest.fixture
def endpoints(sim, hub):
    """Factory for PacketEndpoints joined through the in-memory hub."""

    def make(name, **kwargs):
        return PacketEndpoint(hub.create(name), sim, **kwargs)

    return make
