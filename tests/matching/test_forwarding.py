"""Forwarding (counting) matcher: index behaviour and edge cases."""

from repro.ids import service_id_from_name
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.matching.forwarding import ForwardingMatcher

SID = service_id_from_name("s")


def sub(sub_id, *filter_list):
    return Subscription(sub_id, SID, list(filter_list))


def match_ids(matcher, attrs):
    return [s.sub_id for s in matcher.match(attrs)]


class TestIndexing:
    def test_counts_indexed_constraints(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter.where("t", a=1, b=(">", 2))))
        assert matcher.constraints_indexed == 3        # type + a + b

    def test_equality_by_hash_across_int_float(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("x", Op.EQ, 5)])))
        assert match_ids(matcher, {"x": 5.0}) == [1]   # 5 == 5.0, same kind

    def test_bool_does_not_satisfy_number_eq(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("x", Op.EQ, 1)])))
        assert match_ids(matcher, {"x": True}) == []

    def test_ne_requires_same_kind(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("x", Op.NE, 5)])))
        assert match_ids(matcher, {"x": 6}) == [1]
        assert match_ids(matcher, {"x": "six"}) == []

    def test_order_ops_use_thresholds(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("x", Op.LT, 10)])))
        matcher.subscribe(sub(2, Filter([Constraint("x", Op.LE, 10)])))
        matcher.subscribe(sub(3, Filter([Constraint("x", Op.GT, 10)])))
        matcher.subscribe(sub(4, Filter([Constraint("x", Op.GE, 10)])))
        assert match_ids(matcher, {"x": 10}) == [2, 4]
        assert match_ids(matcher, {"x": 9}) == [1, 2]
        assert match_ids(matcher, {"x": 11}) == [3, 4]

    def test_string_order_separate_from_numbers(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("x", Op.GT, "m")])))
        matcher.subscribe(sub(2, Filter([Constraint("x", Op.GT, 5)])))
        assert match_ids(matcher, {"x": "z"}) == [1]
        assert match_ids(matcher, {"x": 50}) == [2]

    def test_string_shape_ops(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("s", Op.PREFIX, "he")])))
        matcher.subscribe(sub(2, Filter([Constraint("s", Op.SUFFIX, "lo")])))
        matcher.subscribe(sub(3, Filter([Constraint("s", Op.CONTAINS, "ell")])))
        assert match_ids(matcher, {"s": "hello"}) == [1, 2, 3]
        assert match_ids(matcher, {"s": "helper"}) == [1]

    def test_bytes_string_ops(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("s", Op.PREFIX, b"ab")])))
        assert match_ids(matcher, {"s": b"abc"}) == [1]
        assert match_ids(matcher, {"s": "abc"}) == []   # str != bytes

    def test_duplicate_constraint_across_filters(self):
        matcher = ForwardingMatcher()
        shared = Constraint("x", Op.GT, 5)
        matcher.subscribe(sub(1, Filter([shared])))
        matcher.subscribe(sub(2, Filter([shared, Constraint("y", Op.EQ, 1)])))
        assert match_ids(matcher, {"x": 10}) == [1]
        assert match_ids(matcher, {"x": 10, "y": 1}) == [1, 2]


class TestCounting:
    def test_partial_satisfaction_does_not_match(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter.where("t", a=1, b=2)))
        assert match_ids(matcher, {"type": "t", "a": 1}) == []

    def test_multiple_constraints_same_attribute(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("x", Op.GT, 0),
                                         Constraint("x", Op.LT, 10)])))
        assert match_ids(matcher, {"x": 5}) == [1]
        assert match_ids(matcher, {"x": 15}) == []

    def test_extra_attributes_ignored(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter.where("t")))
        assert match_ids(matcher, {"type": "t", "noise": 7,
                                   "more": "noise"}) == [1]


class TestRemoval:
    def test_unsubscribe_cleans_all_indexes(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([
            Constraint("a", Op.EQ, 1), Constraint("b", Op.NE, 2),
            Constraint("c", Op.GT, 3), Constraint("d", Op.PREFIX, "x"),
            Constraint("e", Op.EXISTS)])))
        matcher.unsubscribe(1)
        assert matcher._attr_indexes == {}
        assert matcher._filter_needs == {}
        assert matcher._filter_sub == {}

    def test_unsubscribe_leaves_others_matched(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("x", Op.GT, 5)])))
        matcher.subscribe(sub(2, Filter([Constraint("x", Op.GT, 5)])))
        matcher.unsubscribe(1)
        assert match_ids(matcher, {"x": 10}) == [2]

    def test_empty_filter_removal(self):
        matcher = ForwardingMatcher()
        matcher.subscribe(sub(1, Filter()))
        matcher.unsubscribe(1)
        assert match_ids(matcher, {"anything": 1}) == []
