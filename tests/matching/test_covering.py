"""Covering and overlap relations, including soundness properties.

The implementations are conservative; the properties assert exactly the
direction that must never be wrong:

* if ``filter_covers(f, g)`` then every attribute map matching ``g``
  matches ``f`` (covering claims are proofs);
* if ``filters_overlap(f, g)`` is False then no attribute map matches both
  (disjointness claims are proofs — the quench-safety direction).
"""

import pytest
from hypothesis import given, settings

from repro.ids import service_id_from_name
from repro.matching.covering import (
    constraint_covers,
    constraints_contradict,
    filter_covers,
    filters_overlap,
    subscription_covers,
    subscriptions_overlap,
)
from repro.matching.filters import Constraint, Filter, Op, Subscription
from tests.matching.strategies import attribute_maps, filters

SID = service_id_from_name("s")


def c(name, op, value=None):
    return Constraint(name, op, value)


class TestConstraintCovers:
    @pytest.mark.parametrize("general,specific", [
        (c("x", Op.EXISTS), c("x", Op.EQ, 5)),
        (c("x", Op.EXISTS), c("x", Op.PREFIX, "a")),
        (c("x", Op.EQ, 5), c("x", Op.EQ, 5)),
        (c("x", Op.NE, 5), c("x", Op.EQ, 6)),
        (c("x", Op.NE, 5), c("x", Op.GT, 5)),
        (c("x", Op.LT, 10), c("x", Op.LT, 10)),
        (c("x", Op.LT, 10), c("x", Op.LT, 5)),
        (c("x", Op.LT, 10), c("x", Op.LE, 9)),
        (c("x", Op.LT, 10), c("x", Op.EQ, 9)),
        (c("x", Op.LE, 10), c("x", Op.EQ, 10)),
        (c("x", Op.GT, 10), c("x", Op.GE, 11)),
        (c("x", Op.GE, 10), c("x", Op.GT, 10)),
        (c("x", Op.PREFIX, "he"), c("x", Op.PREFIX, "hell")),
        (c("x", Op.PREFIX, "he"), c("x", Op.EQ, "hello")),
        (c("x", Op.SUFFIX, "lo"), c("x", Op.SUFFIX, "ello")),
        (c("x", Op.CONTAINS, "ell"), c("x", Op.EQ, "hello")),
        (c("x", Op.CONTAINS, "l"), c("x", Op.PREFIX, "hello")),
    ])
    def test_covering_pairs(self, general, specific):
        assert constraint_covers(general, specific)

    @pytest.mark.parametrize("general,specific", [
        (c("x", Op.EQ, 5), c("x", Op.EQ, 6)),
        (c("x", Op.EQ, 5), c("x", Op.EXISTS)),
        (c("x", Op.EQ, 5), c("x", Op.LE, 5)),
        (c("x", Op.LT, 10), c("x", Op.LT, 11)),
        (c("x", Op.LT, 10), c("x", Op.LE, 10)),
        (c("x", Op.GT, 10), c("x", Op.GE, 10)),
        (c("x", Op.NE, 5), c("x", Op.GE, 5)),
        (c("x", Op.PREFIX, "hell"), c("x", Op.PREFIX, "he")),
        (c("y", Op.EXISTS), c("x", Op.EQ, 5)),          # different attr
        (c("x", Op.EQ, 5), c("x", Op.EQ, "5")),          # different kind
        (c("x", Op.NE, 5), c("x", Op.EQ, "word")),       # kind differs
    ])
    def test_non_covering_pairs(self, general, specific):
        assert not constraint_covers(general, specific)


class TestFilterCovers:
    def test_empty_filter_covers_all(self):
        assert filter_covers(Filter(), Filter.where("t", x=1))

    def test_nothing_covers_empty_except_empty(self):
        assert not filter_covers(Filter.where("t"), Filter())
        assert filter_covers(Filter(), Filter())

    def test_fewer_constraints_cover_more(self):
        broad = Filter([c("hr", Op.GT, 100)])
        narrow = Filter([c("hr", Op.GT, 100), c("patient", Op.EQ, "p")])
        assert filter_covers(broad, narrow)
        assert not filter_covers(narrow, broad)

    def test_subscription_covering(self):
        broad = Subscription(1, SID, [Filter([c("x", Op.GT, 0)])])
        narrow = Subscription(2, SID, [Filter([c("x", Op.GT, 5)]),
                                       Filter([c("x", Op.EQ, 9)])])
        assert subscription_covers(broad, narrow)
        assert not subscription_covers(narrow, broad)

    @settings(max_examples=300)
    @given(filters(), filters(), attribute_maps())
    def test_covering_is_sound(self, general, specific, attrs):
        if filter_covers(general, specific) and specific.matches(attrs):
            assert general.matches(attrs)

    @settings(max_examples=200)
    @given(filters())
    def test_covering_is_reflexive(self, filt):
        assert filter_covers(filt, filt)

    @settings(max_examples=200)
    @given(filters(), filters(), filters())
    def test_covering_is_transitive(self, a, b, d):
        if filter_covers(a, b) and filter_covers(b, d):
            assert filter_covers(a, d)


class TestContradiction:
    @pytest.mark.parametrize("one,other", [
        (c("x", Op.EQ, 5), c("x", Op.EQ, 6)),
        (c("x", Op.EQ, 5), c("x", Op.GT, 7)),
        (c("x", Op.LT, 3), c("x", Op.GT, 5)),
        (c("x", Op.LE, 3), c("x", Op.GE, 5)),
        (c("x", Op.LT, 5), c("x", Op.GE, 5)),
        (c("x", Op.PREFIX, "abc"), c("x", Op.PREFIX, "xyz")),
        (c("x", Op.SUFFIX, "abc"), c("x", Op.SUFFIX, "xyz")),
        (c("x", Op.EQ, 5), c("x", Op.EQ, "five")),     # kind mismatch
        (c("x", Op.GT, 5), c("x", Op.PREFIX, "a")),    # kind mismatch
    ])
    def test_contradictory_pairs(self, one, other):
        assert constraints_contradict(one, other)
        assert constraints_contradict(other, one)

    @pytest.mark.parametrize("one,other", [
        (c("x", Op.EQ, 5), c("x", Op.EQ, 5)),
        (c("x", Op.LT, 5), c("x", Op.GT, 3)),
        (c("x", Op.LE, 5), c("x", Op.GE, 5)),
        (c("x", Op.EXISTS), c("x", Op.EQ, 5)),
        (c("x", Op.EQ, 5), c("y", Op.EQ, 6)),          # different attrs
        (c("x", Op.PREFIX, "ab"), c("x", Op.PREFIX, "abc")),
    ])
    def test_compatible_pairs(self, one, other):
        assert not constraints_contradict(one, other)


class TestOverlap:
    def test_disjoint_types_do_not_overlap(self):
        assert not filters_overlap(Filter.where("health.hr"),
                                   Filter.where("smc.member.new"))

    def test_overlapping_ranges_overlap(self):
        a = Filter([c("hr", Op.GT, 100)])
        b = Filter([c("hr", Op.LT, 200)])
        assert filters_overlap(a, b)

    def test_empty_filter_overlaps_everything(self):
        assert filters_overlap(Filter(), Filter.where("t", x=1))

    def test_subscription_overlap(self):
        a = Subscription(1, SID, [Filter.where("x"), Filter.where("y")])
        b = Subscription(2, SID, [Filter.where("y")])
        d = Subscription(3, SID, [Filter.where("z")])
        assert subscriptions_overlap(a, b)
        assert not subscriptions_overlap(b, d)

    @settings(max_examples=300)
    @given(filters(), filters(), attribute_maps())
    def test_overlap_is_sound_for_quenching(self, one, other, attrs):
        # If the relation says "disjoint", no event may match both.
        if not filters_overlap(one, other):
            assert not (one.matches(attrs) and other.matches(attrs))

    @settings(max_examples=200)
    @given(filters(), filters())
    def test_overlap_is_symmetric(self, one, other):
        assert filters_overlap(one, other) == filters_overlap(other, one)
