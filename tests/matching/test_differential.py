"""Differential suite: every engine, both match paths, identical answers.

The paper's architecture bets that the pub/sub mechanism can be swapped
(Siena first, then the dedicated matcher) without disturbing the semantics
above it.  The batch publish pipeline adds a second axis: per-event
``match`` versus amortised ``match_batch``.  This suite pins both axes at
once — Hypothesis generates subscription tables and event streams, and
every engine on every path must return exactly the match sets the
brute-force oracle returns, including across registration churn (which
must invalidate the forwarding engine's batch memo).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids import service_id_from_name
from repro.matching.engine import BruteForceMatcher, make_engine
from tests.matching.strategies import attribute_maps, filters

SID = service_id_from_name("diff")

#: Engines under test.  The typed engine participates because the shared
#: strategies never constrain the reserved ``type`` attribute, the one
#: name it interprets differently (subtype-conformance).
ENGINE_NAMES = ("forwarding", "siena", "siena-bare", "typed")

subscription_tables = st.lists(
    st.lists(filters(), min_size=1, max_size=3),   # filters per subscription
    min_size=1, max_size=8)

event_streams = st.lists(attribute_maps(), min_size=1, max_size=12)


def _subscribe_all(engines, table):
    from repro.matching.filters import Subscription
    for index, filter_list in enumerate(table):
        subscription = Subscription(index + 1, SID, filter_list)
        for engine in engines:
            engine.subscribe(subscription)


def _ids(subscriptions):
    return [s.sub_id for s in subscriptions]


class TestEnginesAgreeOnBothPaths:
    @settings(max_examples=120, deadline=None)
    @given(subscription_tables, event_streams)
    def test_match_and_match_batch_agree_with_oracle(self, table, stream):
        oracle = BruteForceMatcher()
        engines = [make_engine(name) for name in ENGINE_NAMES]
        _subscribe_all([oracle] + engines, table)

        expected = [_ids(oracle.match(attrs)) for attrs in stream]
        # The oracle's own batch path must agree with its per-event path.
        assert [_ids(subs) for subs in oracle.match_batch(stream)] == expected

        for engine in engines:
            per_event = [_ids(engine.match(attrs)) for attrs in stream]
            assert per_event == expected, engine.name
            batched = [_ids(subs) for subs in engine.match_batch(stream)]
            assert batched == expected, engine.name

    @settings(max_examples=80, deadline=None)
    @given(subscription_tables, event_streams, st.data())
    def test_agreement_survives_registration_churn(self, table, stream, data):
        """Batch, churn registrations, batch again: memos must invalidate."""
        oracle = BruteForceMatcher()
        engines = [make_engine(name) for name in ENGINE_NAMES]
        _subscribe_all([oracle] + engines, table)

        # First batch round warms any per-engine caches.
        warm = [_ids(subs) for subs in oracle.match_batch(stream)]
        for engine in engines:
            assert [_ids(subs) for subs in engine.match_batch(stream)] == warm, \
                engine.name

        # Unsubscribe a random subset, leaving at least one table entry.
        to_remove = data.draw(st.sets(st.integers(1, len(table)),
                                      max_size=len(table) - 1))
        for sub_id in sorted(to_remove):
            oracle.unsubscribe(sub_id)
            for engine in engines:
                engine.unsubscribe(sub_id)

        expected = [_ids(oracle.match(attrs)) for attrs in stream]
        assert [_ids(subs) for subs in oracle.match_batch(stream)] == expected
        for engine in engines:
            assert [_ids(subs) for subs in engine.match_batch(stream)] \
                == expected, engine.name
            assert [_ids(engine.match(attrs)) for attrs in stream] \
                == expected, engine.name

    @settings(max_examples=60, deadline=None)
    @given(subscription_tables, event_streams)
    def test_batch_counts_events_matched_like_per_event(self, table, stream):
        per_event = make_engine("forwarding")
        batched = make_engine("forwarding")
        _subscribe_all([per_event, batched], table)
        for attrs in stream:
            per_event.match(attrs)
        batched.match_batch(stream)
        assert per_event.events_matched == batched.events_matched


class TestBatchEdgeCases:
    def test_empty_batch(self):
        for name in ("brute",) + ENGINE_NAMES:
            engine = make_engine(name)
            assert engine.match_batch([]) == []
            assert engine.events_matched == 0

    def test_batch_on_empty_engine(self):
        for name in ("brute",) + ENGINE_NAMES:
            engine = make_engine(name)
            assert engine.match_batch([{"a": 1}, {}]) == [[], []]

    def test_forwarding_memo_reuse_is_observable(self):
        from repro.matching.filters import Filter, Subscription
        engine = make_engine("forwarding")
        engine.subscribe(Subscription(1, SID, [Filter.where("t", hr=(">", 5))]))
        stream = [{"type": "t", "hr": 9}] * 50
        engine.match_batch(stream)
        assert engine.memo_hits > engine.memo_misses
        hits = engine.memo_hits
        # Registration churn invalidates the memo wholesale.
        engine.subscribe(Subscription(2, SID, [Filter.where("t")]))
        engine.match_batch(stream[:1])
        assert engine.memo_misses >= 3   # recomputed after invalidation
        assert engine.memo_hits >= hits
