"""Hypothesis strategies for filters, constraints and events.

Shared by the covering-soundness and engine-equivalence property tests.
The value domain is deliberately small (few attribute names, small
integers, short strings) so random filters and events actually collide —
a huge domain would make every test vacuous.
"""

from hypothesis import strategies as st

from repro.matching.filters import Constraint, Filter, Op

ATTR_NAMES = ("a", "b", "c", "hr")
STRINGS = ("", "al", "alpha", "alphabet", "beta", "bet", "x")

numbers = st.one_of(st.integers(min_value=-5, max_value=5),
                    st.sampled_from((-1.5, 0.5, 2.5)))
strings = st.sampled_from(STRINGS)
scalar_values = st.one_of(numbers, strings, st.booleans(),
                          st.sampled_from((b"ab", b"cd")))


@st.composite
def constraints(draw):
    name = draw(st.sampled_from(ATTR_NAMES))
    op = draw(st.sampled_from(list(Op)))
    if op == Op.EXISTS:
        return Constraint(name, op)
    if op in (Op.LT, Op.LE, Op.GT, Op.GE):
        value = draw(st.one_of(numbers, strings.filter(bool)))
    elif op in (Op.PREFIX, Op.SUFFIX, Op.CONTAINS):
        value = draw(strings)
    else:
        value = draw(scalar_values)
    return Constraint(name, op, value)


@st.composite
def filters(draw, max_constraints=3):
    return Filter(draw(st.lists(constraints(), min_size=0,
                                max_size=max_constraints)))


@st.composite
def attribute_maps(draw):
    return draw(st.dictionaries(st.sampled_from(ATTR_NAMES), scalar_values,
                                max_size=len(ATTR_NAMES)))
