"""Siena reproduction: poset structure, subtree skipping, translation cost."""

from repro.ids import service_id_from_name
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.matching.siena import (
    SienaAttributeValue,
    SienaMatcher,
    SienaNotification,
    SienaTranslationBackend,
)
from repro.sim.hosts import SimHost, PDA_PROFILE

SID = service_id_from_name("s")


def sub(sub_id, *filter_list):
    return Subscription(sub_id, SID, list(filter_list))


class TestPoset:
    def test_covered_filter_becomes_child(self):
        matcher = SienaMatcher()
        broad = Filter([Constraint("hr", Op.GT, 0)])
        narrow = Filter([Constraint("hr", Op.GT, 100)])
        matcher.subscribe(sub(1, broad))
        matcher.subscribe(sub(2, narrow))
        # Only the broad filter is a root.
        assert len(matcher._roots) == 1
        assert matcher.poset_depth() == 2

    def test_insertion_order_does_not_matter(self):
        for order in ([1, 2, 3], [3, 2, 1], [2, 3, 1]):
            matcher = SienaMatcher()
            filters_by_id = {
                1: Filter([Constraint("hr", Op.GT, 0)]),
                2: Filter([Constraint("hr", Op.GT, 100)]),
                3: Filter([Constraint("hr", Op.GT, 200)]),
            }
            for sub_id in order:
                matcher.subscribe(sub(sub_id, filters_by_id[sub_id]))
            assert matcher.poset_depth() == 3, order
            assert len(matcher._roots) == 1

    def test_no_match_at_root_skips_subtree(self):
        matcher = SienaMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("hr", Op.GT, 0)])))
        for index in range(2, 12):
            matcher.subscribe(sub(index, Filter(
                [Constraint("hr", Op.GT, index * 10)])))
        matcher.nodes_visited = 0
        assert matcher.match({"bp": 120}) == []     # no hr attribute at all
        # Only the root was inspected; the chain below was skipped.
        assert matcher.nodes_visited == 1
        assert matcher.subtrees_skipped == 1

    def test_match_walks_only_matching_branches(self):
        matcher = SienaMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("t", Op.EQ, "a")])))
        matcher.subscribe(sub(2, Filter([Constraint("t", Op.EQ, "b")])))
        matcher.nodes_visited = 0
        matched = matcher.match({"t": "a"})
        assert [s.sub_id for s in matched] == [1]
        assert matcher.nodes_visited == 2           # both roots, no children

    def test_removal_reattaches_orphans(self):
        matcher = SienaMatcher()
        top = Filter([Constraint("x", Op.GT, 0)])
        middle = Filter([Constraint("x", Op.GT, 10)])
        bottom = Filter([Constraint("x", Op.GT, 20)])
        matcher.subscribe(sub(1, top))
        matcher.subscribe(sub(2, middle))
        matcher.subscribe(sub(3, bottom))
        matcher.unsubscribe(2)
        # Bottom must still be found through top.
        assert [s.sub_id for s in matcher.match({"x": 50})] == [1, 3]
        assert matcher.poset_depth() == 2

    def test_removing_root_promotes_children(self):
        matcher = SienaMatcher()
        matcher.subscribe(sub(1, Filter([Constraint("x", Op.GT, 0)])))
        matcher.subscribe(sub(2, Filter([Constraint("x", Op.GT, 10)])))
        matcher.unsubscribe(1)
        assert [s.sub_id for s in matcher.match({"x": 50})] == [2]
        assert len(matcher._roots) == 1

    def test_identical_filters_share_a_node(self):
        matcher = SienaMatcher()
        same = Filter([Constraint("x", Op.EQ, 1)])
        matcher.subscribe(sub(1, same))
        matcher.subscribe(sub(2, Filter([Constraint("x", Op.EQ, 1)])))
        assert len(matcher._nodes) == 1
        assert [s.sub_id for s in matcher.match({"x": 1})] == [1, 2]
        matcher.unsubscribe(1)
        assert [s.sub_id for s in matcher.match({"x": 1})] == [2]


class TestTranslationObjects:
    def test_attribute_value_boxes_types(self):
        assert SienaAttributeValue(5).type_name == "long"
        assert SienaAttributeValue(5.0).type_name == "double"
        assert SienaAttributeValue("x").type_name == "string"
        assert SienaAttributeValue(True).type_name == "bool"
        assert SienaAttributeValue(b"x").type_name == "bytearray"

    def test_notification_roundtrip(self):
        attrs = {"hr": 120.5, "patient": "p-1", "alarm": True}
        notification = SienaNotification.from_attr_map(attrs)
        assert notification.to_attr_map() == attrs

    def test_wire_size_scales_with_payload(self):
        small = SienaNotification.from_attr_map({"data": b"x"})
        large = SienaNotification.from_attr_map({"data": b"x" * 1000})
        assert large.wire_size() - small.wire_size() == 999


class TestTranslationBackend:
    def test_counts_translated_bytes(self):
        backend = SienaTranslationBackend()
        backend.subscribe(sub(1, Filter.where("t", hr=(">", 10))))
        before = backend.bytes_translated
        backend.match({"type": "t", "hr": 50, "data": b"z" * 500})
        assert backend.bytes_translated - before > 1500   # three passes

    def test_charges_simulated_host(self, sim):
        host = SimHost(sim, PDA_PROFILE, "pda")
        backend = SienaTranslationBackend(meter=host)
        backend.subscribe(sub(1, Filter.where("t")))
        backend.match({"type": "t", "data": b"z" * 1000})
        assert host.bytes_copied > 3000
        assert host.cpu_seconds_used > 0

    def test_same_results_as_inner(self):
        backend = SienaTranslationBackend()
        bare = SienaMatcher()
        for index, filt in enumerate([Filter.where("a", x=(">", 1)),
                                      Filter.where("b"),
                                      Filter([Constraint("x", Op.EXISTS)])]):
            backend.subscribe(sub(index + 1, filt))
            bare.subscribe(sub(index + 1, filt))
        for attrs in ({"type": "a", "x": 5}, {"type": "b"}, {"x": 0},
                      {"type": "z"}):
            assert ([s.sub_id for s in backend.match(attrs)]
                    == [s.sub_id for s in bare.match(attrs)])

    def test_unsubscribe_via_backend(self):
        backend = SienaTranslationBackend()
        backend.subscribe(sub(1, Filter.where("t")))
        backend.unsubscribe(1)
        assert backend.match({"type": "t"}) == []
        assert len(backend.inner) == 0
