"""Matching engines: common contract, cross-engine equivalence, stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MatchingError, SubscriptionNotFoundError
from repro.ids import service_id_from_name
from repro.matching.engine import BruteForceMatcher, make_engine
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.matching.forwarding import ForwardingMatcher
from repro.matching.siena import SienaMatcher, SienaTranslationBackend
from tests.matching.strategies import attribute_maps, filters

SID = service_id_from_name("s")
ENGINE_NAMES = ["brute", "siena-bare", "siena", "forwarding"]


def sub(sub_id, *filter_list):
    return Subscription(sub_id, SID, list(filter_list))


@pytest.fixture(params=ENGINE_NAMES)
def engine(request):
    return make_engine(request.param)


class TestCommonContract:
    def test_empty_engine_matches_nothing(self, engine):
        assert engine.match({"type": "x"}) == []

    def test_single_subscription(self, engine):
        engine.subscribe(sub(1, Filter.where("health.hr", hr=(">", 100))))
        assert [s.sub_id for s in engine.match(
            {"type": "health.hr", "hr": 120})] == [1]
        assert engine.match({"type": "health.hr", "hr": 80}) == []

    def test_results_in_id_order(self, engine):
        for sub_id in (3, 1, 2):
            engine.subscribe(sub(sub_id, Filter.where("t")))
        assert [s.sub_id for s in engine.match({"type": "t"})] == [1, 2, 3]

    def test_duplicate_id_rejected(self, engine):
        engine.subscribe(sub(1, Filter.where("t")))
        with pytest.raises(MatchingError):
            engine.subscribe(sub(1, Filter.where("u")))

    def test_unsubscribe(self, engine):
        engine.subscribe(sub(1, Filter.where("t")))
        engine.subscribe(sub(2, Filter.where("t")))
        engine.unsubscribe(1)
        assert [s.sub_id for s in engine.match({"type": "t"})] == [2]
        assert len(engine) == 1

    def test_unsubscribe_unknown_raises(self, engine):
        with pytest.raises(SubscriptionNotFoundError):
            engine.unsubscribe(99)

    def test_resubscribe_same_id_after_unsubscribe(self, engine):
        engine.subscribe(sub(1, Filter.where("t")))
        engine.unsubscribe(1)
        engine.subscribe(sub(1, Filter.where("u")))
        assert [s.sub_id for s in engine.match({"type": "u"})] == [1]

    def test_disjunction_matches_once(self, engine):
        engine.subscribe(sub(1, Filter.where("a"), Filter.where("b"),
                             Filter([Constraint("x", Op.EXISTS)])))
        matched = engine.match({"type": "a", "x": 1})
        assert [s.sub_id for s in matched] == [1]     # not three times

    def test_empty_filter_subscription_matches_all(self, engine):
        engine.subscribe(sub(1, Filter()))
        assert [s.sub_id for s in engine.match({"anything": 1})] == [1]
        assert [s.sub_id for s in engine.match({})] == [1]

    def test_range_filter(self, engine):
        engine.subscribe(sub(1, Filter([Constraint("hr", Op.GT, 60),
                                        Constraint("hr", Op.LT, 100)])))
        assert engine.match({"hr": 80})
        assert not engine.match({"hr": 50})
        assert not engine.match({"hr": 120})

    def test_subscriptions_listing(self, engine):
        engine.subscribe(sub(2, Filter.where("b")))
        engine.subscribe(sub(1, Filter.where("a")))
        assert [s.sub_id for s in engine.subscriptions()] == [1, 2]

    def test_get(self, engine):
        engine.subscribe(sub(5, Filter.where("x")))
        assert engine.get(5).sub_id == 5
        assert engine.get(6) is None

    def test_match_counter(self, engine):
        engine.subscribe(sub(1, Filter.where("t")))
        engine.match({"type": "t"})
        engine.match({"type": "u"})
        assert engine.events_matched == 2


class TestEquivalence:
    """Every engine must agree with the brute-force oracle."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(filters(), min_size=1, max_size=6), attribute_maps())
    def test_engines_agree_with_oracle(self, filter_list, attrs):
        oracle = BruteForceMatcher()
        others = [make_engine(name) for name in
                  ("siena-bare", "siena", "forwarding")]
        for index, filt in enumerate(filter_list):
            subscription = sub(index + 1, filt)
            oracle.subscribe(subscription)
            for engine in others:
                engine.subscribe(subscription)
        expected = [s.sub_id for s in oracle.match(attrs)]
        for engine in others:
            actual = [s.sub_id for s in engine.match(attrs)]
            assert actual == expected, engine.name

    @settings(max_examples=100, deadline=None)
    @given(st.lists(filters(), min_size=2, max_size=6),
           st.data())
    def test_engines_agree_after_unsubscribes(self, filter_list, data):
        engines = {name: make_engine(name) for name in
                   ("brute", "siena-bare", "forwarding")}
        for index, filt in enumerate(filter_list):
            subscription = sub(index + 1, filt)
            for engine in engines.values():
                engine.subscribe(subscription)
        # Remove a random subset.
        to_remove = data.draw(st.sets(
            st.integers(1, len(filter_list)),
            max_size=len(filter_list) - 1))
        for sub_id in sorted(to_remove):
            for engine in engines.values():
                engine.unsubscribe(sub_id)
        attrs = data.draw(attribute_maps())
        results = {name: [s.sub_id for s in engine.match(attrs)]
                   for name, engine in engines.items()}
        assert results["siena-bare"] == results["brute"]
        assert results["forwarding"] == results["brute"]


class TestMakeEngine:
    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_engine("rabbitmq")

    def test_names(self):
        assert make_engine("forwarding").name == "forwarding"
        assert make_engine("siena").name == "siena"
        assert make_engine("siena-bare").name == "siena-bare"
        assert make_engine("typed").name == "typed"
        assert make_engine("brute").name == "brute"

    def test_siena_is_translation_backend(self):
        engine = make_engine("siena")
        assert isinstance(engine, SienaTranslationBackend)
        assert isinstance(engine.inner, SienaMatcher)

    def test_forwarding_type(self):
        assert isinstance(make_engine("forwarding"), ForwardingMatcher)
