"""Type-based publish/subscribe (paper Section VI)."""

import pytest

from repro.errors import FilterError
from repro.ids import service_id_from_name
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.matching.typed import (
    TypedMatcher,
    is_subtype,
    split_type,
    typed_subscription,
)

SID = service_id_from_name("s")


class TestTypeHierarchy:
    def test_split(self):
        assert split_type("health.hr.alarm") == ["health", "hr", "alarm"]

    def test_empty_rejected(self):
        with pytest.raises(FilterError):
            split_type("")

    def test_empty_segment_rejected(self):
        with pytest.raises(FilterError):
            split_type("health..hr")

    @pytest.mark.parametrize("candidate,ancestor,expected", [
        ("health.hr", "health.hr", True),
        ("health.hr.alarm", "health.hr", True),
        ("health.hr.alarm", "health", True),
        ("health.hr", "health.hr.alarm", False),
        ("health.hrx", "health.hr", False),     # segments, not prefixes
        ("smc.member", "health", False),
    ])
    def test_is_subtype(self, candidate, ancestor, expected):
        assert is_subtype(candidate, ancestor) is expected


class TestTypedMatcher:
    def match_ids(self, matcher, attrs):
        return [s.sub_id for s in matcher.match(attrs)]

    def test_exact_type(self):
        matcher = TypedMatcher()
        matcher.subscribe(typed_subscription(1, SID, "health.hr"))
        assert self.match_ids(matcher, {"type": "health.hr"}) == [1]

    def test_subtype_polymorphism(self):
        # The whole point of type-based pub/sub: subscribing to a type
        # delivers its subtypes.
        matcher = TypedMatcher()
        matcher.subscribe(typed_subscription(1, SID, "health"))
        assert self.match_ids(matcher, {"type": "health.hr.alarm"}) == [1]
        assert self.match_ids(matcher, {"type": "health.bp"}) == [1]
        assert self.match_ids(matcher, {"type": "smc.member.new"}) == []

    def test_segment_boundaries_respected(self):
        matcher = TypedMatcher()
        matcher.subscribe(typed_subscription(1, SID, "health.hr"))
        assert self.match_ids(matcher, {"type": "health.hrx"}) == []

    def test_residual_content_filter(self):
        matcher = TypedMatcher()
        matcher.subscribe(typed_subscription(
            1, SID, "health.hr", residual=Filter([Constraint("hr", Op.GT,
                                                             120)])))
        assert self.match_ids(matcher, {"type": "health.hr.alarm",
                                        "hr": 150}) == [1]
        assert self.match_ids(matcher, {"type": "health.hr.alarm",
                                        "hr": 80}) == []

    def test_untyped_subscription_matches_everything(self):
        matcher = TypedMatcher()
        matcher.subscribe(Subscription(1, SID,
                                       [Filter([Constraint("x", Op.EXISTS)])]))
        assert self.match_ids(matcher, {"type": "any.thing", "x": 1}) == [1]
        assert self.match_ids(matcher, {"type": "any.thing"}) == []

    def test_once_per_subscription_across_levels(self):
        matcher = TypedMatcher()
        matcher.subscribe(Subscription(1, SID, [
            Filter([Constraint("type", Op.EQ, "health")]),
            Filter([Constraint("type", Op.EQ, "health.hr")]),
        ]))
        assert self.match_ids(matcher, {"type": "health.hr"}) == [1]

    def test_unsubscribe(self):
        matcher = TypedMatcher()
        matcher.subscribe(typed_subscription(1, SID, "health"))
        matcher.subscribe(typed_subscription(2, SID, "health.hr"))
        matcher.unsubscribe(1)
        assert self.match_ids(matcher, {"type": "health.hr"}) == [2]

    def test_two_type_constraints_rejected(self):
        matcher = TypedMatcher()
        bad = Subscription(1, SID, [Filter([
            Constraint("type", Op.EQ, "a"),
            Constraint("type", Op.EQ, "b")])])
        with pytest.raises(FilterError):
            matcher.subscribe(bad)

    def test_non_string_type_rejected(self):
        matcher = TypedMatcher()
        bad = Subscription(1, SID, [Filter([Constraint("type", Op.EQ, 5)])])
        with pytest.raises(FilterError):
            matcher.subscribe(bad)

    def test_deep_hierarchy(self):
        matcher = TypedMatcher()
        matcher.subscribe(typed_subscription(1, SID, "a.b.c.d.e"))
        matcher.subscribe(typed_subscription(2, SID, "a.b"))
        assert self.match_ids(matcher, {"type": "a.b.c.d.e.f"}) == [1, 2]
        assert self.match_ids(matcher, {"type": "a.b.c"}) == [2]
        assert self.match_ids(matcher, {"type": "a"}) == []
