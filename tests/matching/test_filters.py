"""Constraints, filters, subscriptions and their wire codec."""

import pytest
from hypothesis import given

from repro.errors import CodecError, FilterError
from repro.ids import service_id_from_name
from repro.matching.filters import (
    Constraint,
    Filter,
    Kind,
    Op,
    Subscription,
    decode_filter,
    decode_subscription,
    encode_filter,
    encode_subscription,
    kind_of,
)
from tests.matching.strategies import filters

SID = service_id_from_name("subscriber")


class TestKinds:
    def test_bool_is_its_own_kind(self):
        assert kind_of(True) == Kind.BOOL
        assert kind_of(1) == Kind.NUMBER

    def test_int_and_float_share_a_kind(self):
        assert kind_of(1) == kind_of(1.5) == Kind.NUMBER

    def test_str_bytes_distinct(self):
        assert kind_of("x") != kind_of(b"x")

    def test_unsupported_rejected(self):
        with pytest.raises(FilterError):
            kind_of([1])


class TestConstraint:
    @pytest.mark.parametrize("op,operand,value,expected", [
        (Op.EQ, 5, 5, True), (Op.EQ, 5, 5.0, True), (Op.EQ, 5, 6, False),
        (Op.NE, 5, 6, True), (Op.NE, 5, 5, False),
        (Op.LT, 10, 9, True), (Op.LT, 10, 10, False),
        (Op.LE, 10, 10, True), (Op.LE, 10, 11, False),
        (Op.GT, 10, 11, True), (Op.GT, 10, 10, False),
        (Op.GE, 10, 10, True), (Op.GE, 10, 9, False),
        (Op.PREFIX, "he", "hello", True), (Op.PREFIX, "lo", "hello", False),
        (Op.SUFFIX, "lo", "hello", True), (Op.SUFFIX, "he", "hello", False),
        (Op.CONTAINS, "ell", "hello", True), (Op.CONTAINS, "z", "hello", False),
        (Op.LT, "m", "a", True), (Op.GT, "m", "z", True),
    ])
    def test_operator_semantics(self, op, operand, value, expected):
        assert Constraint("x", op, operand).matches(value) is expected

    def test_exists_matches_any_value(self):
        constraint = Constraint("x", Op.EXISTS)
        for value in (1, "s", b"b", True, 0.5):
            assert constraint.matches(value)

    def test_kind_mismatch_never_matches(self):
        assert not Constraint("x", Op.EQ, 5).matches("5")
        assert not Constraint("x", Op.NE, 5).matches("anything")
        assert not Constraint("x", Op.GT, 5).matches("10")
        assert not Constraint("x", Op.PREFIX, "a").matches(b"abc")

    def test_bool_does_not_match_number_constraint(self):
        assert not Constraint("x", Op.EQ, 1).matches(True)
        assert not Constraint("x", Op.EQ, True).matches(1)

    def test_string_operator_names(self):
        assert Constraint("x", ">", 5).op == Op.GT
        assert Constraint("x", "prefix", "a").op == Op.PREFIX
        assert Constraint("x", "exists").op == Op.EXISTS

    def test_unknown_operator_rejected(self):
        with pytest.raises(FilterError):
            Constraint("x", "~=", 5)

    def test_exists_takes_no_operand(self):
        with pytest.raises(FilterError):
            Constraint("x", Op.EXISTS, 5)

    def test_order_op_needs_orderable_operand(self):
        with pytest.raises(FilterError):
            Constraint("x", Op.LT, True)
        with pytest.raises(FilterError):
            Constraint("x", Op.GE, b"bytes")

    def test_string_op_needs_string_operand(self):
        with pytest.raises(FilterError):
            Constraint("x", Op.PREFIX, 5)

    def test_missing_operand_rejected(self):
        with pytest.raises(FilterError):
            Constraint("x", Op.EQ)

    def test_empty_name_rejected(self):
        with pytest.raises(FilterError):
            Constraint("", Op.EQ, 1)

    def test_immutable(self):
        constraint = Constraint("x", Op.EQ, 1)
        with pytest.raises(AttributeError):
            constraint.value = 2

    def test_equality_distinguishes_value_types(self):
        # 1 == 1.0 in Python, but the constraints behave differently for
        # hashing/indexing purposes only when types differ.
        a = Constraint("x", Op.EQ, 1)
        b = Constraint("x", Op.EQ, 1.0)
        assert a != b

    def test_hashable(self):
        assert len({Constraint("x", Op.EQ, 1), Constraint("x", Op.EQ, 1)}) == 1


class TestFilter:
    def test_conjunction(self):
        filt = Filter([Constraint("hr", Op.GT, 100),
                       Constraint("hr", Op.LT, 200)])
        assert filt.matches({"hr": 150})
        assert not filt.matches({"hr": 50})
        assert not filt.matches({"hr": 250})

    def test_missing_attribute_fails(self):
        filt = Filter([Constraint("hr", Op.GT, 100)])
        assert not filt.matches({"bp": 120})

    def test_empty_filter_matches_everything(self):
        assert Filter().matches({})
        assert Filter().matches({"anything": 1})

    def test_where_builder(self):
        filt = Filter.where("health.hr", hr=(">", 120), patient="p-1")
        assert filt.matches({"type": "health.hr", "hr": 130,
                             "patient": "p-1"})
        assert not filt.matches({"type": "health.hr", "hr": 130,
                                 "patient": "p-2"})
        assert not filt.matches({"type": "health.bp", "hr": 130,
                                 "patient": "p-1"})

    def test_where_exists(self):
        filt = Filter.where(None, hr="exists")
        assert filt.matches({"hr": 1})
        assert not filt.matches({"bp": 1})

    def test_type_prefix_builder(self):
        filt = Filter.for_type_prefix("health.")
        assert filt.matches({"type": "health.hr"})
        assert not filt.matches({"type": "smc.member.new"})

    def test_names(self):
        filt = Filter.where("t", a=1, b=2)
        assert filt.names() == {"type", "a", "b"}

    def test_non_constraint_rejected(self):
        with pytest.raises(FilterError):
            Filter(["not a constraint"])

    def test_equality_and_hash(self):
        a = Filter([Constraint("x", Op.EQ, 1), Constraint("y", Op.GT, 2)])
        b = Filter([Constraint("y", Op.GT, 2), Constraint("x", Op.EQ, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_immutable(self):
        filt = Filter()
        with pytest.raises(AttributeError):
            filt.constraints = ()


class TestSubscription:
    def test_disjunction_of_filters(self):
        sub = Subscription(1, SID, [Filter.where("a"), Filter.where("b")])
        assert sub.matches({"type": "a"})
        assert sub.matches({"type": "b"})
        assert not sub.matches({"type": "c"})

    def test_needs_a_filter(self):
        with pytest.raises(FilterError):
            Subscription(1, SID, [])

    def test_negative_id_rejected(self):
        with pytest.raises(FilterError):
            Subscription(-1, SID, [Filter()])


class TestWireCodec:
    def test_filter_roundtrip(self):
        filt = Filter([Constraint("hr", Op.GT, 100),
                       Constraint("patient", Op.EQ, "p-1"),
                       Constraint("note", Op.EXISTS)])
        decoded, offset = decode_filter(encode_filter(filt))
        assert decoded == filt

    def test_empty_filter_roundtrip(self):
        decoded, _ = decode_filter(encode_filter(Filter()))
        assert decoded == Filter()

    def test_subscription_roundtrip(self):
        sub = Subscription(42, SID, [Filter.where("a", x=1),
                                     Filter.where("b", y=("<", 2.5))])
        decoded, _ = decode_subscription(encode_subscription(sub))
        assert decoded.sub_id == 42
        assert decoded.subscriber == SID
        assert list(decoded.filters) == list(sub.filters)

    def test_unknown_op_byte_rejected(self):
        raw = bytearray(encode_filter(Filter([Constraint("x", Op.EQ, 1)])))
        # name "x" is varint(1)+x; op byte follows.
        raw[3] = 99
        with pytest.raises(CodecError):
            decode_filter(bytes(raw))

    def test_zero_filter_subscription_rejected_on_wire(self):
        from repro.transport import wire
        raw = (wire.encode_varint(1) + SID.to_bytes48()
               + wire.encode_varint(0))
        with pytest.raises(CodecError):
            decode_subscription(raw)

    @given(filters())
    def test_filter_roundtrip_property(self, filt):
        decoded, _ = decode_filter(encode_filter(filt))
        assert set(decoded.constraints) == set(filt.constraints)
