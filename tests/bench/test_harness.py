"""Smoke tests for the benchmark harness (tiny parameter versions).

The full experiments run under ``benchmarks/``; these tests check the
harness machinery itself — testbed assembly, measurement plumbing,
reporting — with minimal workloads so the unit suite stays fast.
"""

import pytest

from repro.bench.experiments import (
    run_fig4a,
    run_fig4b,
    run_link_baseline,
)
from repro.bench.reporting import format_series_table, format_table, to_csv
from repro.bench.testbed import BENCH_EVENT_TYPE, build_paper_testbed
from repro.bench.workloads import ban_monitoring_mix, payload_attributes
from repro.sim.rng import RngRegistry


class TestTestbed:
    def test_builds_and_joins(self):
        testbed = build_paper_testbed()
        assert len(testbed.cell.bus.members()) == 2
        assert testbed.publisher.bus_address is not None

    def test_roundtrip_through_the_bus(self):
        testbed = build_paper_testbed()
        testbed.publisher.publish(BENCH_EVENT_TYPE,
                                  payload_attributes(100, 0))
        testbed.drain(quiet_period_s=1.0, max_s=30.0)
        assert len(testbed.received) == 1
        assert testbed.received.times[0] > 0

    def test_extra_subscribers(self):
        testbed = build_paper_testbed(extra_subscribers=2)
        testbed.publisher.publish(BENCH_EVENT_TYPE,
                                  payload_attributes(10, 0))
        testbed.drain(quiet_period_s=1.0, max_s=30.0)
        assert len(testbed.received) == 3       # one per subscriber

    def test_deterministic_for_seed(self):
        def once():
            testbed = build_paper_testbed(seed=5)
            testbed.publisher.publish(BENCH_EVENT_TYPE,
                                      payload_attributes(500, 0))
            testbed.drain(quiet_period_s=1.0, max_s=30.0)
            return testbed.received.times
        assert once() == once()


class TestWorkloads:
    def test_payload_sizes_exact(self):
        for size in (0, 1, 100, 5000):
            attrs = payload_attributes(size, 3)
            assert len(attrs["data"]) == size

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            payload_attributes(-1, 0)

    def test_ban_mix_is_deterministic(self):
        a = ban_monitoring_mix(RngRegistry(3), 50)
        b = ban_monitoring_mix(RngRegistry(3), 50)
        assert a == b
        types = {t for t, _ in a}
        assert "health.hr" in types


class TestExperimentFunctions:
    def test_fig4a_tiny(self):
        result = run_fig4a(payload_sizes=(0, 1000), samples=2,
                           engines=("forwarding",))
        series = result.series[0]
        assert [p.x for p in series.points] == [0, 1000]
        assert series.points[1].mean > series.points[0].mean

    def test_fig4b_tiny(self):
        result = run_fig4b(payload_sizes=(500,), duration_s=5.0,
                           engines=("forwarding",))
        point = result.series[0].points[0]
        assert point.mean > 0

    def test_link_baseline_tiny(self):
        result = run_link_baseline(ping_count=50, bulk_packets=50)
        assert 0.5 < result["latency_ms_mean"] < 2.5
        assert result["bulk_throughput_kb_s"] > 100


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) <= len(lines[1]) + 1 for line in lines)

    def test_series_table_includes_all_series(self):
        result = run_fig4a(payload_sizes=(0,), samples=1,
                           engines=("forwarding",))
        text = format_series_table(result)
        assert "C-based event bus" in text
        assert "Payload Size" in text

    def test_csv_output(self):
        result = run_fig4a(payload_sizes=(0,), samples=1,
                           engines=("forwarding",))
        csv = to_csv(result)
        assert csv.startswith("series,x,mean,min,max,n")
        assert "C-based event bus,0" in csv
