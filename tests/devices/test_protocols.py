"""Device wire protocols and their translators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import Event
from repro.devices.protocols import (
    BloodPressureProtocol,
    HeartRateProtocol,
    NotifyProtocol,
    PumpProtocol,
    SpO2Protocol,
    TemperatureProtocol,
    seal,
    standard_translators,
    unseal,
)
from repro.ids import service_id_from_name

SENDER = service_id_from_name("policy")


def cmd_event(operation, **attrs):
    return Event(f"smc.cmd.{operation}", attrs, SENDER, 1, 0.0)


class TestFraming:
    def test_seal_unseal(self):
        assert unseal(seal(b"\x48\x01payload")) == b"\x48\x01payload"

    def test_corrupt_checksum_rejected(self):
        frame = bytearray(seal(b"\x48\x01payload"))
        frame[2] ^= 0xFF
        assert unseal(bytes(frame)) is None

    def test_too_short_rejected(self):
        assert unseal(b"") is None
        assert unseal(b"\x01") is None

    @given(st.binary(min_size=1, max_size=100))
    def test_roundtrip_property(self, body):
        assert unseal(seal(body)) == body


class TestHeartRate:
    def test_reading_roundtrip(self):
        proto = HeartRateProtocol("p-1")
        event_type, attrs = proto.decode_reading(
            proto.encode_reading(121.5, alarm=True), now=0.0)
        assert event_type == "health.hr"
        assert attrs == {"hr": 121.5, "alarm": True, "patient": "p-1"}

    def test_corrupt_reading_rejected(self):
        proto = HeartRateProtocol("p-1")
        frame = bytearray(proto.encode_reading(80.0))
        frame[-2] ^= 0x10
        assert proto.decode_reading(bytes(frame), 0.0) is None

    def test_wrong_magic_rejected(self):
        hr = HeartRateProtocol("p-1")
        temp = TemperatureProtocol("p-1")
        assert hr.decode_reading(temp.encode_reading(37.0), 0.0) is None

    def test_threshold_command_roundtrip(self):
        proto = HeartRateProtocol("p-1")
        data = proto.encode_command(cmd_event("set_threshold", value=130))
        assert proto.decode_command(data) == ("set_threshold", 130.0)

    def test_period_command_roundtrip(self):
        proto = HeartRateProtocol("p-1")
        data = proto.encode_command(cmd_event("set_period", value=2.5))
        assert proto.decode_command(data) == ("set_period", 2.5)

    def test_irrelevant_command_not_encoded(self):
        proto = HeartRateProtocol("p-1")
        assert proto.encode_command(cmd_event("deliver_dose", dose_ml=1)) is None

    def test_out_of_range_threshold_not_encoded(self):
        proto = HeartRateProtocol("p-1")
        assert proto.encode_command(cmd_event("set_threshold",
                                              value=-5)) is None
        assert proto.encode_command(cmd_event("set_threshold",
                                              value="high")) is None

    def test_command_filters_respect_targets(self):
        proto = HeartRateProtocol("p-1", listen_targets=["monitor"])
        filters = proto.command_filters()
        view = {"type": "smc.cmd.set_threshold", "target": "monitor"}
        assert any(f.matches(view) for f in filters)
        view_other = {"type": "smc.cmd.set_threshold", "target": "pump"}
        assert not any(f.matches(view_other) for f in filters)

    @given(st.floats(min_value=0, max_value=250))
    def test_reading_precision_property(self, bpm):
        proto = HeartRateProtocol("p")
        _, attrs = proto.decode_reading(proto.encode_reading(bpm), 0.0)
        assert attrs["hr"] == pytest.approx(bpm, abs=0.06)


class TestOtherSensors:
    def test_bp_roundtrip(self):
        proto = BloodPressureProtocol("p-1")
        _, attrs = proto.decode_reading(proto.encode_reading(118.4, 76.6), 0.0)
        assert attrs["systolic"] == 118 and attrs["diastolic"] == 77

    def test_spo2_roundtrip(self):
        proto = SpO2Protocol("p-1")
        _, attrs = proto.decode_reading(proto.encode_reading(97.2, 71.4), 0.0)
        assert attrs["spo2"] == 97 and attrs["pulse"] == 71.4

    def test_temperature_roundtrip(self):
        proto = TemperatureProtocol("p-1")
        _, attrs = proto.decode_reading(proto.encode_reading(38.75), 0.0)
        assert attrs["celsius"] == 38.75

    def test_temperature_ack_frames(self):
        proto = TemperatureProtocol("p-1")
        assert proto.is_ack(proto.encode_ack())
        assert not proto.is_ack(proto.encode_reading(37.0))


class TestPump:
    def test_dose_command_roundtrip(self):
        proto = PumpProtocol("p-1")
        data = proto.encode_command(cmd_event("deliver_dose", dose_ml=2.5))
        assert proto.decode_dose(data) == 2.5

    def test_protocol_refuses_overdose(self):
        proto = PumpProtocol("p-1", max_dose_ml=5.0)
        assert proto.encode_command(cmd_event("deliver_dose",
                                              dose_ml=50.0)) is None
        assert proto.encode_command(cmd_event("deliver_dose",
                                              dose_ml=0.0)) is None
        assert proto.encode_command(cmd_event("deliver_dose",
                                              dose_ml="lots")) is None

    def test_status_roundtrip(self):
        proto = PumpProtocol("p-1")
        _, attrs = proto.decode_reading(proto.encode_status(1.25, 88.5), 0.0)
        assert attrs["delivered_ml"] == 1.25
        assert attrs["reservoir_ml"] == 88.5


class TestNotify:
    def test_text_roundtrip(self):
        proto = NotifyProtocol("", listen_targets=["nurse"])
        data = proto.encode_command(cmd_event("notify", msg="hello nurse"))
        assert proto.decode_text(data) == "hello nurse"

    def test_long_message_truncated(self):
        proto = NotifyProtocol("")
        data = proto.encode_command(cmd_event("notify", msg="x" * 1000))
        assert len(proto.decode_text(data)) == 255

    def test_non_string_message_rejected(self):
        proto = NotifyProtocol("")
        assert proto.encode_command(cmd_event("notify", msg=42)) is None

    def test_display_has_no_readings(self):
        proto = NotifyProtocol("")
        assert proto.decode_reading(b"whatever", 0.0) is None


class TestStandardSet:
    def test_covers_the_ehealth_device_types(self):
        types = {t.device_type for t in standard_translators("p")}
        assert types == {"sensor.hr", "sensor.bp", "sensor.spo2",
                         "sensor.temp", "actuator.pump", "actuator.display"}

    def test_unique_magics(self):
        magics = [t.magic for t in standard_translators("p")]
        assert len(set(magics)) == len(magics)
