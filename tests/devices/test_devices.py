"""Device models over a simulated cell: sensors, actuators, waveforms."""

import pytest

from repro.devices.actuators import DrugPump, ManualSensor, NurseDisplay
from repro.devices.sensors import (
    ECGMonitor,
    ECGSink,
    HeartRateSensor,
    TemperatureSensor,
)
from repro.devices.waveforms import (
    Episode,
    VitalSignsGenerator,
    desaturation,
    fever,
    tachycardia,
)
from repro.matching.filters import Filter
from repro.sim.hosts import PDA_PROFILE, SENSOR_PROFILE, SimHost
from repro.sim.rng import RngRegistry
from repro.smc.cell import CellConfig, SelfManagedCell
from repro.transport.endpoint import PacketEndpoint
from repro.transport.simnet import SimTransport


@pytest.fixture
def cell_net(sim, simnet):
    """A started cell on node 'pda' plus an endpoint factory."""
    simnet.add_node("pda", profile=PDA_PROFILE)
    cell = SelfManagedCell(SimTransport(simnet, "pda"), sim,
                           CellConfig(cell_name="ward", patient="p-1",
                                      purge_after_s=5.0))
    cell.start()

    def endpoint(name):
        simnet.add_node(name, profile=SENSOR_PROFILE)
        return PacketEndpoint(SimTransport(simnet, name), sim)

    return cell, endpoint


class TestWaveforms:
    def test_deterministic_for_seed(self):
        a = VitalSignsGenerator(RngRegistry(5), patient="p")
        b = VitalSignsGenerator(RngRegistry(5), patient="p")
        for t in (0.0, 10.0, 100.0):
            assert a.sample(t).hr == b.sample(t).hr

    def test_baseline_ranges(self):
        vitals = VitalSignsGenerator(RngRegistry(1), patient="p")
        for t in range(0, 600, 30):
            sample = vitals.sample(float(t))
            assert 50 < sample.hr < 100
            assert 90 < sample.spo2 <= 100
            assert 35.5 < sample.temp < 38.0
            assert sample.diastolic < sample.systolic

    def test_tachycardia_episode_peaks(self):
        vitals = VitalSignsGenerator(RngRegistry(1), patient="p",
                                     episodes=[tachycardia(100.0, 60.0,
                                                           160.0)])
        assert vitals.sample(130.0).hr > 140
        assert vitals.sample(50.0).hr < 100
        assert vitals.sample(200.0).hr < 100

    def test_desaturation_trough(self):
        vitals = VitalSignsGenerator(RngRegistry(1), patient="p",
                                     episodes=[desaturation(100.0, 40.0,
                                                            84.0)])
        assert vitals.sample(120.0).spo2 < 90

    def test_fever_rises(self):
        vitals = VitalSignsGenerator(RngRegistry(1), patient="p",
                                     episodes=[fever(0.0, 1000.0, 39.5)])
        assert vitals.sample(500.0).temp > 38.5

    def test_bad_episode_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            Episode("hr", 0.0, 0.0, 100.0)

    def test_ecg_burst_shape(self):
        vitals = VitalSignsGenerator(RngRegistry(1), patient="p")
        samples = vitals.ecg_samples(0.0, 128)
        assert len(samples) == 128
        assert max(samples) > 0.5          # an R spike is present


class TestSensorsInCell:
    def test_heart_rate_readings_reach_bus(self, sim, cell_net):
        cell, endpoint = cell_net
        vitals = VitalSignsGenerator(RngRegistry(2), patient="p-1")
        sensor = HeartRateSensor(endpoint("hr-1"), sim, "hr-1", vitals,
                                 period_s=0.5)
        got = []
        cell.subscribe(Filter.where("health.hr"), got.append)
        sensor.start()
        sim.run(5.0)
        assert sensor.joined
        assert len(got) >= 6
        assert all(e.get("patient") == "p-1" for e in got)

    def test_threshold_command_retunes_device(self, sim, cell_net):
        cell, endpoint = cell_net
        vitals = VitalSignsGenerator(RngRegistry(2), patient="p-1")
        sensor = HeartRateSensor(endpoint("hr-1"), sim, "hr-1", vitals,
                                 threshold_bpm=120.0)
        sensor.start()
        sim.run(3.0)
        cell.publisher("policy").publish(
            "smc.cmd.set_threshold", {"target": "monitor", "value": 65})
        sim.run(6.0)
        assert sensor.threshold_bpm == 65.0
        assert sensor.stats.commands_received >= 1

    def test_period_command_changes_rate(self, sim, cell_net):
        cell, endpoint = cell_net
        vitals = VitalSignsGenerator(RngRegistry(2), patient="p-1")
        sensor = HeartRateSensor(endpoint("hr-1"), sim, "hr-1", vitals,
                                 period_s=1.0)
        sensor.start()
        sim.run(3.0)
        cell.publisher("policy").publish(
            "smc.cmd.set_period", {"target": "monitor", "value": 0.25})
        sim.run(4.0)
        assert sensor.period_s == 0.25

    def test_unreliable_temperature_sensor(self, sim, cell_net):
        cell, endpoint = cell_net
        vitals = VitalSignsGenerator(RngRegistry(2), patient="p-1")
        sensor = TemperatureSensor(endpoint("temp-1"), sim, "temp-1", vitals,
                                   period_s=1.0, reliable=False)
        got = []
        cell.subscribe(Filter.where("health.temp"), got.append)
        sensor.start()
        sim.run(6.0)
        assert len(got) >= 3

    def test_sensor_stops_reporting_when_cell_lost(self, sim, simnet,
                                                   cell_net):
        cell, endpoint = cell_net
        vitals = VitalSignsGenerator(RngRegistry(2), patient="p-1")
        sensor = HeartRateSensor(endpoint("hr-1"), sim, "hr-1", vitals,
                                 period_s=0.5)
        sensor.start()
        sim.run(3.0)
        sent_before = sensor.stats.readings_sent
        simnet.set_link_blocked("pda", "hr-1", True)
        sim.run(10.0)          # agent loses beacons, stops reporting
        assert not sensor.joined
        resting = sensor.stats.readings_sent
        sim.run(12.0)
        assert sensor.stats.readings_sent == resting
        assert sent_before <= resting


class TestECGBypass:
    def test_stream_bypasses_bus(self, sim, cell_net):
        cell, endpoint = cell_net
        sink = ECGSink(endpoint("station"))
        vitals = VitalSignsGenerator(RngRegistry(2), patient="p-1")
        monitor = ECGMonitor(endpoint("ecg-1"), sim, "ecg-1", vitals,
                             sink_address="station", period_s=0.2)
        bus_events = []
        cell.subscribe(Filter.for_type_prefix("health."), bus_events.append)
        monitor.start()
        sim.run(5.0)
        assert monitor.joined                      # it IS a member
        assert sink.bursts_received > 10           # data flows to the sink
        assert sink.samples_received == sink.bursts_received * 64
        assert bus_events == []                    # but not via the bus

    def test_waveform_values_survive_transport(self, sim, cell_net):
        cell, endpoint = cell_net
        sink = ECGSink(endpoint("station"))
        vitals = VitalSignsGenerator(RngRegistry(2), patient="p-1")
        monitor = ECGMonitor(endpoint("ecg-1"), sim, "ecg-1", vitals,
                             sink_address="station", period_s=0.5,
                             samples_per_burst=32)
        monitor.start()
        sim.run(3.0)
        assert len(sink.last_burst) == 32
        assert all(-3.0 < v < 3.0 for v in sink.last_burst)


class TestActuators:
    def test_pump_executes_dose_command(self, sim, cell_net):
        cell, endpoint = cell_net
        pump = DrugPump(endpoint("pump-1"), sim, "pump-1", "p-1",
                        reservoir_ml=10.0)
        pump.start()
        sim.run(3.0)
        cell.publisher("clinician").publish(
            "smc.cmd.deliver_dose", {"target": "pump", "dose_ml": 2.0})
        sim.run(6.0)
        assert pump.delivered_total_ml() == 2.0
        assert pump.reservoir_ml == 8.0

    def test_pump_hourly_rate_limit(self, sim, cell_net):
        cell, endpoint = cell_net
        pump = DrugPump(endpoint("pump-1"), sim, "pump-1", "p-1",
                        max_hourly_ml=5.0)
        pump.start()
        sim.run(3.0)
        clinician = cell.publisher("clinician")
        for _ in range(4):
            clinician.publish("smc.cmd.deliver_dose",
                              {"target": "pump", "dose_ml": 2.0})
        sim.run(10.0)
        assert pump.delivered_total_ml() == 4.0     # 2 doses, then refused
        assert pump.refused_doses == 2

    def test_pump_refuses_empty_reservoir(self, sim, cell_net):
        cell, endpoint = cell_net
        pump = DrugPump(endpoint("pump-1"), sim, "pump-1", "p-1",
                        reservoir_ml=1.0, max_hourly_ml=100.0)
        pump.start()
        sim.run(3.0)
        cell.publisher("clinician").publish(
            "smc.cmd.deliver_dose", {"target": "pump", "dose_ml": 3.0})
        sim.run(6.0)
        assert pump.delivered_total_ml() == 0.0
        assert pump.refused_doses == 1

    def test_nurse_display_shows_messages(self, sim, cell_net):
        cell, endpoint = cell_net
        display = NurseDisplay(endpoint("nurse"), sim, "nurse")
        display.start()
        sim.run(3.0)
        cell.publisher("policy").publish(
            "smc.cmd.notify", {"target": "nurse", "msg": "code blue"})
        sim.run(6.0)
        assert display.last_message() == "code blue"

    def test_manual_sensor_send_reading(self, sim, cell_net):
        cell, endpoint = cell_net
        device = ManualSensor(endpoint("m"), sim, "m", "sensor.hr")
        assert device.send_reading(b"x") is False     # not joined yet
        device.start()
        sim.run(3.0)
        from repro.devices.protocols import HeartRateProtocol
        got = []
        cell.subscribe(Filter.where("health.hr"), got.append)
        assert device.send_reading(
            HeartRateProtocol("p-1").encode_reading(99.0)) is True
        sim.run(5.0)
        assert [e.get("hr") for e in got] == [99.0]
