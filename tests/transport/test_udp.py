"""Real UDP transport on loopback — the paper's actual prototype transport.

These tests use real sockets bound to 127.0.0.1 with OS-chosen ports (as
the prototype did) and drive them by polling, so they stay single-threaded
and fast.
"""

import time

import pytest

from repro.errors import AddressError
from repro.ids import service_id_from_socket
from repro.sim.kernel import RealtimeScheduler
from repro.transport.endpoint import PacketEndpoint
from repro.transport.packets import PacketType
from repro.transport.udp import UdpTransport


@pytest.fixture
def udp_pair():
    a = UdpTransport()
    b = UdpTransport()
    yield a, b
    a.close()
    b.close()


def poll_until(transports, condition, timeout=2.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for transport in transports:
            transport.poll()
        if condition():
            return True
        time.sleep(0.002)
    return False


class TestUdpTransport:
    def test_os_chooses_port(self, udp_pair):
        a, b = udp_pair
        assert a.local_address[1] != 0
        assert a.local_address != b.local_address

    def test_service_id_from_socket_address(self, udp_pair):
        a, _ = udp_pair
        host, port = a.local_address
        assert a.service_id == service_id_from_socket(host, port)

    def test_send_and_receive(self, udp_pair):
        a, b = udp_pair
        got = []
        b.set_receiver(lambda src, data: got.append((src, data)))
        a.send(b.local_address, b"over real sockets")
        assert poll_until([a, b], lambda: got)
        assert got[0][1] == b"over real sockets"
        assert got[0][0] == a.local_address

    def test_bidirectional(self, udp_pair):
        a, b = udp_pair
        got_a, got_b = [], []
        a.set_receiver(lambda src, data: got_a.append(data))
        b.set_receiver(lambda src, data: got_b.append(data))
        a.send(b.local_address, b"ping")
        assert poll_until([a, b], lambda: got_b)
        b.send(a.local_address, b"pong")
        assert poll_until([a, b], lambda: got_a)
        assert got_a == [b"pong"] and got_b == [b"ping"]

    def test_bad_address_rejected(self, udp_pair):
        a, _ = udp_pair
        with pytest.raises(AddressError):
            a.send("not-a-tuple", b"x")

    def test_peer_list_broadcast(self, udp_pair):
        a, b = udp_pair
        c = UdpTransport()
        try:
            got_b, got_c = [], []
            b.set_receiver(lambda src, data: got_b.append(data))
            c.set_receiver(lambda src, data: got_c.append(data))
            a.set_broadcast_peers([b.local_address, c.local_address])
            a.broadcast(b"hello all")
            assert poll_until([a, b, c], lambda: got_b and got_c)
            assert got_b == [b"hello all"]
            assert got_c == [b"hello all"]
        finally:
            c.close()


class TestUdpWithEndpoint:
    def test_reliable_payload_over_real_udp(self, udp_pair):
        a, b = udp_pair
        scheduler = RealtimeScheduler()
        ep_a = PacketEndpoint(a, scheduler)
        ep_b = PacketEndpoint(b, scheduler)
        got = []
        ep_b.set_payload_handler(lambda peer, data: got.append(data))
        ep_a.send_reliable(b.local_address, b"exactly once")
        assert poll_until([a, b], lambda: got)
        assert got == [b"exactly once"]

    def test_control_over_real_udp(self, udp_pair):
        a, b = udp_pair
        scheduler = RealtimeScheduler()
        ep_a = PacketEndpoint(a, scheduler)
        ep_b = PacketEndpoint(b, scheduler)
        seen = []
        ep_b.set_control_handler(lambda pkt, src: seen.append(pkt.type))
        ep_a.send_control(b.local_address, PacketType.ANNOUNCE, b"dev-info")
        assert poll_until([a, b], lambda: seen)
        assert seen == [PacketType.ANNOUNCE]

    def test_many_ordered_payloads(self, udp_pair):
        a, b = udp_pair
        scheduler = RealtimeScheduler()
        ep_a = PacketEndpoint(a, scheduler, window=4)
        ep_b = PacketEndpoint(b, scheduler)
        got = []
        ep_b.set_payload_handler(lambda peer, data: got.append(data))
        expected = [f"m{i}".encode() for i in range(30)]
        for message in expected:
            ep_a.send_reliable(b.local_address, message)
        assert poll_until([a, b], lambda: len(got) == 30, timeout=5.0)
        assert got == expected


class TestRealtimeScheduler:
    def test_timers_fire(self):
        scheduler = RealtimeScheduler()
        fired = []
        scheduler.call_later(0.01, lambda: fired.append(scheduler.now()))
        scheduler.run_for(0.1)
        assert len(fired) == 1

    def test_pollable_integration(self, udp_pair):
        a, b = udp_pair
        scheduler = RealtimeScheduler()
        got = []
        b.set_receiver(lambda src, data: got.append(data))
        scheduler.register_pollable(b)
        scheduler.call_later(0.01, a.send, b.local_address, b"via loop")
        scheduler.run_for(0.3)
        scheduler.unregister_pollable(b)
        assert got == [b"via loop"]

    def test_stop(self):
        scheduler = RealtimeScheduler()
        scheduler.call_later(0.005, scheduler.stop)
        start = time.monotonic()
        scheduler.run_for(5.0)
        assert time.monotonic() - start < 2.0


class TestBroadcastSocketPollable:
    """Satellite 1: the broadcast/discovery socket must be a pollable.

    Before the fix, only the unicast socket was exposed through
    fileno()/on_readable(), so a scheduler-driven deployment never
    drained discovery traffic — BEACONs and ANNOUNCEs arrived on a
    socket nobody selected on.
    """

    def test_pollables_cover_both_sockets(self):
        t = UdpTransport(listen_for_broadcast=True, discovery_port=0)
        try:
            polls = t.pollables()
            assert len(polls) == 2
            assert polls[0] is t
            fds = {p.fileno() for p in polls}
            assert len(fds) == 2 and -1 not in fds
        finally:
            t.close()

    def test_unicast_only_transport_has_one_pollable(self, udp_pair):
        a, _ = udp_pair
        assert a.pollables() == [a]

    def test_scheduler_drains_broadcast_socket(self, udp_pair):
        a, _ = udp_pair
        listener = UdpTransport(listen_for_broadcast=True, discovery_port=0)
        scheduler = RealtimeScheduler()
        try:
            got = []
            listener.set_receiver(lambda src, data: got.append(data))
            scheduler.register_pollables(listener.pollables())
            # Send to the *discovery* socket, not the unicast one: only
            # the broadcast pollable can deliver this.
            dest = ("127.0.0.1", listener.discovery_port)
            scheduler.call_later(0.01, a.send, dest, b"beacon traffic")
            scheduler.run_for(0.3)
            assert got == [b"beacon traffic"]
        finally:
            scheduler.unregister_pollable(listener)
            listener.close()

    def test_unregister_after_close_is_safe(self):
        # Closed sockets report fileno() == -1; the scheduler must
        # unregister by the fd it recorded at registration time.
        t = UdpTransport(listen_for_broadcast=True, discovery_port=0)
        scheduler = RealtimeScheduler()
        scheduler.register_pollables(t.pollables())
        assert scheduler.pollable_count() == 2
        polls = t.pollables()
        t.close()
        for pollable in polls:
            scheduler.unregister_pollable(pollable)
        assert scheduler.pollable_count() == 0


class TestCloseIdempotency:
    """Satellite 3: close() must release both sockets, every path.

    The old close() gated on ``self.closed`` — if the base-class flag was
    already set (a concurrent or double close), the broadcast socket was
    never closed and its discovery-port bind leaked until GC.
    """

    def test_double_close_releases_broadcast_socket(self):
        t = UdpTransport(listen_for_broadcast=True, discovery_port=0)
        port = t.discovery_port
        t.close()
        t.close()                       # second close: must not raise
        assert t.fileno() == -1
        assert t._broadcast_socket.fileno() == -1
        # The discovery port is genuinely free again.
        rebound = UdpTransport(listen_for_broadcast=True,
                               discovery_port=port)
        rebound.close()

    def test_close_after_base_class_flag_set(self):
        from repro.transport.base import Transport

        t = UdpTransport(listen_for_broadcast=True, discovery_port=0)
        # Simulate the race: the base path marks the transport closed
        # first (as a concurrent closer would), then our close() runs.
        Transport.close(t)
        assert t.closed
        t.close()
        assert t.fileno() == -1
        assert t._broadcast_socket.fileno() == -1


class TestDirectedOnlyBroadcast:
    def test_empty_domain_is_noop(self):
        t = UdpTransport(directed_only=True)
        try:
            t.broadcast(b"nobody home")     # must not raise or sendto
        finally:
            t.close()

    def test_peers_still_reached(self, udp_pair):
        a, b = udp_pair
        sender = UdpTransport(directed_only=True)
        try:
            got = []
            b.set_receiver(lambda src, data: got.append(data))
            sender.set_broadcast_peers([b.local_address])
            sender.broadcast(b"directed")
            assert poll_until([sender, b], lambda: got)
            assert got == [b"directed"]
        finally:
            sender.close()
