"""Packet framing: header layout, checksum, malformed datagrams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PacketError
from repro.ids import ServiceId
from repro.transport.packets import (
    HEADER_SIZE,
    Packet,
    PacketFlags,
    PacketType,
)

SENDER = ServiceId(0xAABBCCDDEEFF)


class TestEncodeDecode:
    def test_roundtrip_minimal(self):
        packet = Packet(type=PacketType.ACK, sender=SENDER)
        decoded = Packet.decode(packet.encode())
        assert decoded == packet

    def test_roundtrip_full(self):
        packet = Packet(type=PacketType.DATA, sender=SENDER, seq=123,
                        ack=99, payload=b"payload bytes",
                        flags=PacketFlags.NO_ACK)
        decoded = Packet.decode(packet.encode())
        assert decoded.type == PacketType.DATA
        assert decoded.sender == SENDER
        assert decoded.seq == 123
        assert decoded.ack == 99
        assert decoded.payload == b"payload bytes"
        assert decoded.flags == PacketFlags.NO_ACK

    def test_header_size(self):
        packet = Packet(type=PacketType.ACK, sender=SENDER)
        assert len(packet.encode()) == HEADER_SIZE
        assert packet.wire_size == HEADER_SIZE

    def test_all_packet_types_roundtrip(self):
        for ptype in PacketType:
            decoded = Packet.decode(
                Packet(type=ptype, sender=SENDER, payload=b"x").encode())
            assert decoded.type == ptype

    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF),
           st.binary(max_size=1000))
    def test_roundtrip_property(self, seq, ack, payload):
        packet = Packet(type=PacketType.DATA, sender=SENDER, seq=seq,
                        ack=ack, payload=payload)
        assert Packet.decode(packet.encode()) == packet


class TestValidation:
    def test_oversized_payload_rejected(self):
        with pytest.raises(PacketError):
            Packet(type=PacketType.DATA, sender=SENDER, payload=b"x" * 70000)

    def test_seq_out_of_range_rejected(self):
        with pytest.raises(PacketError):
            Packet(type=PacketType.DATA, sender=SENDER, seq=2 ** 32)

    def test_short_datagram_rejected(self):
        with pytest.raises(PacketError):
            Packet.decode(b"\xa5\x5e\x01")

    def test_bad_magic_rejected(self):
        raw = bytearray(Packet(type=PacketType.ACK, sender=SENDER).encode())
        raw[0] = 0x00
        with pytest.raises(PacketError):
            Packet.decode(bytes(raw))

    def test_bad_version_rejected(self):
        raw = bytearray(Packet(type=PacketType.ACK, sender=SENDER).encode())
        raw[2] = 99
        with pytest.raises(PacketError):
            Packet.decode(bytes(raw))

    def test_unknown_type_rejected(self):
        raw = bytearray(Packet(type=PacketType.ACK, sender=SENDER).encode())
        raw[3] = 200
        with pytest.raises(PacketError):
            Packet.decode(bytes(raw))

    def test_length_mismatch_rejected(self):
        raw = Packet(type=PacketType.DATA, sender=SENDER,
                     payload=b"abc").encode()
        with pytest.raises(PacketError):
            Packet.decode(raw + b"extra")

    def test_corrupted_payload_fails_checksum(self):
        raw = bytearray(Packet(type=PacketType.DATA, sender=SENDER,
                               payload=b"sensitive medical data").encode())
        raw[-3] ^= 0xFF
        with pytest.raises(PacketError):
            Packet.decode(bytes(raw))

    def test_corrupted_header_fails_checksum(self):
        raw = bytearray(Packet(type=PacketType.DATA, sender=SENDER, seq=5,
                               payload=b"x").encode())
        raw[10] ^= 0x01          # flip a bit inside the sender id
        with pytest.raises(PacketError):
            Packet.decode(bytes(raw))

    @given(st.binary(min_size=0, max_size=200))
    def test_random_garbage_never_parses_silently(self, garbage):
        # Either it raises PacketError, or (astronomically unlikely) it is
        # a valid packet; it must never raise anything else.
        try:
            Packet.decode(garbage)
        except PacketError:
            pass


class TestSack:
    """Selective-ack block: flagged payload prefix, wire-compatible."""

    def test_ack_with_sack_roundtrips(self):
        packet = Packet(type=PacketType.ACK, sender=SENDER, ack=5,
                        sack=((7, 9), (12, 12)))
        decoded = Packet.decode(packet.encode())
        assert decoded.sack == ((7, 9), (12, 12))
        assert decoded.ack == 5
        assert decoded.flags & PacketFlags.SACK
        assert decoded.payload == b""
        assert decoded == packet

    def test_sack_coexists_with_payload(self):
        packet = Packet(type=PacketType.DATA, sender=SENDER, seq=3, ack=1,
                        sack=((5, 6),), payload=b"body bytes")
        decoded = Packet.decode(packet.encode())
        assert decoded.sack == ((5, 6),)
        assert decoded.payload == b"body bytes"

    def test_plain_packets_unchanged(self):
        # Backward compatibility: a packet without SACK encodes and
        # decodes exactly as before the field existed.
        packet = Packet(type=PacketType.ACK, sender=SENDER, ack=9)
        assert len(packet.encode()) == HEADER_SIZE
        decoded = Packet.decode(packet.encode())
        assert decoded.sack == ()
        assert not decoded.flags & PacketFlags.SACK

    def test_sack_flag_mirrors_field(self):
        # The flag is derived from the field, never set independently.
        with_sack = Packet(type=PacketType.ACK, sender=SENDER,
                           sack=((1, 2),))
        assert with_sack.flags & PacketFlags.SACK
        without = Packet(type=PacketType.ACK, sender=SENDER)
        assert not without.flags & PacketFlags.SACK

    def test_wraparound_range_roundtrips(self):
        packet = Packet(type=PacketType.ACK, sender=SENDER,
                        ack=2**32 - 5, sack=((2**32 - 2, 3),))
        assert Packet.decode(packet.encode()).sack == ((2**32 - 2, 3),)

    def test_wire_size_counts_sack_block(self):
        packet = Packet(type=PacketType.ACK, sender=SENDER, sack=((1, 4),))
        assert packet.wire_size == HEADER_SIZE + 1 + 8
        assert len(packet.encode()) == packet.wire_size

    def test_zero_range_rejected(self):
        with pytest.raises(PacketError):
            Packet(type=PacketType.ACK, sender=SENDER, sack=((0, 3),))

    def test_too_many_ranges_rejected(self):
        ranges = tuple((i + 1, i + 1) for i in range(256))
        with pytest.raises(PacketError):
            Packet(type=PacketType.ACK, sender=SENDER, sack=ranges)

    def test_truncated_sack_block_rejected(self):
        import zlib
        from repro.transport import packets
        # Handcraft a SACK-flagged packet whose payload claims 5 ranges
        # but carries none.
        payload = b"\x05"
        header_no_crc = packets._HEADER.pack(
            packets.MAGIC, packets.VERSION, int(PacketType.ACK),
            int(PacketFlags.SACK), SENDER.to_bytes48(), 0, 0,
            len(payload), 0)
        crc = zlib.crc32(header_no_crc + payload) & 0xFFFFFFFF
        header = packets._HEADER.pack(
            packets.MAGIC, packets.VERSION, int(PacketType.ACK),
            int(PacketFlags.SACK), SENDER.to_bytes48(), 0, 0,
            len(payload), crc)
        with pytest.raises(PacketError):
            Packet.decode(header + payload)
