"""Transport implementations: base contract, in-memory hub, sim transport."""

import pytest

from repro.errors import AddressError, ConfigurationError, TransportClosedError
from repro.ids import service_id_from_name
from repro.transport.inmem import InMemoryHub, InMemoryTransport
from repro.transport.simnet import SimTransport


class TestBaseContract:
    def test_service_id_derived_from_name(self, hub):
        transport = hub.create("node-a")
        assert transport.service_id == service_id_from_name("node-a")

    def test_send_to_closed_transport_raises(self, sim, hub):
        transport = hub.create("a")
        hub.create("b")
        transport.close()
        with pytest.raises(TransportClosedError):
            transport.send("b", b"x")
        assert transport.closed

    def test_close_is_idempotent(self, hub):
        transport = hub.create("a")
        transport.close()
        transport.close()

    def test_recv_pull_style(self, sim, hub):
        a, b = hub.create("a"), hub.create("b")
        a.send("b", b"one")
        a.send("b", b"two")
        sim.run_until_idle()
        assert b.recv() == ("a", b"one")
        assert b.recv() == ("a", b"two")
        assert b.recv() is None

    def test_pending_counts_queued(self, sim, hub):
        a, b = hub.create("a"), hub.create("b")
        a.send("b", b"x")
        sim.run_until_idle()
        assert b.pending() == 1

    def test_callback_receives_push_style(self, sim, hub):
        a, b = hub.create("a"), hub.create("b")
        got = []
        b.set_receiver(lambda src, data: got.append((src, data)))
        a.send("b", b"x")
        sim.run_until_idle()
        assert got == [("a", b"x")]
        assert b.recv() is None        # nothing left in the pull queue

    def test_setting_receiver_flushes_backlog(self, sim, hub):
        a, b = hub.create("a"), hub.create("b")
        a.send("b", b"early")
        sim.run_until_idle()
        got = []
        b.set_receiver(lambda src, data: got.append(data))
        assert got == [b"early"]

    def test_stats(self, sim, hub):
        a, b = hub.create("a"), hub.create("b")
        b.set_receiver(lambda src, data: None)
        a.send("b", b"12345")
        a.broadcast(b"xy")
        sim.run_until_idle()
        assert a.stats.datagrams_sent == 1
        assert a.stats.broadcasts_sent == 1
        assert a.stats.bytes_sent == 7
        assert b.stats.datagrams_received == 2


class TestInMemoryHub:
    def test_duplicate_name_rejected(self, hub):
        hub.create("a")
        with pytest.raises(ConfigurationError):
            hub.create("a")

    def test_unknown_destination_rejected(self, sim, hub):
        a = hub.create("a")
        with pytest.raises(AddressError):
            a.send("ghost", b"x")

    def test_non_string_address_rejected(self, sim, hub):
        a = hub.create("a")
        hub.create("b")
        with pytest.raises(AddressError):
            a.send(("b", 1), b"x")

    def test_broadcast_reaches_everyone_but_sender(self, sim, hub):
        a = hub.create("a")
        got = {}
        for name in ("b", "c", "d"):
            transport = hub.create(name)
            got[name] = []
            transport.set_receiver(
                lambda src, data, n=name: got[n].append(data))
        a.set_receiver(lambda src, data: pytest.fail("echoed to sender"))
        a.broadcast(b"hello")
        sim.run_until_idle()
        assert all(messages == [b"hello"] for messages in got.values())

    def test_delivery_is_never_synchronous(self, sim, hub):
        a, b = hub.create("a"), hub.create("b")
        got = []
        b.set_receiver(lambda src, data: got.append(data))
        a.send("b", b"x")
        assert got == []          # not delivered inside send()
        sim.run_until_idle()
        assert got == [b"x"]

    def test_drop_filter(self, sim, hub):
        a, b = hub.create("a"), hub.create("b")
        got = []
        b.set_receiver(lambda src, data: got.append(data))
        hub.drop_filter = lambda src, dest, data: data != b"drop-me"
        a.send("b", b"drop-me")
        a.send("b", b"keep-me")
        sim.run_until_idle()
        assert got == [b"keep-me"]
        assert hub.datagrams_dropped == 1

    def test_fixed_delay(self, sim):
        hub = InMemoryHub(sim, delay_s=0.5)
        a, b = hub.create("a"), hub.create("b")
        moments = []
        b.set_receiver(lambda src, data: moments.append(sim.now()))
        a.send("b", b"x")
        sim.run_until_idle()
        assert moments == [0.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            InMemoryHub(sim, delay_s=-1.0)

    def test_closed_destination_drops_silently(self, sim, hub):
        a, b = hub.create("a"), hub.create("b")
        b.close()
        a.send("b", b"x")
        sim.run_until_idle()   # no exception, datagram vanishes

    def test_names_listing(self, hub):
        hub.create("b")
        hub.create("a")
        assert hub.names() == ["a", "b"]


class TestSimTransport:
    def test_send_over_sim_network(self, sim, simnet):
        ta = simnet.add_node("a")
        tb = simnet.add_node("b")
        got = []
        tb.set_receiver(lambda src, data: got.append((src, data)))
        ta.send("b", b"hello")
        sim.run_until_idle()
        assert got == [("a", b"hello")]

    def test_broadcast_over_sim_network(self, sim, simnet):
        ta = simnet.add_node("a")
        tb = simnet.add_node("b")
        got = []
        tb.set_receiver(lambda src, data: got.append(data))
        ta.broadcast(b"beacon")
        sim.run_until_idle()
        assert got == [b"beacon"]

    def test_host_accessor(self, sim, simnet):
        ta = simnet.add_node("a")
        assert ta.host.name == "a"

    def test_tuple_address_rejected(self, sim, simnet):
        ta = simnet.add_node("a")
        simnet.add_node("b")
        with pytest.raises(AddressError):
            ta.send(("b", 1), b"x")
