"""The reliable channel: ordering, dedup, retransmission, give-up.

These are the paper's Section II-C guarantees at the hop level, tested
against a hub that can drop and reorder traffic on demand, plus the
sliding-window machinery: selective acks, per-packet retransmit
deadlines, fast retransmit, serial-number wraparound, and a differential
suite over the simulated network's loss/reorder/duplication.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ids import service_id_from_name
from repro.sim.hosts import LAPTOP_PROFILE, SimHost
from repro.sim.kernel import Simulator
from repro.sim.radio import LinkProfile, SimNetwork
from repro.sim.rng import RngRegistry
from repro.transport.inmem import InMemoryHub
from repro.transport.packets import Packet, PacketType
from repro.transport.reliability import (
    ReliableChannel,
    serial_leq,
    serial_lt,
    serial_succ,
)
from repro.transport.simnet import SimTransport


def make_pair(sim, hub, *, window=1, max_retries=None, on_give_up=None,
              rto_initial=0.05, initial_seq=1, reorder_buffer=64):
    """Two endpoints with channels wired to each other through raw packets."""
    ta, tb = hub.create("a"), hub.create("b")
    delivered_a, delivered_b = [], []
    rto_max = max(2.0, 2.0 * rto_initial)
    chan_a = ReliableChannel(ta, sim, "b", lambda s, p: delivered_a.append(p),
                             window=window, max_retries=max_retries,
                             on_give_up=on_give_up, rto_initial=rto_initial,
                             rto_max=rto_max, initial_seq=initial_seq,
                             reorder_buffer=reorder_buffer)
    chan_b = ReliableChannel(tb, sim, "a", lambda s, p: delivered_b.append(p),
                             window=window, rto_initial=rto_initial,
                             rto_max=rto_max, initial_seq=initial_seq,
                             reorder_buffer=reorder_buffer)
    ta.set_receiver(lambda src, data: chan_a.handle_packet(Packet.decode(data)))
    tb.set_receiver(lambda src, data: chan_b.handle_packet(Packet.decode(data)))
    return chan_a, chan_b, delivered_a, delivered_b


def drop_data_seq_once(hub, seq):
    """Install a filter dropping the first DATA transmission of ``seq``."""
    dropped = [0]

    def drop(src, dest, data):
        packet = Packet.decode(data)
        if packet.type == PacketType.DATA and packet.seq == seq and not dropped[0]:
            dropped[0] += 1
            return False
        return True

    hub.drop_filter = drop
    return dropped


class TestBasics:
    def test_send_delivers(self, sim, hub):
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub)
        chan_a.send(b"hello")
        sim.run_until_idle()
        assert delivered_b == [b"hello"]

    def test_many_messages_in_order(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        for i in range(50):
            chan_a.send(f"msg-{i}".encode())
        sim.run_until_idle()
        assert delivered_b == [f"msg-{i}".encode() for i in range(50)]

    def test_bidirectional(self, sim, hub):
        chan_a, chan_b, delivered_a, delivered_b = make_pair(sim, hub)
        chan_a.send(b"ping")
        chan_b.send(b"pong")
        sim.run_until_idle()
        assert delivered_b == [b"ping"]
        assert delivered_a == [b"pong"]

    def test_peer_id_learned(self, sim, hub):
        chan_a, chan_b, _, _ = make_pair(sim, hub)
        chan_a.send(b"x")
        sim.run_until_idle()
        assert chan_b.peer_id == service_id_from_name("a")

    def test_unreliable_send_has_no_seq_state(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        chan_a.send(b"raw", unreliable=True)
        sim.run_until_idle()
        assert delivered_b == [b"raw"]
        assert chan_a.unacked_count() == 0

    def test_window_must_be_positive(self, sim, hub):
        ta = hub.create("a")
        with pytest.raises(ConfigurationError):
            ReliableChannel(ta, sim, "b", lambda s, p: None, window=0)

    def test_bad_rto_bounds_rejected(self, sim, hub):
        ta = hub.create("a")
        with pytest.raises(ConfigurationError):
            ReliableChannel(ta, sim, "b", lambda s, p: None,
                            rto_initial=1.0, rto_max=0.5)


class TestLossRecovery:
    def test_retransmits_until_delivered(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        drops = [0]

        def drop_first_three(src, dest, data):
            packet = Packet.decode(data)
            if packet.type == PacketType.DATA and drops[0] < 3:
                drops[0] += 1
                return False
            return True

        hub.drop_filter = drop_first_three
        chan_a.send(b"persistent")
        sim.run(10.0)
        assert delivered_b == [b"persistent"]
        assert chan_a.stats.retransmissions >= 3

    def test_lost_ack_causes_duplicate_which_is_suppressed(self, sim, hub):
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub)
        dropped = [0]

        def drop_first_ack(src, dest, data):
            packet = Packet.decode(data)
            if packet.type == PacketType.ACK and dropped[0] == 0:
                dropped[0] += 1
                return False
            return True

        hub.drop_filter = drop_first_ack
        chan_a.send(b"once")
        sim.run(10.0)
        assert delivered_b == [b"once"]              # exactly once
        assert chan_b.stats.duplicates >= 1

    def test_order_preserved_under_heavy_loss(self, sim, hub):
        import random
        rng = random.Random(7)
        hub.drop_filter = lambda src, dest, data: rng.random() > 0.3
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        messages = [f"m{i}".encode() for i in range(40)]
        for message in messages:
            chan_a.send(message)
        sim.run(120.0)
        assert delivered_b == messages

    def test_rto_backs_off_and_resets(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub, rto_initial=0.05)
        hub.drop_filter = lambda src, dest, data: False   # black hole
        chan_a.send(b"x")
        sim.run(2.0)
        retries_in_two_seconds = chan_a.stats.retransmissions
        # Exponential backoff: far fewer than 2.0/0.05 = 40 attempts.
        assert 3 <= retries_in_two_seconds < 12
        hub.drop_filter = None
        sim.run(6.0)
        assert delivered_b == [b"x"]


class TestWindowing:
    def test_stop_and_wait_has_one_in_flight(self, sim, hub):
        chan_a, _, _, _ = make_pair(sim, hub)
        hub.drop_filter = lambda src, dest, data: False
        for i in range(5):
            chan_a.send(bytes([i]))
        assert chan_a.unacked_count() == 5
        # Only one DATA packet actually left (window=1).
        assert chan_a.stats.sent == 1

    def test_larger_window_pipelines(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub, window=4)
        hub.drop_filter = lambda src, dest, data: False
        for i in range(10):
            chan_a.send(bytes([i]))
        assert chan_a.stats.sent == 4
        hub.drop_filter = None
        sim.run(30.0)
        assert delivered_b == [bytes([i]) for i in range(10)]

    def test_out_of_order_arrival_reordered(self, sim, hub):
        # Window 4 with selective drops forces out-of-order arrivals.
        import random
        rng = random.Random(3)
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub, window=4)
        hub.drop_filter = lambda src, dest, data: rng.random() > 0.25
        messages = [f"seq-{i}".encode() for i in range(30)]
        for message in messages:
            chan_a.send(message)
        sim.run(120.0)
        assert delivered_b == messages
        assert chan_b.stats.out_of_order > 0


class TestGiveUp:
    def test_gives_up_after_max_retries_and_closes(self, sim, hub):
        abandoned = []
        chan_a, _, _, _ = make_pair(sim, hub, max_retries=3,
                                    on_give_up=abandoned.append)
        hub.drop_filter = lambda src, dest, data: False
        chan_a.send(b"doomed-1")
        chan_a.send(b"doomed-2")
        sim.run(30.0)
        assert abandoned == [b"doomed-1", b"doomed-2"]
        assert chan_a.closed
        assert chan_a.stats.give_ups == 2

    def test_no_give_up_by_default(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        hub.drop_filter = lambda src, dest, data: False
        chan_a.send(b"eternal")
        sim.run(30.0)
        assert not chan_a.closed
        assert chan_a.unacked_count() == 1
        hub.drop_filter = None
        sim.run(40.0)
        assert delivered_b == [b"eternal"]


class TestRetransmitStarvation:
    """Regression: the RTO timer must never be reset by new transmissions.

    The stop-and-wait implementation re-armed the timer in every
    ``_pump()``, so a steady send stream perpetually postponed the oldest
    unacked packet's retransmission — the stream stalled for as long as
    new sends kept arriving.
    """

    def test_steady_stream_does_not_starve_oldest(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub, window=2,
                                              rto_initial=0.05)
        dropped = drop_data_seq_once(hub, 1)
        messages = [f"s{i}".encode() for i in range(100)]
        # Sends arrive faster than one RTO apart for four full seconds.
        for index, message in enumerate(messages):
            sim.call_later(0.04 * index, chan_a.send, message)
        sim.run(2.0)
        # The lost head of the line was retransmitted from its original
        # deadline (~0.05s), mid-stream — not after the stream went quiet.
        assert delivered_b[:1] == [messages[0]]
        assert chan_a.stats.retransmissions >= 1
        assert dropped[0] == 1
        sim.run(30.0)
        assert delivered_b == messages


class TestSerialArithmetic:
    def test_serial_comparisons_across_wrap(self):
        top = 2**32 - 1
        assert serial_lt(top, 1)          # 1 follows 2**32-1
        assert not serial_lt(1, top)
        assert serial_lt(2**32 - 4, 3)
        assert serial_leq(top, top)
        assert serial_leq(top, 2)
        assert not serial_lt(5, 5)

    def test_serial_succ_skips_zero(self):
        assert serial_succ(2**32 - 1) == 1
        assert serial_succ(1) == 2


class TestWraparound:
    """Regression: raw seq/ack comparisons broke at the 2**32 wrap."""

    def test_stream_crosses_wrap_without_loss(self, sim, hub):
        start = 2**32 - 4
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub, window=4,
                                                   initial_seq=start)
        messages = [f"w{i}".encode() for i in range(12)]
        for message in messages:
            chan_a.send(message)
        sim.run(10.0)
        assert delivered_b == messages
        assert chan_a.unacked_count() == 0
        assert chan_b.stats.duplicates == 0

    def test_stream_crosses_wrap_under_loss(self, sim, hub):
        import random
        start = 2**32 - 4
        chan_a, _, _, delivered_b = make_pair(sim, hub, window=4,
                                              initial_seq=start)
        rng = random.Random(11)
        hub.drop_filter = lambda src, dest, data: rng.random() > 0.25
        messages = [f"w{i}".encode() for i in range(20)]
        for message in messages:
            chan_a.send(message)
        sim.run(120.0)
        assert delivered_b == messages
        assert chan_a.unacked_count() == 0

    def test_retransmission_spanning_wrap_is_not_misclassified(self, sim, hub):
        # Drop the packet just before the wrap; its retransmission arrives
        # after later (post-wrap) sequences were buffered.
        start = 2**32 - 2
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub, window=6,
                                                   initial_seq=start)
        drop_data_seq_once(hub, start)
        messages = [f"w{i}".encode() for i in range(6)]
        for message in messages:
            chan_a.send(message)
        sim.run(10.0)
        assert delivered_b == messages
        assert chan_b.stats.out_of_order > 0


class TestSelectiveAcks:
    def test_single_loss_retransmits_only_the_hole(self, sim, hub):
        # Window of 8 with the third packet lost: SACKed packets 4-8 must
        # never be retransmitted (no go-back-N burst), and the dup-ack
        # fast retransmit must recover without waiting out the RTO.
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub, window=8,
                                                   rto_initial=5.0)
        drop_data_seq_once(hub, 3)
        messages = [bytes([i]) for i in range(8)]
        for message in messages:
            chan_a.send(message)
        sim.run_until_idle(max_time=1.0)
        assert delivered_b == messages
        assert chan_a.stats.retransmissions == 1      # the hole, nothing else
        assert chan_a.stats.fast_retransmits == 1     # and before the RTO
        assert sim.now() < 1.0
        assert chan_b.stats.out_of_order == 5         # 4..8 buffered

    def test_sack_ranges_reported(self, sim, hub):
        chan_a, chan_b, _, _ = make_pair(sim, hub, window=8, rto_initial=5.0)
        acks_with_sack = []
        real_filter = drop_data_seq_once(hub, 2)
        original = hub.drop_filter

        def spy(src, dest, data):
            packet = Packet.decode(data)
            if packet.type == PacketType.ACK and packet.sack:
                acks_with_sack.append(packet.sack)
            return original(src, dest, data)

        hub.drop_filter = spy
        for i in range(5):
            chan_a.send(bytes([i]))
        sim.run_until_idle(max_time=1.0)
        # While 2 was the hole, acks advertised the 3..5 run.
        assert any((3, 5) == r for ranges in acks_with_sack for r in ranges)
        assert real_filter[0] == 1

    def test_reorder_buffer_sized_from_window(self, sim, hub):
        # A window of out-of-order arrivals always fits, even when the
        # configured buffer is smaller than the window.
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub, window=8,
                                                   reorder_buffer=2,
                                                   rto_initial=5.0)
        drop_data_seq_once(hub, 1)
        messages = [bytes([i]) for i in range(8)]
        for message in messages:
            chan_a.send(message)
        sim.run_until_idle(max_time=20.0)
        assert delivered_b == messages
        assert chan_b.stats.reorder_drops == 0        # max(window, buffer)

    def test_reorder_overrun_counted_and_recovered(self, sim, hub):
        # A sender windowed past the receiver's buffer: drops are counted
        # in ChannelStats (not silent) and the stream still completes via
        # retransmission once the buffer drains.
        ta, tb = hub.create("a"), hub.create("b")
        delivered_b = []
        chan_a = ReliableChannel(ta, sim, "b", lambda s, p: None,
                                 window=8, rto_initial=0.05)
        chan_b = ReliableChannel(tb, sim, "a",
                                 lambda s, p: delivered_b.append(p),
                                 window=1, reorder_buffer=2,
                                 rto_initial=0.05)
        ta.set_receiver(
            lambda src, data: chan_a.handle_packet(Packet.decode(data)))
        tb.set_receiver(
            lambda src, data: chan_b.handle_packet(Packet.decode(data)))
        drop_data_seq_once(hub, 1)
        messages = [bytes([i]) for i in range(8)]
        for message in messages:
            chan_a.send(message)
        sim.run(30.0)
        assert delivered_b == messages
        assert chan_b.stats.reorder_drops > 0


_CHAOS_LINK = LinkProfile(name="chaos", latency_mean_s=5e-3,
                          latency_min_s=1e-3, latency_max_s=30e-3,
                          bandwidth_bps=1_000_000.0, loss_rate=0.15,
                          duplicate_rate=0.10, mtu=1472)


class TestRttSampling:
    """Karn-filtered RFC-6298 measurement surfaced in ChannelStats."""

    def test_samples_accumulate_on_clean_link(self, sim):
        hub = InMemoryHub(sim, delay_s=0.010)         # 20 ms RTT
        chan_a, _, _, delivered_b = make_pair(sim, hub, window=4,
                                              rto_initial=0.5)
        for i in range(20):
            sim.call_at(i * 0.05, chan_a.send, f"m{i}".encode())
        sim.run_until_idle()
        stats = chan_a.stats
        assert len(delivered_b) == 20
        assert stats.retransmissions == 0
        assert stats.rtt_samples == 20
        # Fixed link delay: the estimate converges on the true RTT and
        # the deviation decays.
        assert stats.srtt == pytest.approx(0.020, rel=0.05)
        assert stats.rttvar < stats.srtt / 2

    def test_retransmitted_packets_are_never_sampled(self, sim, hub):
        """Karn's algorithm: an ack for a retransmitted packet is
        ambiguous, so it must not feed the estimator."""
        chan_a, _, _, delivered_b = make_pair(sim, hub, rto_initial=0.05)
        drop_data_seq_once(hub, 1)
        chan_a.send(b"lost-once")
        sim.run_until_idle()
        assert delivered_b == [b"lost-once"]
        assert chan_a.stats.retransmissions == 1
        assert chan_a.stats.rtt_samples == 0          # Karn excluded it
        chan_a.send(b"clean")
        sim.run_until_idle()
        assert chan_a.stats.rtt_samples == 1          # fresh packet samples

    def test_sack_acknowledgement_samples(self, sim, hub):
        """A packet first acknowledged via a SACK range (cumulative ack
        held back by an earlier hole) still yields its RTT sample — and
        only once, not again at the later cumulative ack."""
        chan_a, _, _, delivered_b = make_pair(sim, hub, window=4,
                                              rto_initial=0.2)
        drop_data_seq_once(hub, 1)
        for i in range(4):
            chan_a.send(f"m{i}".encode())
        sim.run_until_idle()
        assert delivered_b == [f"m{i}".encode() for i in range(4)]
        # seq 1 was retransmitted (no sample); 2..4 were SACKed fresh.
        assert chan_a.stats.rtt_samples == 3

    def test_set_rto_actuator(self, sim, hub):
        chan_a, _, _, _ = make_pair(sim, hub, rto_initial=0.05)
        assert chan_a.rto_initial == 0.05
        chan_a.set_rto(0.2)
        assert chan_a.rto_initial == 0.2
        chan_a.set_rto(5.0)                  # above the old max: cap follows
        assert chan_a.rto_max >= 5.0
        with pytest.raises(ConfigurationError):
            chan_a.set_rto(0.0)
        with pytest.raises(ConfigurationError):
            chan_a.set_rto(0.2, rto_max=0.1)

    def test_set_rto_applies_to_new_packets(self, sim):
        hub = InMemoryHub(sim, delay_s=0.050)         # 100 ms RTT
        chan_a, _, _, delivered_b = make_pair(sim, hub, rto_initial=0.5)
        chan_a.set_rto(0.150)
        chan_a.send(b"x")
        sim.run_until_idle()
        # RTO above the RTT: delivered without a spurious retransmission.
        assert delivered_b == [b"x"]
        assert chan_a.stats.retransmissions == 0


class TestDifferential:
    """Random loss + reordering + duplication over the simulated network.

    Whatever the link does, the delivered stream must equal the sent
    stream — exactly once, in order — at every window setting.
    """

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**16), window=st.sampled_from([1, 4, 32]))
    def test_delivered_equals_sent(self, seed, window):
        sim = Simulator()
        network = SimNetwork(sim, RngRegistry(seed))
        medium = network.add_medium("chaos", _CHAOS_LINK)
        network.attach("a", SimHost(sim, LAPTOP_PROFILE, "a"), medium)
        network.attach("b", SimHost(sim, LAPTOP_PROFILE, "b"), medium)
        ta, tb = SimTransport(network, "a"), SimTransport(network, "b")
        delivered = []
        chan_a = ReliableChannel(ta, sim, "b", lambda s, p: None,
                                 window=window, rto_initial=0.1)
        chan_b = ReliableChannel(tb, sim, "a",
                                 lambda s, p: delivered.append(p),
                                 window=window, rto_initial=0.1)
        ta.set_receiver(
            lambda src, data: chan_a.handle_packet(Packet.decode(data)))
        tb.set_receiver(
            lambda src, data: chan_b.handle_packet(Packet.decode(data)))

        messages = [f"m{i:04d}".encode() for i in range(80)]
        for index, message in enumerate(messages):
            sim.call_later(0.002 * index, chan_a.send, message)
        while len(delivered) < len(messages) and sim.now() < 600.0:
            sim.run(sim.now() + 1.0)
        assert delivered == messages
        # Let the tail of lost acks re-resolve (retransmit -> dup -> re-ack).
        sim.run(sim.now() + 60.0)
        assert delivered == messages
        assert chan_a.unacked_count() == 0


class TestClose:
    def test_close_drops_queue(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        hub.drop_filter = lambda src, dest, data: False
        chan_a.send(b"queued")
        chan_a.close()
        hub.drop_filter = None
        sim.run(10.0)
        assert delivered_b == []
        assert chan_a.unacked_count() == 0

    def test_send_after_close_is_dropped(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        chan_a.close()
        chan_a.send(b"late")
        sim.run_until_idle()
        assert delivered_b == []
