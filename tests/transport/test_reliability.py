"""The reliable channel: ordering, dedup, retransmission, give-up.

These are the paper's Section II-C guarantees at the hop level, tested
against a hub that can drop and reorder traffic on demand.
"""

import pytest

from repro.errors import ConfigurationError
from repro.ids import service_id_from_name
from repro.transport.packets import Packet, PacketType
from repro.transport.reliability import ReliableChannel


def make_pair(sim, hub, *, window=1, max_retries=None, on_give_up=None,
              rto_initial=0.05):
    """Two endpoints with channels wired to each other through raw packets."""
    ta, tb = hub.create("a"), hub.create("b")
    delivered_a, delivered_b = [], []
    chan_a = ReliableChannel(ta, sim, "b", lambda s, p: delivered_a.append(p),
                             window=window, max_retries=max_retries,
                             on_give_up=on_give_up, rto_initial=rto_initial)
    chan_b = ReliableChannel(tb, sim, "a", lambda s, p: delivered_b.append(p),
                             window=window, rto_initial=rto_initial)
    ta.set_receiver(lambda src, data: chan_a.handle_packet(Packet.decode(data)))
    tb.set_receiver(lambda src, data: chan_b.handle_packet(Packet.decode(data)))
    return chan_a, chan_b, delivered_a, delivered_b


class TestBasics:
    def test_send_delivers(self, sim, hub):
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub)
        chan_a.send(b"hello")
        sim.run_until_idle()
        assert delivered_b == [b"hello"]

    def test_many_messages_in_order(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        for i in range(50):
            chan_a.send(f"msg-{i}".encode())
        sim.run_until_idle()
        assert delivered_b == [f"msg-{i}".encode() for i in range(50)]

    def test_bidirectional(self, sim, hub):
        chan_a, chan_b, delivered_a, delivered_b = make_pair(sim, hub)
        chan_a.send(b"ping")
        chan_b.send(b"pong")
        sim.run_until_idle()
        assert delivered_b == [b"ping"]
        assert delivered_a == [b"pong"]

    def test_peer_id_learned(self, sim, hub):
        chan_a, chan_b, _, _ = make_pair(sim, hub)
        chan_a.send(b"x")
        sim.run_until_idle()
        assert chan_b.peer_id == service_id_from_name("a")

    def test_unreliable_send_has_no_seq_state(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        chan_a.send(b"raw", unreliable=True)
        sim.run_until_idle()
        assert delivered_b == [b"raw"]
        assert chan_a.unacked_count() == 0

    def test_window_must_be_positive(self, sim, hub):
        ta = hub.create("a")
        with pytest.raises(ConfigurationError):
            ReliableChannel(ta, sim, "b", lambda s, p: None, window=0)

    def test_bad_rto_bounds_rejected(self, sim, hub):
        ta = hub.create("a")
        with pytest.raises(ConfigurationError):
            ReliableChannel(ta, sim, "b", lambda s, p: None,
                            rto_initial=1.0, rto_max=0.5)


class TestLossRecovery:
    def test_retransmits_until_delivered(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        drops = [0]

        def drop_first_three(src, dest, data):
            packet = Packet.decode(data)
            if packet.type == PacketType.DATA and drops[0] < 3:
                drops[0] += 1
                return False
            return True

        hub.drop_filter = drop_first_three
        chan_a.send(b"persistent")
        sim.run(10.0)
        assert delivered_b == [b"persistent"]
        assert chan_a.stats.retransmissions >= 3

    def test_lost_ack_causes_duplicate_which_is_suppressed(self, sim, hub):
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub)
        dropped = [0]

        def drop_first_ack(src, dest, data):
            packet = Packet.decode(data)
            if packet.type == PacketType.ACK and dropped[0] == 0:
                dropped[0] += 1
                return False
            return True

        hub.drop_filter = drop_first_ack
        chan_a.send(b"once")
        sim.run(10.0)
        assert delivered_b == [b"once"]              # exactly once
        assert chan_b.stats.duplicates >= 1

    def test_order_preserved_under_heavy_loss(self, sim, hub):
        import random
        rng = random.Random(7)
        hub.drop_filter = lambda src, dest, data: rng.random() > 0.3
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        messages = [f"m{i}".encode() for i in range(40)]
        for message in messages:
            chan_a.send(message)
        sim.run(120.0)
        assert delivered_b == messages

    def test_rto_backs_off_and_resets(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub, rto_initial=0.05)
        hub.drop_filter = lambda src, dest, data: False   # black hole
        chan_a.send(b"x")
        sim.run(2.0)
        retries_in_two_seconds = chan_a.stats.retransmissions
        # Exponential backoff: far fewer than 2.0/0.05 = 40 attempts.
        assert 3 <= retries_in_two_seconds < 12
        hub.drop_filter = None
        sim.run(6.0)
        assert delivered_b == [b"x"]


class TestWindowing:
    def test_stop_and_wait_has_one_in_flight(self, sim, hub):
        chan_a, _, _, _ = make_pair(sim, hub)
        hub.drop_filter = lambda src, dest, data: False
        for i in range(5):
            chan_a.send(bytes([i]))
        assert chan_a.unacked_count() == 5
        # Only one DATA packet actually left (window=1).
        assert chan_a.stats.sent == 1

    def test_larger_window_pipelines(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub, window=4)
        hub.drop_filter = lambda src, dest, data: False
        for i in range(10):
            chan_a.send(bytes([i]))
        assert chan_a.stats.sent == 4
        hub.drop_filter = None
        sim.run(30.0)
        assert delivered_b == [bytes([i]) for i in range(10)]

    def test_out_of_order_arrival_reordered(self, sim, hub):
        # Window 4 with selective drops forces out-of-order arrivals.
        import random
        rng = random.Random(3)
        chan_a, chan_b, _, delivered_b = make_pair(sim, hub, window=4)
        hub.drop_filter = lambda src, dest, data: rng.random() > 0.25
        messages = [f"seq-{i}".encode() for i in range(30)]
        for message in messages:
            chan_a.send(message)
        sim.run(120.0)
        assert delivered_b == messages
        assert chan_b.stats.out_of_order > 0


class TestGiveUp:
    def test_gives_up_after_max_retries_and_closes(self, sim, hub):
        abandoned = []
        chan_a, _, _, _ = make_pair(sim, hub, max_retries=3,
                                    on_give_up=abandoned.append)
        hub.drop_filter = lambda src, dest, data: False
        chan_a.send(b"doomed-1")
        chan_a.send(b"doomed-2")
        sim.run(30.0)
        assert abandoned == [b"doomed-1", b"doomed-2"]
        assert chan_a.closed
        assert chan_a.stats.give_ups == 2

    def test_no_give_up_by_default(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        hub.drop_filter = lambda src, dest, data: False
        chan_a.send(b"eternal")
        sim.run(30.0)
        assert not chan_a.closed
        assert chan_a.unacked_count() == 1
        hub.drop_filter = None
        sim.run(40.0)
        assert delivered_b == [b"eternal"]


class TestClose:
    def test_close_drops_queue(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        hub.drop_filter = lambda src, dest, data: False
        chan_a.send(b"queued")
        chan_a.close()
        hub.drop_filter = None
        sim.run(10.0)
        assert delivered_b == []
        assert chan_a.unacked_count() == 0

    def test_send_after_close_is_dropped(self, sim, hub):
        chan_a, _, _, delivered_b = make_pair(sim, hub)
        chan_a.close()
        chan_a.send(b"late")
        sim.run_until_idle()
        assert delivered_b == []
