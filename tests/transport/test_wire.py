"""TLV value codec: roundtrips, bounds, malformed input."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.transport import wire


values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63),
    st.floats(allow_nan=False),
    st.text(max_size=200),
    st.binary(max_size=200),
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 32, 2 ** 60])
    def test_roundtrip(self, value):
        encoded = wire.encode_varint(value)
        decoded, offset = wire.decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_small_values_one_byte(self):
        assert len(wire.encode_varint(127)) == 1
        assert len(wire.encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            wire.encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(CodecError):
            wire.decode_varint(b"\x80")       # continuation with no next byte

    def test_overlong_rejected(self):
        with pytest.raises(CodecError):
            wire.decode_varint(b"\xff" * 12)

    @given(st.integers(min_value=0, max_value=2 ** 64))
    def test_roundtrip_property(self, value):
        assert wire.decode_varint(wire.encode_varint(value))[0] == value


class TestZigzag:
    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 100, -100, 2 ** 40,
                                       -(2 ** 40)])
    def test_roundtrip(self, value):
        assert wire.zigzag_decode(wire.zigzag_encode(value)) == value

    def test_small_magnitudes_stay_small(self):
        assert wire.zigzag_encode(-1) == 1
        assert wire.zigzag_encode(1) == 2

    @given(st.integers())
    def test_roundtrip_property(self, value):
        assert wire.zigzag_decode(wire.zigzag_encode(value)) == value


class TestValues:
    @pytest.mark.parametrize("value", [
        True, False, 0, -1, 12345, -(2 ** 40), 0.0, -2.5, math.inf,
        "", "hello", "unicode: héllo ☃", b"", b"\x00\xff", b"raw" * 50,
    ])
    def test_roundtrip(self, value):
        encoded = wire.encode_value(value)
        decoded, offset = wire.decode_value(encoded)
        assert decoded == value
        assert type(decoded) is type(value)
        assert offset == len(encoded)

    def test_bool_is_not_confused_with_int(self):
        decoded, _ = wire.decode_value(wire.encode_value(True))
        assert decoded is True
        decoded, _ = wire.decode_value(wire.encode_value(1))
        assert decoded == 1 and not isinstance(decoded, bool)

    def test_unsupported_type_rejected(self):
        with pytest.raises(CodecError):
            wire.encode_value([1, 2, 3])

    def test_none_rejected(self):
        with pytest.raises(CodecError):
            wire.encode_value(None)

    def test_oversized_string_rejected(self):
        with pytest.raises(CodecError):
            wire.encode_value("x" * 70000)

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            wire.decode_value(b"\x63\x00")

    def test_truncated_float_rejected(self):
        encoded = wire.encode_value(1.5)
        with pytest.raises(CodecError):
            wire.decode_value(encoded[:5])

    def test_invalid_bool_byte_rejected(self):
        with pytest.raises(CodecError):
            wire.decode_value(b"\x01\x07")

    def test_invalid_utf8_rejected(self):
        bad = bytes((4,)) + wire.encode_varint(2) + b"\xff\xfe"
        with pytest.raises(CodecError):
            wire.decode_value(bad)

    @given(values)
    def test_roundtrip_property(self, value):
        decoded, _ = wire.decode_value(wire.encode_value(value))
        if isinstance(value, float):
            assert decoded == pytest.approx(value, nan_ok=True)
        else:
            assert decoded == value
        assert type(decoded) is type(value)


class TestAttrMap:
    def test_roundtrip(self):
        attrs = {"hr": 72.5, "patient": "p-1", "alarm": False, "raw": b"\x01",
                 "count": 9}
        decoded, offset = wire.decode_attr_map(wire.encode_attr_map(attrs))
        assert decoded == attrs

    def test_empty_map(self):
        decoded, _ = wire.decode_attr_map(wire.encode_attr_map({}))
        assert decoded == {}

    def test_encoding_is_key_order_independent(self):
        a = wire.encode_attr_map({"x": 1, "y": 2})
        b = wire.encode_attr_map({"y": 2, "x": 1})
        assert a == b

    def test_empty_name_rejected(self):
        with pytest.raises(CodecError):
            wire.encode_attr_map({"": 1})

    def test_duplicate_on_wire_rejected(self):
        # Hand-craft a map body with the same key twice.
        body = (wire.encode_varint(2)
                + wire.encode_str("k") + wire.encode_value(1)
                + wire.encode_str("k") + wire.encode_value(2))
        with pytest.raises(CodecError):
            wire.decode_attr_map(body)

    def test_huge_count_rejected(self):
        with pytest.raises(CodecError):
            wire.decode_attr_map(wire.encode_varint(10 ** 9))

    @given(st.dictionaries(st.text(min_size=1, max_size=20), values,
                           max_size=12))
    def test_roundtrip_property(self, attrs):
        decoded, _ = wire.decode_attr_map(wire.encode_attr_map(attrs))
        assert set(decoded) == set(attrs)
        for key, value in attrs.items():
            if isinstance(value, float):
                assert decoded[key] == pytest.approx(value, nan_ok=True)
            else:
                assert decoded[key] == value


class TestFrameLists:
    """Batch framing: length-prefixed opaque frame lists."""

    def test_roundtrip(self):
        frames = [b"", b"a", b"\x01\x02\x03", b"x" * 300]
        decoded, pos = wire.decode_frames(wire.encode_frames(frames))
        assert decoded == frames
        assert pos == len(wire.encode_frames(frames))

    def test_empty_list(self):
        assert wire.decode_frames(wire.encode_frames([])) == ([], 1)

    def test_truncated_frame_rejected(self):
        encoded = wire.encode_frames([b"abcdef"])
        with pytest.raises(CodecError):
            wire.decode_frames(encoded[:-2])

    def test_huge_count_rejected(self):
        with pytest.raises(CodecError):
            wire.decode_frames(wire.encode_varint(10 ** 9))

    @given(st.lists(st.binary(max_size=64), max_size=20))
    def test_roundtrip_property(self, frames):
        decoded, _ = wire.decode_frames(wire.encode_frames(frames))
        assert decoded == frames
