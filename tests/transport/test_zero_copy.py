"""Zero-copy wire path: golden byte-identity and buffer-protocol decode.

Two invariants pin the PR 5 refactor:

* **Golden bytes** — the scatter-gather encoders (chunk lists joined once
  at the reliable-payload boundary) must produce byte-identical output to
  the pre-refactor encoders, reimplemented here verbatim as the
  reference.  The wire format is pinned by deployed decoders (the SACK
  compat suite makes the same promise one layer down), so "faster" must
  never mean "different".
* **Buffer-protocol decode** — every decode entry point accepts
  ``bytes``, ``bytearray`` and mid-buffer ``memoryview`` slices and
  yields equal values at equal offsets, with ``bytes``/``str`` values
  materialised (never aliasing the input buffer).
"""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import protocol
from repro.core.events import Event, decode_event, encode_event
from repro.core.protocol import BusOp
from repro.errors import CodecError
from repro.ids import ServiceId, service_id_from_name
from repro.transport import wire
from repro.transport.packets import Packet, PacketFlags, PacketType

SENDER = service_id_from_name("zero-copy")


# -- reference implementations (pre-refactor, copied verbatim) --------------

def ref_encode_varint(value):
    if value < 0:
        raise CodecError("negative")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def ref_encode_value(value):
    if isinstance(value, bool):
        return bytes((1, 1 if value else 0))
    if isinstance(value, int):
        zz = (value << 1) ^ (value >> (value.bit_length() + 1)) \
            if value < 0 else value << 1
        return bytes((2,)) + ref_encode_varint(zz)
    if isinstance(value, float):
        return bytes((3,)) + struct.pack("!d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes((4,)) + ref_encode_varint(len(raw)) + raw
    if isinstance(value, bytes):
        return bytes((5,)) + ref_encode_varint(len(value)) + value
    raise CodecError("unsupported")


def ref_encode_str(text):
    raw = text.encode("utf-8")
    return ref_encode_varint(len(raw)) + raw


def ref_encode_attr_map(attributes):
    parts = [ref_encode_varint(len(attributes))]
    for name in sorted(attributes):
        parts.append(ref_encode_str(name))
        parts.append(ref_encode_value(attributes[name]))
    return b"".join(parts)


def ref_encode_frames(frames):
    parts = [ref_encode_varint(len(frames))]
    for frame in frames:
        parts.append(ref_encode_varint(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def ref_encode_event(event):
    return b"".join((
        ref_encode_str(event.type),
        event.sender.to_bytes48(),
        ref_encode_varint(event.seqno),
        struct.pack("!d", event.timestamp),
        ref_encode_attr_map(dict(event.attributes)),
    ))


def ref_frame(op, body=b""):
    return bytes((int(op),)) + body


def ref_chunk_frames(frames, max_bytes=protocol.BATCH_FLUSH_BYTES):
    payloads, pending, pending_size = [], [], 0

    def flush():
        nonlocal pending, pending_size
        if not pending:
            return
        if len(pending) == 1:
            payloads.append(pending[0])
        else:
            payloads.append(ref_frame(BusOp.BATCH, ref_encode_frames(pending)))
        pending, pending_size = [], 0

    for framed in frames:
        if pending and pending_size + len(framed) > max_bytes:
            flush()
        pending.append(framed)
        pending_size += len(framed)
    flush()
    return payloads


_HEADER = struct.Struct("!2sBBB6sIIHI")


def ref_packet_encode(packet):
    import zlib
    payload = packet.payload
    if packet.sack:
        block = [bytes((len(packet.sack),))]
        block.extend(struct.pack("!II", s, e) for s, e in packet.sack)
        payload = b"".join(block) + bytes(payload)
    else:
        payload = bytes(payload)
    header_no_crc = _HEADER.pack(
        b"\xa5\x5e", packet.version, int(packet.type), int(packet.flags),
        packet.sender.to_bytes48(), packet.seq, packet.ack, len(payload), 0)
    crc = zlib.crc32(header_no_crc + payload) & 0xFFFFFFFF
    header = _HEADER.pack(
        b"\xa5\x5e", packet.version, int(packet.type), int(packet.flags),
        packet.sender.to_bytes48(), packet.seq, packet.ack, len(payload), crc)
    return header + payload


# -- corpus ------------------------------------------------------------------

VALUES = [True, False, 0, 1, -1, 127, 128, -300, 2 ** 40, -(2 ** 40),
          0.0, -2.5, 1e300, "", "hello", "héllo ☃", b"", b"\x00\xff",
          b"x" * 5000]

EVENTS = [
    Event("t", {}, SENDER, 1, 0.0),
    Event("vitals.hr", {"hr": 72, "patient": "p-1", "alarm": False},
          SENDER, 2, 1.25),
    Event("bench.payload", {"data": b"x" * 5000, "seq": 42}, SENDER, 3, 2.5),
    Event("attrs.heavy",
          {f"attr_{i:02d}": [True, i, float(i), f"v-{i}", bytes((i,)) * 9][i % 5]
           for i in range(25)},
          SENDER, 300, 17.75),
]

values_strategy = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63),
    st.floats(allow_nan=False),
    st.text(max_size=60),
    st.binary(max_size=60),
)

attrs_strategy = st.dictionaries(st.text(min_size=1, max_size=16),
                                 values_strategy, max_size=10)


def buffer_forms(encoded: bytes):
    """The three buffer shapes every decoder must accept: bytes,
    bytearray, and a mid-buffer memoryview slice."""
    padded = b"\xaa" * 3 + encoded + b"\xbb" * 2
    return [encoded, bytearray(encoded),
            memoryview(padded)[3:3 + len(encoded)]]


# -- golden byte-identity ----------------------------------------------------

class TestGoldenBytes:
    @pytest.mark.parametrize("value", VALUES)
    def test_value_encoding_unchanged(self, value):
        assert wire.encode_value(value) == ref_encode_value(value)

    def test_varint_encoding_unchanged(self):
        for v in (0, 1, 127, 128, 300, 2 ** 32, 2 ** 60):
            assert wire.encode_varint(v) == ref_encode_varint(v)

    def test_str_encoding_unchanged(self):
        for text in ("", "x", "unicode: ☃", "y" * 300):
            assert wire.encode_str(text) == ref_encode_str(text)

    @pytest.mark.parametrize("event", EVENTS)
    def test_event_encoding_unchanged(self, event):
        assert encode_event(event) == ref_encode_event(event)

    @pytest.mark.parametrize("event", EVENTS)
    def test_frame_parts_join_to_reference(self, event):
        ref = ref_frame(BusOp.DELIVER, ref_encode_event(event))
        assert b"".join(protocol.deliver_parts(event)) == ref
        assert protocol.deliver_frame(event) == ref
        ref_pub = ref_frame(BusOp.PUBLISH, ref_encode_event(event))
        assert b"".join(protocol.publish_parts(event)) == ref_pub

    def test_attr_map_encoding_unchanged(self):
        attrs = {"z": 1, "a": -5.5, "m": b"\x00", "s": "x", "b": True}
        assert wire.encode_attr_map(attrs) == ref_encode_attr_map(attrs)

    def test_frames_encoding_unchanged(self):
        frames = [b"", b"a", b"\x01\x02\x03", b"x" * 300]
        assert wire.encode_frames(frames) == ref_encode_frames(frames)

    @pytest.mark.parametrize("max_bytes", [100, 250, 32 * 1024])
    def test_chunk_frames_unchanged_for_bytes_and_parts(self, max_bytes):
        frames = [ref_frame(BusOp.PUBLISH, ref_encode_event(e))
                  for e in EVENTS] * 3
        expected = ref_chunk_frames(frames, max_bytes)
        # Pre-joined bytes frames…
        assert protocol.chunk_frames(frames, max_bytes) == expected
        # …and scatter-gather chunk lists produce identical payloads.
        parts = [protocol.publish_parts(e) for e in EVENTS] * 3
        assert protocol.chunk_frames(parts, max_bytes) == expected

    def test_packet_encoding_unchanged(self):
        packets = [
            Packet(type=PacketType.DATA, sender=SENDER, seq=9, ack=3,
                   payload=b"y" * 1400),
            Packet(type=PacketType.ACK, sender=SENDER, seq=0, ack=17,
                   sack=((19, 20), (25, 40))),
            Packet(type=PacketType.RAW, sender=SENDER,
                   payload=b"z", flags=PacketFlags.NO_ACK),
            Packet(type=PacketType.DATA, sender=SENDER, seq=2 ** 32 - 1,
                   ack=2 ** 32 - 1, payload=b""),
        ]
        for packet in packets:
            assert packet.encode() == ref_packet_encode(packet)

    @given(attrs_strategy, st.integers(min_value=0, max_value=2 ** 32),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_event_encoding_unchanged_property(self, attrs, seqno, ts):
        attrs.pop("type", None)
        event = Event("prop.event", attrs, SENDER, seqno, ts)
        assert encode_event(event) == ref_encode_event(event)


# -- buffer-protocol decode --------------------------------------------------

class TestBufferProtocolDecode:
    @pytest.mark.parametrize("value", VALUES)
    def test_decode_value_any_buffer(self, value):
        encoded = wire.encode_value(value)
        for buf in buffer_forms(encoded):
            decoded, pos = wire.decode_value(buf)
            assert decoded == value
            assert type(decoded) is type(value)
            assert pos == len(encoded)

    def test_decode_varint_any_buffer_and_offset(self):
        encoded = b"\xff" + wire.encode_varint(300)
        for buf in buffer_forms(encoded):
            assert wire.decode_varint(buf, 1) == (300, len(encoded))

    def test_decode_str_any_buffer(self):
        encoded = wire.encode_str("héllo ☃")
        for buf in buffer_forms(encoded):
            text, pos = wire.decode_str(buf)
            assert text == "héllo ☃"
            assert pos == len(encoded)

    def test_decode_attr_map_any_buffer(self):
        attrs = {"hr": 72.5, "p": "x", "raw": b"\x01\x02", "n": -9, "b": True}
        encoded = wire.encode_attr_map(attrs)
        for buf in buffer_forms(encoded):
            decoded, pos = wire.decode_attr_map(buf)
            assert decoded == attrs
            assert pos == len(encoded)
            assert type(decoded["raw"]) is bytes      # materialised, not a view
            assert type(decoded["p"]) is str

    def test_decode_frames_any_buffer(self):
        frames = [b"", b"a", b"\x01\x02\x03", b"x" * 300]
        encoded = wire.encode_frames(frames)
        for buf in buffer_forms(encoded):
            decoded, pos = wire.decode_frames(buf)
            assert [bytes(f) for f in decoded] == frames
            assert pos == len(encoded)

    @pytest.mark.parametrize("event", EVENTS)
    def test_decode_event_any_buffer(self, event):
        encoded = encode_event(event)
        for buf in buffer_forms(encoded):
            decoded, pos = decode_event(buf)
            assert decoded == event
            assert decoded.timestamp == event.timestamp
            assert pos == len(encoded)
            for name, value in event.attributes.items():
                assert type(decoded.attributes[name]) is type(value)

    def test_decode_event_mid_buffer_offset(self):
        event = EVENTS[1]
        encoded = encode_event(event)
        padded = b"\x00" * 7 + encoded + b"\xff" * 4
        for buf in (padded, bytearray(padded), memoryview(padded)):
            decoded, pos = decode_event(buf, 7)
            assert decoded == event
            assert pos == 7 + len(encoded)

    def test_unframe_and_parse_batch_any_buffer(self):
        frames = [protocol.frame(BusOp.PUBLISH, encode_event(e))
                  for e in EVENTS]
        payload = protocol.frame_batch(frames)
        for buf in buffer_forms(payload):
            op, body = protocol.unframe(buf)
            assert op == BusOp.BATCH
            parsed = protocol.parse_batch(body)
            assert [bytes(f) for f in parsed] == frames
            for framed, event in zip(parsed, EVENTS):
                sub_op, sub_body = protocol.unframe(framed)
                assert sub_op == BusOp.PUBLISH
                assert decode_event(sub_body)[0] == event

    def test_parse_quench_and_unsubscribe_any_buffer(self):
        quench = protocol.frame_quench(True)
        unsub = protocol.frame_unsubscribe(77)
        for buf in buffer_forms(quench):
            assert protocol.parse_quench(protocol.unframe(buf)[1]) is True
        for buf in buffer_forms(unsub):
            assert protocol.parse_unsubscribe(protocol.unframe(buf)[1]) == 77

    def test_packet_decode_any_buffer(self):
        packet = Packet(type=PacketType.DATA, sender=SENDER, seq=5, ack=2,
                        payload=b"payload" * 40, sack=((7, 9),))
        datagram = packet.encode()
        for buf in (datagram, bytearray(datagram), memoryview(datagram)):
            decoded = Packet.decode(buf)
            assert decoded == packet
            assert bytes(decoded.payload) == packet.payload
            assert decoded.sack == packet.sack

    @given(attrs_strategy, st.integers(min_value=0, max_value=2 ** 32))
    def test_event_roundtrip_property_all_buffers(self, attrs, seqno):
        attrs.pop("type", None)
        event = Event("prop.rt", attrs, SENDER, seqno, 3.5)
        encoded = encode_event(event)
        reference, _ = decode_event(encoded)
        for buf in buffer_forms(encoded):
            decoded, pos = decode_event(buf)
            assert pos == len(encoded)
            assert decoded == reference
            for name in attrs:
                assert type(decoded.attributes[name]) is type(
                    reference.attributes[name])


# -- decode strictness carried from the encoder's constraints ---------------

class TestDecodeStrictness:
    def test_empty_event_type_rejected(self):
        body = (wire.encode_str("") + SENDER.to_bytes48()
                + wire.encode_varint(1) + struct.pack("!d", 0.0)
                + wire.encode_attr_map({}))
        with pytest.raises(CodecError):
            decode_event(body)

    def test_empty_attr_name_rejected(self):
        body = (wire.encode_varint(1) + wire.encode_str("")
                + wire.encode_value(1))
        with pytest.raises(CodecError):
            wire.decode_attr_map(body)

    def test_truncated_event_rejected_from_any_buffer(self):
        encoded = encode_event(EVENTS[2])
        for cut in (1, 10, len(encoded) - 1):
            for buf in buffer_forms(encoded[:cut]):
                with pytest.raises(CodecError):
                    decode_event(buf)


# -- count_publications: varint walk vs the materialising oracle ------------

def oracle_count(payload):
    payload = bytes(payload)
    if not payload:
        return 0
    if payload[0] == BusOp.PUBLISH:
        return 1
    if payload[0] == BusOp.BATCH:
        try:
            frames, pos = wire.decode_frames(payload, 1)
            if pos != len(payload):
                raise CodecError("trailing")
        except CodecError:
            return 0
        return sum(1 for f in frames if bytes(f[:1]) == bytes((BusOp.PUBLISH,)))
    return 0


class TestCountPublications:
    def payloads(self):
        publish = protocol.frame(BusOp.PUBLISH, encode_event(EVENTS[0]))
        deliver = protocol.frame(BusOp.DELIVER, encode_event(EVENTS[0]))
        batch = protocol.frame_batch([publish, deliver, publish, b"\x01"])
        return [
            b"",
            publish,
            deliver,
            batch,
            protocol.frame_batch([]),
            protocol.frame_batch([b"", publish]),      # empty frame in batch
            batch[:-3],                                # truncated
            batch + b"\x00",                           # trailing bytes
            protocol.frame(BusOp.BATCH, b"\xff\xff\xff\xff\xff"),  # bad varint
            protocol.frame(BusOp.BATCH, wire.encode_varint(10 ** 9)),
        ]

    def test_matches_oracle_without_materialising(self):
        for payload in self.payloads():
            for buf in buffer_forms(payload):
                assert protocol.count_publications(buf) == \
                    oracle_count(payload), payload

    @given(st.lists(st.binary(max_size=40), max_size=12))
    def test_matches_oracle_property(self, frames):
        payload = protocol.frame_batch(frames)
        assert protocol.count_publications(payload) == oracle_count(payload)
