"""Codec exhaustiveness: the dynamic twin of repro-lint's RL004.

RL004 statically requires every ``encode_X`` to ship with ``write_X`` and
``decode_X`` siblings; this suite proves the siblings *agree*:

* for every codec triple, ``b"".join(write_X parts) == encode_X(value)``
  and ``decode_X`` inverts both — discovered by reflection, so a new
  ``encode_X`` without a sample value here fails loudly;
* every ``BusOp`` opcode has a frame builder whose output ``unframe``s
  back to the same opcode and a body its parser inverts — asserted
  against ``set(BusOp)``, so adding an opcode without wiring it up here
  fails too.
"""

import inspect

from repro.core import events, protocol
from repro.core.events import Event
from repro.core.protocol import BusOp
from repro.ids import ServiceId
from repro.matching import filters, plan
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.matching.plan import MatchPlan
from repro.transport import wire

SENDER = ServiceId(0x0A0000011F90)

EVENT = Event("health.hr.alarm",
              {"hr": 184, "ok": False, "temp": 36.6,
               "ward": "icu-3", "trace": b"\x00\xff\x10"},
              sender=SENDER, seqno=41, timestamp=12.5)

SUBSCRIPTION = Subscription(
    7, SENDER,
    [Filter([Constraint("type", Op.PREFIX, "health."),
             Constraint("hr", Op.GT, 120)]),
     Filter([Constraint("battery", Op.EXISTS)])])

#: One representative value per codec triple, keyed by (module, suffix).
#: ``test_every_encode_has_a_sample`` makes this table exhaustive: adding
#: ``encode_foo`` anywhere in the codec modules without a sample here fails.
SAMPLES = {
    (wire, "varint"): [0, 1, 127, 128, 300, 2 ** 32],
    (wire, "value"): [True, False, -17, 2 ** 40, 36.6, "hällo", b"\x00\x01"],
    (wire, "str"): ["", "plain", "ünïcode"],
    (wire, "frames"): [[], [b"a"], [b"one", b"", b"three" * 100]],
    (wire, "attr_map"): [{}, {"hr": 72, "ok": True, "name": "x",
                             "t": 36.6, "raw": b"\x00"}],
    (events, "event"): [EVENT],
    (plan, "plan"): [MatchPlan(shard=2, epoch=5, indexes=[0, 3],
                               projections=[{"type": "a", "hr": 1},
                                            {"type": "b", "ok": True}])],
    (filters, "constraint"): [Constraint("hr", Op.GT, 100),
                              Constraint("battery", Op.EXISTS)],
    (filters, "filter"): [Filter(), Filter([Constraint("ward", Op.EQ, "icu")])],
    (filters, "subscription"): [SUBSCRIPTION],
}

CODEC_MODULES = (wire, events, plan, filters)


def _triples():
    for module in CODEC_MODULES:
        for name, func in sorted(vars(module).items()):
            if (name.startswith("encode_") and inspect.isfunction(func)
                    and func.__module__ == module.__name__):
                yield module, name[len("encode_"):]


def _canon(value):
    """Normalise decode output for comparison (buffers -> bytes, etc.)."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value)
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    if isinstance(value, Subscription):
        return (value.sub_id, value.subscriber, value.filters)
    return value


def test_every_encode_has_a_sample():
    missing = [(module.__name__, suffix) for module, suffix in _triples()
               if (module, suffix) not in SAMPLES]
    assert missing == [], (
        f"new encode_* without a round-trip sample: {missing}")
    stale = [(module.__name__, suffix) for module, suffix in SAMPLES
             if (module, suffix) not in set(_triples())]
    assert stale == []


def test_write_join_equals_encode_and_decode_inverts():
    for module, suffix in _triples():
        encode = getattr(module, f"encode_{suffix}")
        write = getattr(module, f"write_{suffix}")
        decode = getattr(module, f"decode_{suffix}")
        for value in SAMPLES[(module, suffix)]:
            encoded = encode(value)
            parts = []
            write(parts, value)
            assert b"".join(parts) == encoded, (suffix, value)
            decoded, end = decode(encoded)
            assert end == len(encoded), (suffix, value)
            assert _canon(decoded) == _canon(value), (suffix, value)
            # Offset decoding must work too: the bus parses mid-buffer.
            padded = b"\xee" * 3 + encoded
            decoded_at, end_at = decode(padded, 3)
            assert end_at == len(padded)
            assert _canon(decoded_at) == _canon(value), (suffix, value)


def _roundtrip_event_frame(payload, expected_op):
    op, body = protocol.unframe(payload)
    assert op is expected_op
    event, end = events.decode_event(bytes(body))
    assert end == len(bytes(body))
    assert event == EVENT
    return op


#: Frame-builder + body-parser pair per opcode.  ``test_every_busop_...``
#: asserts this table covers set(BusOp) exactly.
OPCODE_CASES = {
    BusOp.PUBLISH: (
        lambda: b"".join(protocol.publish_parts(EVENT)),
        lambda p: _roundtrip_event_frame(p, BusOp.PUBLISH)),
    BusOp.DELIVER: (
        lambda: protocol.deliver_frame(EVENT),
        lambda p: _roundtrip_event_frame(p, BusOp.DELIVER)),
    BusOp.SUBSCRIBE: (
        lambda: protocol.frame(BusOp.SUBSCRIBE,
                               filters.encode_subscription(SUBSCRIPTION)),
        lambda p: filters.decode_subscription(
            bytes(protocol.unframe(p)[1]))[0].sub_id == SUBSCRIPTION.sub_id),
    BusOp.UNSUBSCRIBE: (
        lambda: protocol.frame_unsubscribe(7),
        lambda p: protocol.parse_unsubscribe(protocol.unframe(p)[1]) == 7),
    BusOp.DEVICE_DATA: (
        lambda: protocol.frame(BusOp.DEVICE_DATA, b"\x01reading"),
        lambda p: bytes(protocol.unframe(p)[1]) == b"\x01reading"),
    BusOp.DEVICE_CMD: (
        lambda: protocol.frame(BusOp.DEVICE_CMD, b"\x02cmd"),
        lambda p: bytes(protocol.unframe(p)[1]) == b"\x02cmd"),
    BusOp.ADVERTISE: (
        lambda: protocol.frame(BusOp.ADVERTISE, filters.encode_filter(
            Filter([Constraint("type", Op.PREFIX, "health.")]))),
        lambda p: filters.decode_filter(bytes(protocol.unframe(p)[1]))[0]
        == Filter([Constraint("type", Op.PREFIX, "health.")])),
    BusOp.QUENCH: (
        lambda: protocol.frame_quench(True),
        lambda p: protocol.parse_quench(protocol.unframe(p)[1]) is True),
    BusOp.BATCH: (
        lambda: protocol.frame_batch([protocol.deliver_frame(EVENT),
                                      protocol.frame_quench(False)]),
        lambda p: [bytes(f) for f in
                   protocol.parse_batch(protocol.unframe(p)[1])]
        == [protocol.deliver_frame(EVENT), protocol.frame_quench(False)]),
}


def test_every_busop_has_a_roundtrip_case():
    assert set(OPCODE_CASES) == set(BusOp), (
        "new BusOp member without a frame round-trip case")


def test_every_busop_frame_roundtrips():
    for op, (build, check) in OPCODE_CASES.items():
        payload = build()
        assert payload[0] == int(op)
        parsed_op, _ = protocol.unframe(payload)
        assert parsed_op is op
        # memoryview input must parse identically (the packet layer's view).
        view_op, _ = protocol.unframe(memoryview(payload))
        assert view_op is op
        assert check(payload) not in (False, None)


def test_event_frame_parts_join_matches_frame_of_encode():
    for op in (BusOp.PUBLISH, BusOp.DELIVER):
        parts = protocol.event_frame_parts(op, EVENT)
        assert b"".join(parts) == protocol.frame(
            op, events.encode_event(EVENT))
