"""PacketEndpoint: control/data demultiplexing, peer learning, channels."""

import pytest

from repro.errors import AddressError, PacketError
from repro.ids import service_id_from_name
from repro.transport.packets import Packet, PacketType


class TestPlanes:
    def test_control_packets_reach_control_handler(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        seen = []
        b.set_control_handler(lambda pkt, src: seen.append((pkt.type, src)))
        a.send_control("b", PacketType.BEACON, b"cell-info")
        sim.run_until_idle()
        assert seen == [(PacketType.BEACON, "a")]

    def test_reliable_payloads_reach_payload_handler(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        seen = []
        b.set_payload_handler(lambda peer, data: seen.append((peer, data)))
        a.send_reliable("b", b"payload")
        sim.run_until_idle()
        assert seen == [(service_id_from_name("a"), b"payload")]

    def test_raw_payloads_also_reach_payload_handler(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        seen = []
        b.set_payload_handler(lambda peer, data: seen.append(data))
        a.send_raw("b", b"unack")
        sim.run_until_idle()
        assert seen == [b"unack"]

    def test_data_types_cannot_be_sent_as_control(self, sim, endpoints):
        a = endpoints("a")
        with pytest.raises(PacketError):
            a.send_control("b", PacketType.DATA, b"x")

    def test_broadcast_control(self, sim, endpoints):
        a = endpoints("a")
        seen = {}
        for name in ("b", "c"):
            endpoint = endpoints(name)
            seen[name] = []
            endpoint.set_control_handler(
                lambda pkt, src, n=name: seen[n].append(pkt.type))
        a.broadcast_control(PacketType.BEACON)
        sim.run_until_idle()
        assert seen == {"b": [PacketType.BEACON], "c": [PacketType.BEACON]}

    def test_own_broadcast_echo_ignored(self, sim, endpoints):
        a = endpoints("a")
        endpoints("b")
        seen = []
        a.set_control_handler(lambda pkt, src: seen.append(pkt))
        a.broadcast_control(PacketType.BEACON)
        sim.run_until_idle()
        assert seen == []

    def test_garbage_datagrams_counted_not_raised(self, sim, hub, endpoints):
        b = endpoints("b")
        raw = hub.create("raw-sender")
        raw.send("b", b"not a packet at all")
        sim.run_until_idle()
        assert b.decode_errors == 1


class TestPeerBookkeeping:
    def test_addresses_learned_from_any_packet(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        b.set_control_handler(lambda pkt, src: None)
        a.send_control("b", PacketType.HEARTBEAT)
        sim.run_until_idle()
        assert b.address_of(service_id_from_name("a")) == "a"
        assert b.knows_peer(service_id_from_name("a"))

    def test_unknown_peer_raises(self, endpoints):
        a = endpoints("a")
        with pytest.raises(AddressError):
            a.address_of(service_id_from_name("stranger"))

    def test_learn_peer_manually(self, endpoints):
        a = endpoints("a")
        peer = service_id_from_name("remote")
        a.learn_peer(peer, "remote")
        assert a.address_of(peer) == "remote"

    def test_forget_peer(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        a.send_reliable("b", b"x")
        sim.run_until_idle()
        peer = service_id_from_name("a")
        b.forget_peer(peer)
        assert not b.knows_peer(peer)


class TestChannels:
    def test_close_channel_reports_dropped_payloads(self, sim, hub,
                                                    endpoints):
        a, b = endpoints("a"), endpoints("b")
        b.set_payload_handler(lambda peer, data: None)
        hub.drop_filter = lambda src, dest, data: False
        a.learn_peer(service_id_from_name("b"), "b")
        for i in range(4):
            a.send_reliable("b", bytes([i]))
        dropped = a.close_channel(service_id_from_name("b"))
        assert dropped == 4

    def test_close_channel_without_channel_is_zero(self, endpoints):
        a = endpoints("a")
        a.learn_peer(service_id_from_name("b"), "b")
        assert a.close_channel(service_id_from_name("b")) == 0

    def test_one_sided_reset_desyncs_by_design(self, sim, hub, endpoints):
        # Channel state is scoped to a membership session: if only one side
        # resets, the survivor treats the fresh sequence numbers as
        # duplicates.  This is why JOIN_ACK carries new_session and both
        # sides reset together.
        a, b = endpoints("a"), endpoints("b")
        got = []
        b.set_payload_handler(lambda peer, data: got.append(data))
        a.send_reliable("b", b"first")
        sim.run_until_idle()
        a.reset_channel_to("b")
        a.send_reliable("b", b"second")        # seq restarts at 1
        sim.run(5.0)
        assert got == [b"first"]               # suppressed as a duplicate

    def test_both_sides_reset_resyncs(self, sim, hub, endpoints):
        a, b = endpoints("a"), endpoints("b")
        got = []
        b.set_payload_handler(lambda peer, data: got.append(data))
        a.send_reliable("b", b"first")
        sim.run_until_idle()
        a.reset_channel_to("b")
        b.reset_channel_to("a")
        a.send_reliable("b", b"second")
        sim.run_until_idle()
        assert got == [b"first", b"second"]

    def test_reset_unknown_address_is_noop(self, endpoints):
        a = endpoints("a")
        assert a.reset_channel_to("nowhere") == 0

    def test_give_up_handler(self, sim, hub, endpoints):
        endpoints("b")
        abandoned = []
        a_give = endpoints("a2", max_retries=2)
        a_give.set_give_up_handler(lambda peer, data: abandoned.append(data))
        hub.drop_filter = lambda src, dest, data: False
        a_give.send_reliable("b", b"lost")
        sim.run(30.0)
        assert abandoned == [b"lost"]

    def test_sequential_payloads_in_order(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        got = []
        b.set_payload_handler(lambda peer, data: got.append(data))
        for i in range(20):
            a.send_reliable("b", f"p{i}".encode())
        sim.run_until_idle()
        assert got == [f"p{i}".encode() for i in range(20)]

    def test_two_peers_independent_channels(self, sim, endpoints):
        a, b, c = endpoints("a"), endpoints("b"), endpoints("c")
        got_b, got_c = [], []
        b.set_payload_handler(lambda peer, data: got_b.append(data))
        c.set_payload_handler(lambda peer, data: got_c.append(data))
        a.send_reliable("b", b"to-b")
        a.send_reliable("c", b"to-c")
        sim.run_until_idle()
        assert got_b == [b"to-b"]
        assert got_c == [b"to-c"]


class TestRoamingPeers:
    """A peer that re-appears at a new address must not leak channel
    state at its old one (regression: close_channel/forget_peer used to
    tear down only the latest address)."""

    def _stranded(self, sim, hub, endpoints, payloads=3):
        """A core with ``payloads`` events queued to peer "dev", whose
        acks never arrive; returns (core, dev service id)."""
        core, dev = endpoints("core"), endpoints("dev")
        dev.set_payload_handler(lambda peer, data: None)
        hub.create("dev-roamed")                  # the peer's new home
        hub.drop_filter = lambda src, dest, data: src != "core"
        core.learn_peer(dev.service_id, "dev")
        for index in range(payloads):
            core.send_reliable("dev", bytes([index]))
        return core, dev.service_id

    def test_close_channel_drops_roamed_and_current_queues(
            self, sim, hub, endpoints):
        core, dev_id = self._stranded(sim, hub, endpoints)
        core.learn_peer(dev_id, "dev-roamed")     # peer roams
        core.send_reliable("dev-roamed", b"x")
        core.send_reliable("dev-roamed", b"y")
        assert core.channel_addresses(dev_id) == {"dev", "dev-roamed"}
        assert core.close_channel(dev_id) == 5    # 3 stranded + 2 new
        assert core.channel_addresses(dev_id) == set()
        assert core.existing_channel("dev") is None
        assert core.existing_channel("dev-roamed") is None

    def test_roam_learned_from_packets_not_just_learn_peer(
            self, sim, hub, endpoints):
        core, dev = endpoints("core"), endpoints("dev")
        dev.set_payload_handler(lambda peer, data: None)
        core.set_payload_handler(lambda peer, data: None)
        dev.send_reliable("core", b"hello")       # channel at "dev"
        sim.run_until_idle()
        # The same service id now speaks from a new source address.
        roamed = hub.create("dev-roamed")
        packet = Packet(type=PacketType.DATA,
                        sender=service_id_from_name("dev"), seq=1,
                        payload=b"from-new-home")
        roamed.send("core", packet.encode())
        sim.run_until_idle()
        assert core.address_of(service_id_from_name("dev")) == "dev-roamed"
        assert core.channel_addresses(service_id_from_name("dev")) \
            == {"dev", "dev-roamed"}
        core.close_channel(service_id_from_name("dev"))
        assert core.existing_channel("dev") is None
        assert core.existing_channel("dev-roamed") is None

    def test_give_up_on_roamed_away_address_still_names_the_peer(
            self, sim, hub, endpoints):
        endpoints("dev")
        hub.create("dev-roamed")
        abandoned = []
        core = endpoints("core2", max_retries=2)
        core.set_give_up_handler(lambda peer, data: abandoned.append(peer))
        hub.drop_filter = lambda src, dest, data: False
        core.learn_peer(service_id_from_name("dev"), "dev")
        core.send_reliable("dev", b"doomed")
        core.learn_peer(service_id_from_name("dev"), "dev-roamed")  # roam
        sim.run(30.0)
        # Old behaviour scanned only current addresses and reported None.
        assert abandoned == [service_id_from_name("dev")]

    def test_forget_peer_clears_all_roamed_state(self, sim, hub, endpoints):
        core, dev_id = self._stranded(sim, hub, endpoints)
        core.learn_peer(dev_id, "dev-roamed")
        core.send_reliable("dev-roamed", b"x")
        core.forget_peer(dev_id)
        assert not core.knows_peer(dev_id)
        assert core.channel_addresses(dev_id) == set()
        assert core.existing_channel("dev") is None
        assert core.existing_channel("dev-roamed") is None
        # A later give-up-style lookup finds nothing stale.
        assert core._address_peers == {}

    def test_address_handover_resets_old_peers_channel(
            self, sim, hub, endpoints):
        # When an address changes hands, the previous peer's session
        # there is dead: its queued payloads must not surface at the new
        # occupant, and the new peer starts from a fresh channel.
        core = endpoints("core")
        endpoints("dev")
        hub.create("shared-addr")
        hub.drop_filter = lambda src, dest, data: False
        old_peer = service_id_from_name("dev")
        new_peer = service_id_from_name("other")
        core.learn_peer(old_peer, "shared-addr")
        core.send_reliable("shared-addr", b"old-session")
        # The address changes hands: a different peer now lives there.
        core.learn_peer(new_peer, "shared-addr")
        assert core.existing_channel("shared-addr") is None
        assert core.close_channel(old_peer) == 0    # nothing left to leak
        core.send_reliable("shared-addr", b"new-session")
        assert core.channel_addresses(new_peer) == {"shared-addr"}
        assert core.close_channel(new_peer) == 1    # only its own payload


class TestChannelObservability:
    def test_channel_stats_aggregates_all_channels(self, sim, endpoints):
        a, b, c = endpoints("a"), endpoints("b"), endpoints("c")
        b.set_payload_handler(lambda peer, data: None)
        c.set_payload_handler(lambda peer, data: None)
        a.send_reliable("b", b"to-b")
        a.send_reliable("c", b"to-c")
        sim.run_until_idle()
        total = a.channel_stats()
        assert total.sent == 2
        assert total.retransmissions == 0
        assert b.channel_stats().delivered == 1
        assert c.channel_stats().acks_sent == 1

    def test_existing_channel_never_creates_state(self, sim, endpoints):
        a = endpoints("a")
        endpoints("b")
        assert a.existing_channel("b") is None      # no traffic yet
        a.send_reliable("b", b"x")
        sim.run_until_idle()
        assert a.existing_channel("b") is not None
        a.reset_channel_to("b")
        assert a.existing_channel("b") is None      # closed, not resurrected


class TestMovePeer:
    """move_peer: the roam handover — migrate queued deliveries to the
    member's new address instead of retransmitting at the stale one."""

    def _stranded(self, sim, hub, endpoints, payloads=3):
        core, dev = endpoints("core"), endpoints("dev")
        dev.set_payload_handler(lambda peer, data: None)
        hub.drop_filter = lambda src, dest, data: src != "core"
        core.learn_peer(dev.service_id, "dev")
        for index in range(payloads):
            core.send_reliable("dev", bytes([index]))
        return core, dev.service_id

    def _device_at(self, hub, address, dev_id):
        """A raw transport standing in for the roamed device: same
        service id, new address; collects DATA payloads and ACKs them."""
        transport = hub.create(address)
        got = []

        def on_datagram(src, data):
            packet = Packet.decode(data)
            if packet.type == PacketType.DATA:
                got.append(bytes(packet.payload))
                transport.send(src, Packet(type=PacketType.ACK,
                                           sender=dev_id,
                                           ack=packet.seq).encode())

        transport.set_receiver(on_datagram)
        return got

    def test_queued_payloads_follow_the_peer(self, sim, hub, endpoints):
        core, dev_id = self._stranded(sim, hub, endpoints)
        got = self._device_at(hub, "dev-roamed", dev_id)
        hub.drop_filter = None
        assert core.move_peer(dev_id, "dev-roamed") == 3
        sim.run_until_idle()
        assert got == [bytes([0]), bytes([1]), bytes([2])]
        assert core.address_of(dev_id) == "dev-roamed"
        assert core.channel_addresses(dev_id) == {"dev-roamed"}
        assert core.existing_channel("dev") is None

    def test_move_covers_every_superseded_address(self, sim, hub,
                                                  endpoints):
        # A twice-roamed peer has stranded state at two old addresses.
        core, dev_id = self._stranded(sim, hub, endpoints)
        hub.create("dev-hop")
        core.learn_peer(dev_id, "dev-hop")
        core.send_reliable("dev-hop", b"mid-roam")
        got = self._device_at(hub, "dev-final", dev_id)
        hub.drop_filter = None
        assert core.move_peer(dev_id, "dev-final") == 4
        sim.run_until_idle()
        assert sorted(got) == sorted([bytes([0]), bytes([1]), bytes([2]),
                                      b"mid-roam"])
        assert core.channel_addresses(dev_id) == {"dev-final"}

    def test_move_to_current_address_is_noop(self, sim, hub, endpoints):
        core, dev_id = self._stranded(sim, hub, endpoints)
        assert core.move_peer(dev_id, "dev") == 0
        assert core.address_of(dev_id) == "dev"
        # The existing channel (with its in-flight state) survives.
        assert core.existing_channel("dev") is not None

    def test_move_with_no_channel_state(self, sim, hub, endpoints):
        core = endpoints("core")
        endpoints("dev")
        hub.create("dev-roamed")
        dev_id = service_id_from_name("dev")
        core.learn_peer(dev_id, "dev")
        assert core.move_peer(dev_id, "dev-roamed") == 0
        assert core.address_of(dev_id) == "dev-roamed"
