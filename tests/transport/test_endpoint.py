"""PacketEndpoint: control/data demultiplexing, peer learning, channels."""

import pytest

from repro.errors import AddressError, PacketError
from repro.ids import service_id_from_name
from repro.transport.packets import Packet, PacketType


class TestPlanes:
    def test_control_packets_reach_control_handler(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        seen = []
        b.set_control_handler(lambda pkt, src: seen.append((pkt.type, src)))
        a.send_control("b", PacketType.BEACON, b"cell-info")
        sim.run_until_idle()
        assert seen == [(PacketType.BEACON, "a")]

    def test_reliable_payloads_reach_payload_handler(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        seen = []
        b.set_payload_handler(lambda peer, data: seen.append((peer, data)))
        a.send_reliable("b", b"payload")
        sim.run_until_idle()
        assert seen == [(service_id_from_name("a"), b"payload")]

    def test_raw_payloads_also_reach_payload_handler(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        seen = []
        b.set_payload_handler(lambda peer, data: seen.append(data))
        a.send_raw("b", b"unack")
        sim.run_until_idle()
        assert seen == [b"unack"]

    def test_data_types_cannot_be_sent_as_control(self, sim, endpoints):
        a = endpoints("a")
        with pytest.raises(PacketError):
            a.send_control("b", PacketType.DATA, b"x")

    def test_broadcast_control(self, sim, endpoints):
        a = endpoints("a")
        seen = {}
        for name in ("b", "c"):
            endpoint = endpoints(name)
            seen[name] = []
            endpoint.set_control_handler(
                lambda pkt, src, n=name: seen[n].append(pkt.type))
        a.broadcast_control(PacketType.BEACON)
        sim.run_until_idle()
        assert seen == {"b": [PacketType.BEACON], "c": [PacketType.BEACON]}

    def test_own_broadcast_echo_ignored(self, sim, endpoints):
        a = endpoints("a")
        endpoints("b")
        seen = []
        a.set_control_handler(lambda pkt, src: seen.append(pkt))
        a.broadcast_control(PacketType.BEACON)
        sim.run_until_idle()
        assert seen == []

    def test_garbage_datagrams_counted_not_raised(self, sim, hub, endpoints):
        b = endpoints("b")
        raw = hub.create("raw-sender")
        raw.send("b", b"not a packet at all")
        sim.run_until_idle()
        assert b.decode_errors == 1


class TestPeerBookkeeping:
    def test_addresses_learned_from_any_packet(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        b.set_control_handler(lambda pkt, src: None)
        a.send_control("b", PacketType.HEARTBEAT)
        sim.run_until_idle()
        assert b.address_of(service_id_from_name("a")) == "a"
        assert b.knows_peer(service_id_from_name("a"))

    def test_unknown_peer_raises(self, endpoints):
        a = endpoints("a")
        with pytest.raises(AddressError):
            a.address_of(service_id_from_name("stranger"))

    def test_learn_peer_manually(self, endpoints):
        a = endpoints("a")
        peer = service_id_from_name("remote")
        a.learn_peer(peer, "remote")
        assert a.address_of(peer) == "remote"

    def test_forget_peer(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        a.send_reliable("b", b"x")
        sim.run_until_idle()
        peer = service_id_from_name("a")
        b.forget_peer(peer)
        assert not b.knows_peer(peer)


class TestChannels:
    def test_close_channel_reports_dropped_payloads(self, sim, hub,
                                                    endpoints):
        a, b = endpoints("a"), endpoints("b")
        b.set_payload_handler(lambda peer, data: None)
        hub.drop_filter = lambda src, dest, data: False
        a.learn_peer(service_id_from_name("b"), "b")
        for i in range(4):
            a.send_reliable("b", bytes([i]))
        dropped = a.close_channel(service_id_from_name("b"))
        assert dropped == 4

    def test_close_channel_without_channel_is_zero(self, endpoints):
        a = endpoints("a")
        a.learn_peer(service_id_from_name("b"), "b")
        assert a.close_channel(service_id_from_name("b")) == 0

    def test_one_sided_reset_desyncs_by_design(self, sim, hub, endpoints):
        # Channel state is scoped to a membership session: if only one side
        # resets, the survivor treats the fresh sequence numbers as
        # duplicates.  This is why JOIN_ACK carries new_session and both
        # sides reset together.
        a, b = endpoints("a"), endpoints("b")
        got = []
        b.set_payload_handler(lambda peer, data: got.append(data))
        a.send_reliable("b", b"first")
        sim.run_until_idle()
        a.reset_channel_to("b")
        a.send_reliable("b", b"second")        # seq restarts at 1
        sim.run(5.0)
        assert got == [b"first"]               # suppressed as a duplicate

    def test_both_sides_reset_resyncs(self, sim, hub, endpoints):
        a, b = endpoints("a"), endpoints("b")
        got = []
        b.set_payload_handler(lambda peer, data: got.append(data))
        a.send_reliable("b", b"first")
        sim.run_until_idle()
        a.reset_channel_to("b")
        b.reset_channel_to("a")
        a.send_reliable("b", b"second")
        sim.run_until_idle()
        assert got == [b"first", b"second"]

    def test_reset_unknown_address_is_noop(self, endpoints):
        a = endpoints("a")
        assert a.reset_channel_to("nowhere") == 0

    def test_give_up_handler(self, sim, hub, endpoints):
        endpoints("b")
        abandoned = []
        a_give = endpoints("a2", max_retries=2)
        a_give.set_give_up_handler(lambda peer, data: abandoned.append(data))
        hub.drop_filter = lambda src, dest, data: False
        a_give.send_reliable("b", b"lost")
        sim.run(30.0)
        assert abandoned == [b"lost"]

    def test_sequential_payloads_in_order(self, sim, endpoints):
        a, b = endpoints("a"), endpoints("b")
        got = []
        b.set_payload_handler(lambda peer, data: got.append(data))
        for i in range(20):
            a.send_reliable("b", f"p{i}".encode())
        sim.run_until_idle()
        assert got == [f"p{i}".encode() for i in range(20)]

    def test_two_peers_independent_channels(self, sim, endpoints):
        a, b, c = endpoints("a"), endpoints("b"), endpoints("c")
        got_b, got_c = [], []
        b.set_payload_handler(lambda peer, data: got_b.append(data))
        c.set_payload_handler(lambda peer, data: got_c.append(data))
        a.send_reliable("b", b"to-b")
        a.send_reliable("c", b"to-c")
        sim.run_until_idle()
        assert got_b == [b"to-b"]
        assert got_c == [b"to-c"]


class TestChannelObservability:
    def test_channel_stats_aggregates_all_channels(self, sim, endpoints):
        a, b, c = endpoints("a"), endpoints("b"), endpoints("c")
        b.set_payload_handler(lambda peer, data: None)
        c.set_payload_handler(lambda peer, data: None)
        a.send_reliable("b", b"to-b")
        a.send_reliable("c", b"to-c")
        sim.run_until_idle()
        total = a.channel_stats()
        assert total.sent == 2
        assert total.retransmissions == 0
        assert b.channel_stats().delivered == 1
        assert c.channel_stats().acks_sent == 1

    def test_existing_channel_never_creates_state(self, sim, endpoints):
        a = endpoints("a")
        endpoints("b")
        assert a.existing_channel("b") is None      # no traffic yet
        a.send_reliable("b", b"x")
        sim.run_until_idle()
        assert a.existing_channel("b") is not None
        a.reset_channel_to("b")
        assert a.existing_channel("b") is None      # closed, not resurrected
