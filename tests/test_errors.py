"""The exception hierarchy: one root, correct subsystem parents."""

import inspect

import pytest

import repro.errors as errors


ALL_ERRORS = [cls for _, cls in inspect.getmembers(errors, inspect.isclass)
              if issubclass(cls, Exception)]


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in ALL_ERRORS:
            assert issubclass(cls, errors.ReproError), cls

    def test_subsystem_parents(self):
        assert issubclass(errors.PacketError, errors.CodecError)
        assert issubclass(errors.TransportClosedError, errors.TransportError)
        assert issubclass(errors.AddressError, errors.TransportError)
        assert issubclass(errors.SubscriptionNotFoundError,
                          errors.MatchingError)
        assert issubclass(errors.NotAMemberError, errors.BusError)
        assert issubclass(errors.DuplicateMemberError, errors.BusError)
        assert issubclass(errors.AuthenticationError, errors.DiscoveryError)
        assert issubclass(errors.PolicyParseError, errors.PolicyError)
        assert issubclass(errors.PolicyConflictError, errors.PolicyError)
        assert issubclass(errors.AuthorisationDenied, errors.PolicyError)

    def test_one_catch_all_is_enough(self):
        with pytest.raises(errors.ReproError):
            raise errors.FederationError("x")
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("x")

    def test_parse_error_location_formatting(self):
        error = errors.PolicyParseError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7

    def test_parse_error_without_location(self):
        error = errors.PolicyParseError("no on clause")
        assert "line" not in str(error)
