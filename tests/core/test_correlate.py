"""Event correlation service: count, trend, and absence rules."""

import pytest

from repro.core.bus import EventBus
from repro.core.correlate import EventCorrelator
from repro.errors import ConfigurationError
from repro.matching.filters import Filter


@pytest.fixture
def setup(sim):
    bus = EventBus(sim)
    correlator = EventCorrelator(bus, sim)
    publisher = bus.local_publisher("sensor")
    composites = []
    bus.subscribe_local(Filter.for_type_prefix("smc.correlated."),
                        composites.append)
    return sim, bus, correlator, publisher, composites


class TestCountRule:
    def test_fires_at_count_within_window(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_count_rule("burst", Filter.where("health.hr.alarm"),
                                  count=3, window_s=10.0)
        for index in range(3):
            sim.call_later(index * 1.0,
                           lambda: publisher.publish("health.hr.alarm"))
        sim.run(5.0)
        assert len(composites) == 1
        event = composites[0]
        assert event.type == "smc.correlated.burst"
        assert event.get("count") == 3

    def test_does_not_fire_below_count(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_count_rule("burst", Filter.where("t"), count=5,
                                  window_s=10.0)
        for _ in range(4):
            publisher.publish("t")
        sim.run_until_idle()
        assert composites == []

    def test_window_expires_old_events(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_count_rule("burst", Filter.where("t"), count=3,
                                  window_s=2.0)
        # Three events, but spread over 6 seconds: never 3 in any 2 s.
        for index in range(3):
            sim.call_later(index * 3.0, lambda: publisher.publish("t"))
        sim.run(10.0)
        assert composites == []

    def test_cooldown_suppresses_refiring(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_count_rule("burst", Filter.where("t"), count=2,
                                  window_s=10.0, cooldown_s=10.0)
        for index in range(6):
            sim.call_later(index * 0.5, lambda: publisher.publish("t"))
        sim.run(5.0)
        assert len(composites) == 1

    def test_count_must_be_at_least_two(self, setup):
        sim, bus, correlator, publisher, composites = setup
        with pytest.raises(ConfigurationError):
            correlator.add_count_rule("bad", Filter.where("t"), count=1,
                                      window_s=1.0)


class TestTrendRule:
    def test_fires_when_mean_crosses_level(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_trend_rule("fever", Filter.where("health.temp"),
                                  attribute="celsius", level=38.0,
                                  window_s=100.0, min_samples=3)
        for index, temp in enumerate([37.0, 37.5, 38.0, 38.8, 39.5]):
            sim.call_later(index * 1.0,
                           lambda t=temp: publisher.publish(
                               "health.temp", {"celsius": t}))
        sim.run(10.0)
        assert len(composites) == 1
        assert composites[0].get("direction") == "rising"
        assert composites[0].get("mean") > 38.0

    def test_edge_triggered_not_level_triggered(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_trend_rule("fever", Filter.where("t"),
                                  attribute="v", level=10.0, window_s=100.0,
                                  min_samples=1)
        for index, value in enumerate([20.0, 21.0, 22.0]):   # stays above
            sim.call_later(index * 1.0,
                           lambda v=value: publisher.publish("t", {"v": v}))
        sim.run(10.0)
        assert len(composites) == 1          # one crossing, one event

    def test_rearms_after_falling_back(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_trend_rule("spike", Filter.where("t"),
                                  attribute="v", level=10.0, window_s=0.5,
                                  min_samples=1)
        values = [20.0, 1.0, 20.0]           # up, down, up again
        for index, value in enumerate(values):
            sim.call_later(index * 2.0,
                           lambda v=value: publisher.publish("t", {"v": v}))
        sim.run(10.0)
        assert len(composites) == 2

    def test_falling_direction(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_trend_rule("desat", Filter.where("health.spo2"),
                                  attribute="spo2", level=90.0,
                                  window_s=100.0, rising=False,
                                  min_samples=2)
        for index, spo2 in enumerate([97, 96, 78, 70]):
            sim.call_later(index * 1.0,
                           lambda v=spo2: publisher.publish(
                               "health.spo2", {"spo2": v}))
        sim.run(10.0)
        assert len(composites) == 1
        assert composites[0].get("direction") == "falling"

    def test_non_numeric_values_ignored(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_trend_rule("r", Filter.where("t"), attribute="v",
                                  level=1.0, window_s=10.0, min_samples=1)
        publisher.publish("t", {"v": "not-a-number"})
        publisher.publish("t", {"v": True})     # bool excluded too
        publisher.publish("t", {})
        sim.run_until_idle()
        assert composites == []


class TestAbsenceRule:
    def test_fires_on_silence(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_absence_rule("watchdog", Filter.where("health.hr"),
                                    timeout_s=5.0)
        sim.run(6.0)
        assert len(composites) >= 1
        assert composites[0].get("silent_for_s") >= 5.0

    def test_does_not_fire_while_events_flow(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_absence_rule("watchdog", Filter.where("t"),
                                    timeout_s=5.0)
        timer = sim.every(1.0, lambda: publisher.publish("t"))
        sim.run(20.0)
        assert composites == []
        timer.cancel()

    def test_fires_repeatedly_during_long_silence(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_absence_rule("watchdog", Filter.where("t"),
                                    timeout_s=3.0)
        sim.run(14.0)
        assert len(composites) >= 3

    def test_resumes_quiet_after_event(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_absence_rule("watchdog", Filter.where("t"),
                                    timeout_s=5.0)
        sim.run(6.0)
        fired_during_silence = len(composites)
        assert fired_during_silence >= 1
        timer = sim.every(1.0, lambda: publisher.publish("t"))
        sim.run(20.0)
        assert len(composites) == fired_during_silence
        timer.cancel()


class TestRuleManagement:
    def test_duplicate_name_rejected(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_count_rule("r", Filter.where("t"), count=2,
                                  window_s=1.0)
        with pytest.raises(ConfigurationError):
            correlator.add_trend_rule("r", Filter.where("t"), attribute="v",
                                      level=1.0, window_s=1.0)

    def test_remove_rule_stops_it(self, setup):
        sim, bus, correlator, publisher, composites = setup
        correlator.add_count_rule("r", Filter.where("t"), count=2,
                                  window_s=10.0)
        correlator.remove_rule("r")
        publisher.publish("t")
        publisher.publish("t")
        sim.run_until_idle()
        assert composites == []
        assert correlator.rules() == []

    def test_remove_unknown_rejected(self, setup):
        sim, bus, correlator, publisher, composites = setup
        with pytest.raises(ConfigurationError):
            correlator.remove_rule("ghost")

    def test_custom_emit_type(self, setup):
        sim, bus, correlator, publisher, composites = setup
        alarms = []
        bus.subscribe_local(Filter.where("health.hr.episode"), alarms.append)
        correlator.add_count_rule("ep", Filter.where("health.hr"),
                                  count=2, window_s=10.0,
                                  emit_type="health.hr.episode")
        publisher.publish("health.hr")
        publisher.publish("health.hr")
        sim.run(1.0)
        assert len(alarms) == 1

    def test_composite_feeds_policy_chain(self, setup):
        # Correlator output is an ordinary event: a second rule (or a
        # policy) can consume it.
        sim, bus, correlator, publisher, composites = setup
        from repro.policy.engine import PolicyEngine
        from repro.policy.model import ActionSpec, ObligationPolicy
        engine = PolicyEngine(bus)
        notified = []
        engine.executor.register_handler(
            "notify", lambda target, params: notified.append(params))
        engine.add_obligation(ObligationPolicy(
            name="EpisodeAlert",
            event_filter=Filter.where("smc.correlated.burst"),
            actions=(ActionSpec("notify"),)))
        correlator.add_count_rule("burst", Filter.where("health.hr.alarm"),
                                  count=2, window_s=10.0)
        publisher.publish("health.hr.alarm")
        publisher.publish("health.hr.alarm")
        sim.run(1.0)
        assert len(notified) == 1
