"""Proxies and the bootstrap mechanism (paper Sections III-B, III-C)."""

import pytest

from repro.core import protocol
from repro.core.events import Event
from repro.core.protocol import BusOp
from repro.core.proxies import SensorProxy, ServiceProxy
from repro.devices.protocols import HeartRateProtocol
from repro.errors import ConfigurationError
from repro.ids import service_id_from_name
from repro.matching.filters import Filter


class TestBootstrap:
    def test_new_member_event_creates_proxy(self, kit):
        endpoint = kit.device_endpoint("dev")
        member = kit.admit(endpoint)
        assert kit.bus.is_member(member)
        assert kit.bootstrap.stats.proxies_created == 1
        assert isinstance(kit.bus.proxy_of(member), ServiceProxy)

    def test_registered_translator_selects_sensor_proxy(self, kit):
        kit.bootstrap.register_translator(HeartRateProtocol("p-1"))
        endpoint = kit.device_endpoint("hr")
        member = kit.admit(endpoint, device_type="sensor.hr")
        proxy = kit.bus.proxy_of(member)
        assert isinstance(proxy, SensorProxy)
        assert proxy.device_type == "sensor.hr"

    def test_duplicate_translator_rejected(self, kit):
        kit.bootstrap.register_translator(HeartRateProtocol("p-1"))
        with pytest.raises(ConfigurationError):
            kit.bootstrap.register_translator(HeartRateProtocol("p-2"))

    def test_duplicate_new_member_event_is_idempotent(self, kit):
        endpoint = kit.device_endpoint("dev")
        kit.admit(endpoint)
        kit.admit(endpoint)          # duplicate event
        assert kit.bootstrap.stats.proxies_created == 1

    def test_unknown_device_type_uses_default_factory(self, kit):
        endpoint = kit.device_endpoint("strange")
        member = kit.admit(endpoint, device_type="gadget.v9")
        assert isinstance(kit.bus.proxy_of(member), ServiceProxy)

    def test_malformed_member_event_counted(self, kit):
        kit.discovery.publish("smc.member.new", {"member": "not-an-int",
                                                 "name": "x"})
        kit.sim.run_until_idle()
        assert kit.bootstrap.stats.creation_failures == 1

    def test_payload_from_nonmember_dropped(self, kit, sim):
        endpoint = kit.device_endpoint("stranger")
        endpoint.send_reliable("core", protocol.frame(BusOp.PUBLISH, b""))
        sim.run_until_idle()
        assert kit.bootstrap.stats.payloads_from_nonmembers == 1
        assert kit.bus.stats.from_unknown_member == 1

    def test_address_parsing(self):
        from repro.core.bootstrap import _parse_address, format_address
        assert _parse_address("10.0.0.1:8080") == ("10.0.0.1", 8080)
        assert _parse_address("node-name") == "node-name"
        assert format_address(("10.0.0.1", 8080)) == "10.0.0.1:8080"
        assert format_address("node-name") == "node-name"


class TestServiceProxyFlow:
    def test_publish_through_proxy(self, kit, sim):
        got = []
        kit.bus.subscribe_local(Filter.where("t"), got.append)
        client = kit.client("dev")
        client.publish("t", {"v": 7})
        sim.run_until_idle()
        assert [e.get("v") for e in got] == [7]
        proxy = kit.bus.proxy_of(client.service_id)
        assert proxy.stats.events_published == 1

    def test_subscribe_and_deliver_through_proxy(self, kit, sim):
        client = kit.client("dev")
        got = []
        client.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()
        kit.bus.local_publisher("svc").publish("t", {"v": 1})
        sim.run_until_idle()
        assert [e.get("v") for e in got] == [1]

    def test_unsubscribe_through_proxy(self, kit, sim):
        client = kit.client("dev")
        got = []
        sub_id = client.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()
        client.unsubscribe(sub_id)
        sim.run_until_idle()
        kit.bus.local_publisher("svc").publish("t")
        sim.run_until_idle()
        assert got == []
        assert kit.bus.subscriptions_of(client.service_id) == set()

    def test_member_delivered_once_despite_overlapping_subs(self, kit, sim):
        client = kit.client("dev")
        got = []
        client.subscribe(Filter.where("t"), got.append)
        client.subscribe(Filter.for_type_prefix("t"), got.append)
        sim.run_until_idle()
        kit.bus.local_publisher("svc").publish("t")
        sim.run_until_idle()
        # The bus sends the event to the member once; the client dispatches
        # it to both matching callbacks.
        assert kit.bus.proxy_of(client.service_id).stats.events_delivered == 1
        assert len(got) == 2
        assert client.stats.delivered == 1

    def test_malformed_payload_counted(self, kit, sim):
        endpoint = kit.device_endpoint("dev")
        member = kit.admit(endpoint)
        endpoint.send_reliable("core", b"\xff garbage")
        sim.run_until_idle()
        assert kit.bus.proxy_of(member).stats.malformed_payloads == 1

    def test_reused_client_sub_id_counted_malformed(self, kit, sim):
        from repro.matching.filters import Subscription, encode_subscription
        endpoint = kit.device_endpoint("dev")
        member = kit.admit(endpoint)
        sub = Subscription(1, endpoint.service_id, [Filter.where("t")])
        frame = protocol.frame(BusOp.SUBSCRIBE, encode_subscription(sub))
        endpoint.send_reliable("core", frame)
        endpoint.send_reliable("core", frame)
        sim.run_until_idle()
        assert kit.bus.proxy_of(member).stats.malformed_payloads == 1
        assert len(kit.bus.subscriptions_of(member)) == 1


class TestPurgeSelfDestruct:
    def test_purge_destroys_proxy_and_membership(self, kit, sim):
        client = kit.client("dev")
        member = client.service_id
        proxy = kit.bus.proxy_of(member)
        kit.purge(member)
        assert proxy.destroyed
        assert not kit.bus.is_member(member)

    def test_purge_removes_subscriptions(self, kit, sim):
        client = kit.client("dev")
        client.subscribe(Filter.where("t"), lambda e: None)
        sim.run_until_idle()
        assert kit.bus.stats.subscriptions_active >= 1
        kit.purge(client.service_id)
        assert kit.bus.subscriptions_of(client.service_id) == set()

    def test_purge_drops_queued_events(self, kit, sim, hub):
        client = kit.client("dev")
        client.subscribe(Filter.where("t"), lambda e: None)
        sim.run_until_idle()
        # Cut the device off, queue events for it, then purge.
        hub.drop_filter = lambda src, dest, data: dest != "dev"
        publisher = kit.bus.local_publisher("svc")
        for _ in range(5):
            publisher.publish("t")
        sim.run(2.0)
        proxy = kit.bus.proxy_of(client.service_id)
        kit.purge(client.service_id)
        assert proxy.stats.dropped_on_destroy >= 4
        # Nothing arrives even after the partition heals.
        hub.drop_filter = None
        before = client.stats.delivered
        sim.run(10.0)
        assert client.stats.delivered == before

    def test_purge_of_other_member_leaves_proxy_alone(self, kit, sim):
        client_a = kit.client("dev-a")
        client_b = kit.client("dev-b")
        kit.purge(client_a.service_id)
        assert not kit.bus.is_member(client_a.service_id)
        assert kit.bus.is_member(client_b.service_id)

    def test_destroy_is_idempotent(self, kit):
        client = kit.client("dev")
        proxy = kit.bus.proxy_of(client.service_id)
        proxy.destroy()
        proxy.destroy()
        assert not kit.bus.is_member(client.service_id)


class TestSensorProxyTranslation:
    def make_sensor(self, kit, forward_acks=False):
        kit.bootstrap.register_translator(HeartRateProtocol("p-1"),
                                          forward_acks=forward_acks)
        endpoint = kit.device_endpoint("hr")
        member = kit.admit(endpoint, device_type="sensor.hr")
        return endpoint, member

    def test_reading_translated_to_event(self, kit, sim):
        endpoint, member = self.make_sensor(kit)
        got = []
        kit.bus.subscribe_local(Filter.where("health.hr"), got.append)
        reading = HeartRateProtocol("p-1").encode_reading(141.5, alarm=True)
        endpoint.send_reliable("core",
                               protocol.frame(BusOp.DEVICE_DATA, reading))
        sim.run_until_idle()
        assert len(got) == 1
        event = got[0]
        assert event.get("hr") == 141.5
        assert event.get("alarm") is True
        assert event.get("patient") == "p-1"
        assert event.sender == member        # stamped as the device

    def test_proxy_assigns_monotonic_seqnos(self, kit, sim):
        endpoint, member = self.make_sensor(kit)
        got = []
        kit.bus.subscribe_local(Filter.where("health.hr"), got.append)
        proto = HeartRateProtocol("p-1")
        for bpm in (60.0, 61.0, 62.0):
            endpoint.send_reliable("core", protocol.frame(
                BusOp.DEVICE_DATA, proto.encode_reading(bpm)))
        sim.run_until_idle()
        assert [e.seqno for e in got] == [1, 2, 3]

    def test_corrupt_reading_dropped(self, kit, sim):
        endpoint, member = self.make_sensor(kit)
        endpoint.send_reliable("core", protocol.frame(
            BusOp.DEVICE_DATA, b"\x48\x01\xff\xff"))
        sim.run_until_idle()
        proxy = kit.bus.proxy_of(member)
        assert proxy.stats.malformed_payloads == 1
        assert proxy.stats.readings_translated == 0

    def test_command_event_translated_to_device_bytes(self, kit, sim):
        endpoint, member = self.make_sensor(kit)
        got = []
        endpoint.set_payload_handler(lambda peer, data: got.append(data))
        # The proxy auto-subscribed for set_threshold commands.
        kit.bus.local_publisher("policy").publish(
            "smc.cmd.set_threshold", {"target": "monitor", "value": 130})
        sim.run_until_idle()
        assert len(got) == 1
        op, body = protocol.unframe(got[0])
        assert op == BusOp.DEVICE_CMD
        decoded = HeartRateProtocol("p-1").decode_command(body)
        assert decoded == ("set_threshold", 130.0)

    def test_untranslatable_command_dropped_silently(self, kit, sim):
        endpoint, member = self.make_sensor(kit)
        got = []
        endpoint.set_payload_handler(lambda peer, data: got.append(data))
        kit.bus.local_publisher("policy").publish(
            "smc.cmd.set_threshold", {"target": "monitor",
                                      "value": "not-a-number"})
        sim.run_until_idle()
        assert got == []

    def test_ack_forwarded_when_configured(self, kit, sim):
        endpoint, member = self.make_sensor(kit, forward_acks=True)
        got = []
        endpoint.set_payload_handler(lambda peer, data: got.append(data))
        proto = HeartRateProtocol("p-1")
        endpoint.send_reliable("core", protocol.frame(
            BusOp.DEVICE_DATA, proto.encode_reading(70.0)))
        sim.run_until_idle()
        acks = [data for data in got
                if protocol.unframe(data)[0] == BusOp.DEVICE_CMD
                and proto.is_ack(protocol.unframe(data)[1])]
        assert len(acks) == 1

    def test_no_ack_by_default(self, kit, sim):
        endpoint, member = self.make_sensor(kit, forward_acks=False)
        got = []
        endpoint.set_payload_handler(lambda peer, data: got.append(data))
        endpoint.send_reliable("core", protocol.frame(
            BusOp.DEVICE_DATA,
            HeartRateProtocol("p-1").encode_reading(70.0)))
        sim.run_until_idle()
        assert got == []


class TestProtocolFrames:
    def test_frame_unframe(self):
        framed = protocol.frame(BusOp.PUBLISH, b"body")
        assert protocol.unframe(framed) == (BusOp.PUBLISH, b"body")

    def test_empty_payload_rejected(self):
        from repro.errors import CodecError
        with pytest.raises(CodecError):
            protocol.unframe(b"")

    def test_unknown_opcode_rejected(self):
        from repro.errors import CodecError
        with pytest.raises(CodecError):
            protocol.unframe(b"\xee")

    def test_quench_frames(self):
        assert protocol.parse_quench(
            protocol.unframe(protocol.frame_quench(True))[1]) is True
        assert protocol.parse_quench(
            protocol.unframe(protocol.frame_quench(False))[1]) is False

    def test_unsubscribe_frame(self):
        framed = protocol.frame_unsubscribe(77)
        op, body = protocol.unframe(framed)
        assert op == BusOp.UNSUBSCRIBE
        assert protocol.parse_unsubscribe(body) == 77

    def test_trailing_bytes_rejected(self):
        from repro.errors import CodecError
        with pytest.raises(CodecError):
            protocol.parse_unsubscribe(b"\x05extra")


class TestBatchFrames:
    def test_batch_roundtrip(self):
        frames = [protocol.frame(BusOp.PUBLISH, b"a"),
                  protocol.frame(BusOp.SUBSCRIBE, b"bb")]
        payload = protocol.frame_batch(frames)
        op, body = protocol.unframe(payload)
        assert op == BusOp.BATCH
        assert protocol.parse_batch(body) == frames

    def test_chunk_single_frame_unwrapped(self):
        frame = protocol.frame(BusOp.PUBLISH, b"solo")
        assert protocol.chunk_frames([frame]) == [frame]

    def test_chunk_many_small_frames_one_payload(self):
        frames = [protocol.frame(BusOp.PUBLISH, bytes([i])) for i in range(20)]
        payloads = protocol.chunk_frames(frames)
        assert len(payloads) == 1
        assert protocol.parse_batch(protocol.unframe(payloads[0])[1]) == frames

    def test_chunk_respects_flush_cap(self):
        frames = [protocol.frame(BusOp.PUBLISH, b"x" * 100) for _ in range(10)]
        payloads = protocol.chunk_frames(frames, max_bytes=250)
        assert len(payloads) > 1
        reassembled = []
        for payload in payloads:
            op, body = protocol.unframe(payload)
            if op == BusOp.BATCH:
                reassembled.extend(protocol.parse_batch(body))
            else:
                reassembled.append(payload)
        assert reassembled == frames

    def test_oversized_frame_passes_alone(self):
        big = protocol.frame(BusOp.PUBLISH, b"y" * 500)
        small = protocol.frame(BusOp.PUBLISH, b"z")
        payloads = protocol.chunk_frames([big, small], max_bytes=100)
        assert payloads[0] == big          # unwrapped, by itself

    def test_count_publications(self):
        publish = protocol.frame(BusOp.PUBLISH, b"e")
        other = protocol.frame(BusOp.SUBSCRIBE, b"s")
        assert protocol.count_publications(publish) == 1
        assert protocol.count_publications(other) == 0
        assert protocol.count_publications(
            protocol.frame_batch([publish, other, publish])) == 2
        assert protocol.count_publications(b"") == 0

    def test_member_batch_of_publishes_uses_bus_batch_path(self, kit, sim):
        from repro.core.events import Event, encode_event
        got = []
        kit.bus.subscribe_local(Filter.where("t"), got.append)
        endpoint = kit.device_endpoint("dev")
        member = kit.admit(endpoint)
        frames = [protocol.frame(BusOp.PUBLISH, encode_event(
            Event("t", {"n": i}, endpoint.service_id, i + 1, 0.0)))
            for i in range(5)]
        endpoint.send_reliable("core", protocol.frame_batch(frames))
        sim.run_until_idle()
        assert [e.get("n") for e in got] == list(range(5))
        proxy = kit.bus.proxy_of(member)
        assert proxy.stats.batches_received == 1
        assert proxy.stats.events_published == 5

    def test_nested_batch_counted_malformed(self, kit, sim):
        endpoint = kit.device_endpoint("dev")
        member = kit.admit(endpoint)
        inner = protocol.frame_batch([protocol.frame(BusOp.PUBLISH, b"")])
        endpoint.send_reliable("core", protocol.frame_batch([inner]))
        sim.run_until_idle()
        assert kit.bus.proxy_of(member).stats.malformed_payloads == 1


class TestFanOutEncodeMemo:
    """PR 5: dispatch TLV-encodes each matched event exactly once however
    many proxies the fan-out reaches (the DeliverMemo), and the shared
    payload is byte-identical to the per-proxy encoding it replaced."""

    def count_encodes(self, monkeypatch):
        """Count every event framing through the protocol layer."""
        counter = {"n": 0}
        real = protocol.event_frame_parts

        def counting(op, event):
            counter["n"] += 1
            return real(op, event)

        monkeypatch.setattr(protocol, "event_frame_parts", counting)
        return counter

    def fan_out(self, kit, n):
        clients, inboxes = [], []
        for i in range(n):
            client = kit.client(f"sub-{i}")
            got = []
            client.subscribe(Filter.where("t"), got.append)
            clients.append(client)
            inboxes.append(got)
        kit.sim.run_until_idle()
        return clients, inboxes

    def test_single_event_encoded_once_for_n_proxies(self, kit, sim,
                                                     monkeypatch):
        _, inboxes = self.fan_out(kit, 8)
        counter = self.count_encodes(monkeypatch)
        kit.bus.local_publisher("svc").publish("t", {"v": 1})
        sim.run_until_idle()
        assert all(len(got) == 1 for got in inboxes)
        assert all(got[0].get("v") == 1 for got in inboxes)
        assert counter["n"] == 1      # one TLV encode for 8 subscribers

    def test_batch_encoded_once_per_event(self, kit, sim, monkeypatch):
        _, inboxes = self.fan_out(kit, 5)
        counter = self.count_encodes(monkeypatch)
        kit.bus.local_publisher("svc").publish_batch(
            [("t", {"n": i}) for i in range(7)])
        sim.run_until_idle()
        assert all([e.get("n") for e in got] == list(range(7))
                   for got in inboxes)
        assert counter["n"] == 7      # once per event, not per subscriber

    def test_translating_proxy_still_encodes_per_member(self, kit, sim,
                                                        monkeypatch):
        # A SensorProxy's outbound bytes are per-device translations; the
        # memo must not short-circuit them.
        kit.bootstrap.register_translator(HeartRateProtocol("p-1"))
        endpoint = kit.device_endpoint("hr-dev")
        member = kit.admit(endpoint, name="hr", device_type="sensor.hr")
        proxy = kit.bus.proxy_of(member)
        assert proxy.shared_outbound is False
        counter = self.count_encodes(monkeypatch)
        kit.bus.local_publisher("svc").publish(
            "smc.cmd.set_threshold", {"value": 80})
        sim.run_until_idle()
        assert proxy.stats.commands_translated == 1
        assert counter["n"] == 0      # translated, not DELIVER-framed
