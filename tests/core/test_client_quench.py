"""BusClient behaviour and quenching end to end."""

import pytest

from repro.core.quench import QuenchController
from repro.errors import SubscriptionNotFoundError, TransportError
from repro.matching.filters import Filter


class TestClient:
    def test_publish_returns_stamped_event(self, kit):
        client = kit.client("dev")
        event = client.publish("t", {"v": 1})
        assert event.sender == client.service_id
        assert event.seqno == 1

    def test_seqnos_increase(self, kit):
        client = kit.client("dev")
        events = [client.publish("t") for _ in range(3)]
        assert [e.seqno for e in events] == [1, 2, 3]

    def test_disconnected_publish_dropped(self, kit):
        client = kit.client("dev")
        client.bus_address = None
        assert client.publish("t") is None
        assert client.stats.publishes_disconnected == 1

    def test_disconnected_subscribe_raises(self, kit):
        client = kit.client("dev")
        client.bus_address = None
        with pytest.raises(TransportError):
            client.subscribe(Filter.where("t"), lambda e: None)

    def test_unsubscribe_unknown_raises(self, kit):
        client = kit.client("dev")
        with pytest.raises(SubscriptionNotFoundError):
            client.unsubscribe(9)

    def test_duplicate_deliveries_suppressed(self, kit, sim):
        # Two clients; the publisher's event reaches the subscriber once
        # even if the network retransmits (forced by dropping acks).
        subscriber = kit.client("sub")
        publisher = kit.client("pub")
        got = []
        subscriber.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()

        from repro.transport.packets import Packet, PacketType
        dropped = [0]

        def drop_one_subscriber_ack(src, dest, data):
            if src == "sub" and dropped[0] == 0:
                packet = Packet.decode(data)
                if packet.type == PacketType.ACK:
                    dropped[0] += 1
                    return False
            return True

        kit.hub.drop_filter = drop_one_subscriber_ack
        publisher.publish("t", {"v": 1})
        sim.run(10.0)
        assert len(got) == 1
        assert subscriber.stats.delivered == 1

    def test_resubscribe_all(self, kit, sim):
        client = kit.client("dev")
        got = []
        client.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()
        # Simulate purge + re-admission: new proxy, empty subscriptions.
        member = client.service_id
        kit.purge(member)
        kit.admit(client.endpoint, name="dev")
        client.endpoint.reset_channel_to("core")
        client.resubscribe_all()
        sim.run_until_idle()
        kit.bus.local_publisher("svc").publish("t", {"v": 2})
        sim.run_until_idle()
        assert [e.get("v") for e in got] == [2]


class TestQuench:
    def make_quenched_setup(self, kit, sim):
        controller = QuenchController(kit.bus)
        publisher = kit.client("pub")
        publisher.advertise(Filter.where("bench.data"))
        sim.run_until_idle()
        return controller, publisher

    def test_unobserved_publisher_quenched(self, kit, sim):
        controller, publisher = self.make_quenched_setup(kit, sim)
        assert controller.is_quenched(publisher.service_id)
        assert publisher.quenched
        assert publisher.publish("bench.data") is None
        assert publisher.stats.publishes_quenched == 1

    def test_overlapping_subscription_wakes_publisher(self, kit, sim):
        controller, publisher = self.make_quenched_setup(kit, sim)
        got = []
        kit.bus.subscribe_local(Filter.where("bench.data"), got.append)
        sim.run_until_idle()
        assert not publisher.quenched
        publisher.publish("bench.data", {"v": 1})
        sim.run_until_idle()
        assert len(got) == 1

    def test_non_overlapping_subscription_keeps_quench(self, kit, sim):
        controller, publisher = self.make_quenched_setup(kit, sim)
        kit.bus.subscribe_local(Filter.where("different.topic"),
                                lambda e: None)
        sim.run_until_idle()
        assert publisher.quenched

    def test_unsubscribe_requenches(self, kit, sim):
        controller, publisher = self.make_quenched_setup(kit, sim)
        sub_id = kit.bus.subscribe_local(Filter.where("bench.data"),
                                         lambda e: None)
        sim.run_until_idle()
        assert not publisher.quenched
        kit.bus.unsubscribe_local(sub_id)
        sim.run_until_idle()
        assert publisher.quenched

    def test_ignore_quench_for_alarms(self, kit, sim):
        controller, publisher = self.make_quenched_setup(kit, sim)
        got = []
        # Nobody subscribed, but an alarm must still go out when forced.
        assert publisher.publish("bench.data", {"sev": 3},
                                 ignore_quench=True) is not None

    def test_quench_change_callback(self, kit, sim):
        controller = QuenchController(kit.bus)
        publisher = kit.client("pub")
        states = []
        publisher.on_quench_change = states.append
        publisher.advertise(Filter.where("bench.data"))
        sim.run_until_idle()
        kit.bus.subscribe_local(Filter.where("bench.data"), lambda e: None)
        sim.run_until_idle()
        assert states == [True, False]

    def test_withdraw_wakes_quenched_publisher(self, kit, sim):
        # Regression: withdraw_advertisement used to drop the member from
        # the quenched set without ever sending the wake, leaving the
        # publisher muted forever with currently_quenched misreporting.
        controller, publisher = self.make_quenched_setup(kit, sim)
        assert publisher.quenched
        wakes = controller.stats.wake_messages_sent
        controller.withdraw_advertisement(publisher.service_id)
        sim.run_until_idle()
        assert not publisher.quenched            # wake advisory delivered
        assert controller.stats.wake_messages_sent == wakes + 1
        assert controller.stats.currently_quenched == 0
        # The publisher can actually publish again.
        assert publisher.publish("bench.data", {"v": 1}) is not None

    def test_readvertise_after_withdraw_requenches_cleanly(self, kit, sim):
        # The wake on withdrawal resets the handshake, so a fresh
        # advertisement with no interested subscribers re-quenches from a
        # consistent state instead of silently staying muted.
        controller, publisher = self.make_quenched_setup(kit, sim)
        controller.withdraw_advertisement(publisher.service_id)
        sim.run_until_idle()
        assert not publisher.quenched
        publisher.advertise(Filter.where("bench.data"))
        sim.run_until_idle()
        assert publisher.quenched
        assert controller.stats.currently_quenched == 1

    def test_withdraw_unquenched_member_sends_nothing(self, kit, sim):
        controller = QuenchController(kit.bus)
        publisher = kit.client("pub")
        kit.bus.subscribe_local(Filter.where("bench.data"), lambda e: None)
        publisher.advertise(Filter.where("bench.data"))
        sim.run_until_idle()
        assert not publisher.quenched
        sent = (controller.stats.wake_messages_sent,
                controller.stats.quench_messages_sent)
        controller.withdraw_advertisement(publisher.service_id)
        sim.run_until_idle()
        assert (controller.stats.wake_messages_sent,
                controller.stats.quench_messages_sent) == sent

    def test_purged_member_advertisement_withdrawn(self, kit, sim):
        controller = QuenchController(kit.bus)
        publisher = kit.client("pub")
        publisher.advertise(Filter.where("bench.data"))
        sim.run_until_idle()
        assert controller.stats.currently_quenched == 1
        kit.purge(publisher.service_id)
        kit.bus.subscribe_local(Filter.where("x"), lambda e: None)
        sim.run_until_idle()
        assert controller.stats.currently_quenched == 0
