"""The event bus semantics layer, against local subscribers."""

import pytest

from repro.core.bus import EventBus
from repro.core.events import Event
from repro.errors import BusError, NotAMemberError, SubscriptionNotFoundError
from repro.ids import service_id_from_name
from repro.matching.engine import make_engine
from repro.matching.filters import Filter

SENDER = service_id_from_name("pub")


@pytest.fixture(params=["forwarding", "siena", "brute"])
def bus(sim, request):
    return EventBus(sim, make_engine(request.param))


class TestLocalPubSub:
    def test_delivery(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        publisher = bus.local_publisher("svc")
        publisher.publish("t", {"v": 1})
        sim.run_until_idle()
        assert [e.get("v") for e in got] == [1]

    def test_no_subscribers_counts_unmatched(self, sim, bus):
        bus.local_publisher("svc").publish("nobody.cares")
        sim.run_until_idle()
        assert bus.stats.unmatched == 1

    def test_callbacks_run_async_not_inline(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        bus.local_publisher("svc").publish("t")
        assert got == []                  # not yet: scheduled, not inline
        sim.run_until_idle()
        assert len(got) == 1

    def test_per_sender_fifo_order(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), lambda e: got.append(e.seqno))
        publisher = bus.local_publisher("svc")
        for _ in range(20):
            publisher.publish("t")
        sim.run_until_idle()
        assert got == list(range(1, 21))

    def test_multiple_local_subscribers_each_get_event(self, sim, bus):
        got_a, got_b = [], []
        bus.subscribe_local(Filter.where("t"), got_a.append)
        bus.subscribe_local(Filter.where("t"), got_b.append)
        bus.local_publisher("svc").publish("t")
        sim.run_until_idle()
        assert len(got_a) == len(got_b) == 1

    def test_unsubscribe_local(self, sim, bus):
        got = []
        sub_id = bus.subscribe_local(Filter.where("t"), got.append)
        bus.unsubscribe_local(sub_id)
        bus.local_publisher("svc").publish("t")
        sim.run_until_idle()
        assert got == []

    def test_unsubscribe_unknown_raises(self, bus):
        with pytest.raises(SubscriptionNotFoundError):
            bus.unsubscribe_local(99)

    def test_duplicate_suppression_by_watermark(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        event = Event("t", {}, SENDER, 5, 0.0)
        assert bus.publish(event) is True
        assert bus.publish(event) is False       # same (sender, seqno)
        sim.run_until_idle()
        assert len(got) == 1
        assert bus.stats.duplicates_dropped == 1

    def test_old_seqno_suppressed(self, sim, bus):
        bus.publish(Event("t", {}, SENDER, 10, 0.0))
        assert bus.publish(Event("t", {}, SENDER, 3, 0.0)) is False

    def test_independent_watermarks_per_sender(self, sim, bus):
        other = service_id_from_name("other")
        assert bus.publish(Event("t", {}, SENDER, 5, 0.0))
        assert bus.publish(Event("t", {}, other, 5, 0.0))

    def test_local_publisher_seqnos_monotonic(self, bus):
        publisher = bus.local_publisher("svc")
        first = publisher.publish("t")
        second = publisher.publish("t")
        assert second.seqno == first.seqno + 1

    def test_stats_track_subscriptions(self, bus):
        sub_id = bus.subscribe_local(Filter.where("t"), lambda e: None)
        assert bus.stats.subscriptions_active == 1
        bus.unsubscribe_local(sub_id)
        assert bus.stats.subscriptions_active == 0


class TestMembership:
    def test_proxy_required_for_member_subscription(self, bus):
        with pytest.raises(NotAMemberError):
            bus.subscribe_member(service_id_from_name("ghost"),
                                 [Filter.where("t")])

    def test_proxy_of_unknown_raises(self, bus):
        with pytest.raises(NotAMemberError):
            bus.proxy_of(service_id_from_name("ghost"))

    def test_unregister_clears_watermark(self, sim, bus):
        # After a purge, a re-admitted device restarts its seqnos; the bus
        # must accept them (exactly-once is scoped to one membership).
        bus.publish(Event("t", {}, SENDER, 50, 0.0))
        bus.unregister_member(SENDER)
        assert bus.publish(Event("t", {}, SENDER, 1, 0.0)) is True

    def test_unsubscribe_member_ownership_checked(self, sim, bus):
        got = []
        sub_id = bus.subscribe_local(Filter.where("t"), got.append)
        with pytest.raises(BusError):
            bus.unsubscribe_member(service_id_from_name("x"), sub_id)
