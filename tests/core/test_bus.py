"""The event bus semantics layer, against local subscribers."""

import pytest

from repro.core.bus import EventBus
from repro.core.events import Event
from repro.errors import BusError, NotAMemberError, SubscriptionNotFoundError
from repro.ids import service_id_from_name
from repro.matching.engine import make_engine
from repro.matching.filters import Filter

SENDER = service_id_from_name("pub")


@pytest.fixture(params=["forwarding", "siena", "brute"])
def bus(sim, request):
    return EventBus(sim, make_engine(request.param))


class TestLocalPubSub:
    def test_delivery(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        publisher = bus.local_publisher("svc")
        publisher.publish("t", {"v": 1})
        sim.run_until_idle()
        assert [e.get("v") for e in got] == [1]

    def test_no_subscribers_counts_unmatched(self, sim, bus):
        bus.local_publisher("svc").publish("nobody.cares")
        sim.run_until_idle()
        assert bus.stats.unmatched == 1

    def test_callbacks_run_async_not_inline(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        bus.local_publisher("svc").publish("t")
        assert got == []                  # not yet: scheduled, not inline
        sim.run_until_idle()
        assert len(got) == 1

    def test_per_sender_fifo_order(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), lambda e: got.append(e.seqno))
        publisher = bus.local_publisher("svc")
        for _ in range(20):
            publisher.publish("t")
        sim.run_until_idle()
        assert got == list(range(1, 21))

    def test_multiple_local_subscribers_each_get_event(self, sim, bus):
        got_a, got_b = [], []
        bus.subscribe_local(Filter.where("t"), got_a.append)
        bus.subscribe_local(Filter.where("t"), got_b.append)
        bus.local_publisher("svc").publish("t")
        sim.run_until_idle()
        assert len(got_a) == len(got_b) == 1

    def test_unsubscribe_local(self, sim, bus):
        got = []
        sub_id = bus.subscribe_local(Filter.where("t"), got.append)
        bus.unsubscribe_local(sub_id)
        bus.local_publisher("svc").publish("t")
        sim.run_until_idle()
        assert got == []

    def test_unsubscribe_unknown_raises(self, bus):
        with pytest.raises(SubscriptionNotFoundError):
            bus.unsubscribe_local(99)

    def test_duplicate_suppression_by_watermark(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        event = Event("t", {}, SENDER, 5, 0.0)
        assert bus.publish(event) is True
        assert bus.publish(event) is False       # same (sender, seqno)
        sim.run_until_idle()
        assert len(got) == 1
        assert bus.stats.duplicates_dropped == 1

    def test_old_seqno_suppressed(self, sim, bus):
        bus.publish(Event("t", {}, SENDER, 10, 0.0))
        assert bus.publish(Event("t", {}, SENDER, 3, 0.0)) is False

    def test_independent_watermarks_per_sender(self, sim, bus):
        other = service_id_from_name("other")
        assert bus.publish(Event("t", {}, SENDER, 5, 0.0))
        assert bus.publish(Event("t", {}, other, 5, 0.0))

    def test_local_publisher_seqnos_monotonic(self, bus):
        publisher = bus.local_publisher("svc")
        first = publisher.publish("t")
        second = publisher.publish("t")
        assert second.seqno == first.seqno + 1

    def test_stats_track_subscriptions(self, bus):
        sub_id = bus.subscribe_local(Filter.where("t"), lambda e: None)
        assert bus.stats.subscriptions_active == 1
        bus.unsubscribe_local(sub_id)
        assert bus.stats.subscriptions_active == 0


class TestBatchPublish:
    """publish_batch must be observably equivalent to per-event publish."""

    def test_batch_delivery_and_order(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        publisher = bus.local_publisher("svc")
        publisher.publish_batch([("t", {"n": i}) for i in range(10)])
        sim.run_until_idle()
        assert [e.get("n") for e in got] == list(range(10))
        assert [e.seqno for e in got] == list(range(1, 11))

    def test_batch_callbacks_run_async_not_inline(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        bus.local_publisher("svc").publish_batch([("t", {}), ("t", {})])
        assert got == []                  # scheduled, not inline
        sim.run_until_idle()
        assert len(got) == 2

    def test_batch_mixed_matches(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        publisher = bus.local_publisher("svc")
        publisher.publish_batch([("t", {"n": 0}), ("u", {"n": 1}),
                                 ("t", {"n": 2})])
        sim.run_until_idle()
        assert [e.get("n") for e in got] == [0, 2]
        assert bus.stats.matched == 2
        assert bus.stats.unmatched == 1

    def test_batch_duplicate_suppression(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        events = [Event("t", {"n": i}, SENDER, i + 1, 0.0) for i in range(4)]
        assert bus.publish_batch(events) == 4
        assert bus.publish_batch(events) == 0        # all duplicates
        sim.run_until_idle()
        assert len(got) == 4
        assert bus.stats.duplicates_dropped == 4

    def test_batch_dedup_inside_one_batch(self, sim, bus):
        event = Event("t", {}, SENDER, 3, 0.0)
        assert bus.publish_batch([event, event]) == 1
        assert bus.stats.duplicates_dropped == 1

    def test_batch_overlapping_subs_deliver_once_per_component(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        bus.subscribe_local(Filter.for_type_prefix("t"), got.append)
        bus.local_publisher("svc").publish_batch([("t", {})])
        sim.run_until_idle()
        assert len(got) == 2          # once per subscription's callback
        assert bus.stats.delivered_local == 2

    def test_batch_stats_invariant(self, sim, bus):
        bus.subscribe_local(Filter.where("t"), lambda e: None)
        publisher = bus.local_publisher("svc")
        publisher.publish_batch([("t", {}), ("u", {})])
        bus.publish_batch([Event("t", {}, SENDER, 1, 0.0),
                           Event("t", {}, SENDER, 1, 0.0)])
        stats = bus.stats
        assert stats.published == (stats.matched + stats.unmatched
                                   + stats.duplicates_dropped
                                   + stats.from_unknown_member)

    def test_empty_batch_is_a_noop(self, sim, bus):
        assert bus.publish_batch([]) == 0
        assert bus.stats.published == 0

    def test_unsubscribe_after_publish_delivers_like_per_event(self, sim, bus):
        # The per-event path captures the callback at publish time, so an
        # unsubscribe before the scheduler turn does not retract already-
        # matched events; the batch path must behave identically.
        got_batch, got_single = [], []
        sub_id = bus.subscribe_local(Filter.where("t"), got_batch.append)
        bus.local_publisher("svc").publish_batch([("t", {})])
        bus.unsubscribe_local(sub_id)      # before the scheduler turn runs
        sub_id = bus.subscribe_local(Filter.where("t"), got_single.append)
        bus.local_publisher("svc").publish("t")
        bus.unsubscribe_local(sub_id)
        sim.run_until_idle()
        assert len(got_batch) == len(got_single) == 1


class TestWatermarkErasure:
    """Purged-then-readmitted members start a fresh delivery session."""

    def test_readmitted_sender_not_treated_as_duplicate(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        bus.publish(Event("t", {"n": 0}, SENDER, 50, 0.0))
        bus.unregister_member(SENDER)
        # The readmitted device restarts its seqno space at 1; with the
        # watermark erased these must be fresh, not duplicates.
        assert bus.publish(Event("t", {"n": 1}, SENDER, 1, 0.0)) is True
        assert bus.publish(Event("t", {"n": 2}, SENDER, 2, 0.0)) is True
        sim.run_until_idle()
        assert [e.get("n") for e in got] == [0, 1, 2]
        assert bus.stats.duplicates_dropped == 0

    def test_erasure_scoped_to_the_purged_member(self, sim, bus):
        other = service_id_from_name("other")
        bus.publish(Event("t", {}, SENDER, 10, 0.0))
        bus.publish(Event("t", {}, other, 10, 0.0))
        bus.unregister_member(SENDER)
        assert bus.publish(Event("t", {}, SENDER, 1, 0.0)) is True
        # The untouched member's watermark still suppresses stale seqnos.
        assert bus.publish(Event("t", {}, other, 1, 0.0)) is False

    def test_batch_path_accepts_fresh_session_after_purge(self, sim, bus):
        bus.publish_batch([Event("t", {}, SENDER, i, 0.0)
                           for i in range(1, 6)])
        bus.unregister_member(SENDER)
        fresh = bus.publish_batch([Event("t", {}, SENDER, i, 0.0)
                                   for i in range(1, 4)])
        assert fresh == 3
        assert bus.stats.duplicates_dropped == 0

    def test_purge_between_batches_not_counted_duplicate(self, sim, bus):
        got = []
        bus.subscribe_local(Filter.where("t"), got.append)
        bus.publish_batch([Event("t", {"s": 1}, SENDER, 7, 0.0)])
        bus.unregister_member(SENDER)
        bus.publish_batch([Event("t", {"s": 2}, SENDER, 7, 0.0)])
        sim.run_until_idle()
        # Same seqno, two membership sessions: both delivered.
        assert [e.get("s") for e in got] == [1, 2]


class TestMembership:
    def test_proxy_required_for_member_subscription(self, bus):
        with pytest.raises(NotAMemberError):
            bus.subscribe_member(service_id_from_name("ghost"),
                                 [Filter.where("t")])

    def test_proxy_of_unknown_raises(self, bus):
        with pytest.raises(NotAMemberError):
            bus.proxy_of(service_id_from_name("ghost"))

    def test_unregister_clears_watermark(self, sim, bus):
        # After a purge, a re-admitted device restarts its seqnos; the bus
        # must accept them (exactly-once is scoped to one membership).
        bus.publish(Event("t", {}, SENDER, 50, 0.0))
        bus.unregister_member(SENDER)
        assert bus.publish(Event("t", {}, SENDER, 1, 0.0)) is True

    def test_unsubscribe_member_ownership_checked(self, sim, bus):
        got = []
        sub_id = bus.subscribe_local(Filter.where("t"), got.append)
        with pytest.raises(BusError):
            bus.unsubscribe_member(service_id_from_name("x"), sub_id)
