"""Shard differential suite: a sharded bus is indistinguishable from one.

The sharded bus bets that matching can be partitioned while dispatch
cannot.  This suite pins the bet from below and above:

* **matcher level** — Hypothesis drives ShardedMatcher at shards
  {1, 2, 8} against the brute-force oracle on both match paths, across
  registration churn (which must invalidate only the routed shard, and
  must still agree with the oracle afterwards);
* **bus level** — a seeded random workload (batch + per-event publishes,
  duplicates, subscribe/unsubscribe churn) runs against a single
  EventBus and ShardedEventBus instances in lockstep: every subscriber
  inbox and every BusStats counter must be identical, and the stats
  invariant must hold.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bus import EventBus
from repro.core.events import Event
from repro.core.sharding import (
    ShardedEventBus,
    ShardedMatcher,
    shard_index,
    value_bucket,
)
from repro.errors import ConfigurationError
from repro.ids import service_id_from_name
from repro.matching.engine import BruteForceMatcher, make_engine
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.matching.forwarding import name_class
from repro.sim.kernel import Simulator

from tests.matching.strategies import ATTR_NAMES, attribute_maps, filters

SID = service_id_from_name("shard-diff")
SHARD_COUNTS = (1, 2, 8)

subscription_tables = st.lists(
    st.lists(filters(), min_size=1, max_size=3),
    min_size=1, max_size=8)

event_streams = st.lists(attribute_maps(), min_size=1, max_size=12)


def _subscribe_all(engines, table):
    for index, filter_list in enumerate(table):
        subscription = Subscription(index + 1, SID, filter_list)
        for engine in engines:
            engine.subscribe(subscription)


def _ids(subscriptions):
    return [s.sub_id for s in subscriptions]


class TestShardedMatcherDifferential:
    @settings(max_examples=100, deadline=None)
    @given(subscription_tables, event_streams)
    def test_every_shard_count_agrees_with_oracle(self, table, stream):
        oracle = BruteForceMatcher()
        sharded = [ShardedMatcher(count) for count in SHARD_COUNTS]
        _subscribe_all([oracle] + sharded, table)

        expected = [_ids(oracle.match(attrs)) for attrs in stream]
        for matcher in sharded:
            per_event = [_ids(matcher.match(attrs)) for attrs in stream]
            assert per_event == expected, matcher.name
            assert matcher.match_batch_ids(stream) == expected, matcher.name
            batched = [_ids(subs) for subs in matcher.match_batch(stream)]
            assert batched == expected, matcher.name

    @settings(max_examples=60, deadline=None)
    @given(subscription_tables, event_streams, st.data())
    def test_agreement_survives_registration_churn(self, table, stream, data):
        """Unsubscribing must deroute exactly the right shard fragments."""
        oracle = BruteForceMatcher()
        sharded = [ShardedMatcher(count) for count in SHARD_COUNTS]
        _subscribe_all([oracle] + sharded, table)

        # Warm every shard's memo before churning.
        warm = [_ids(subs) for subs in oracle.match_batch(stream)]
        for matcher in sharded:
            assert matcher.match_batch_ids(stream) == warm, matcher.name

        to_remove = data.draw(st.sets(st.integers(1, len(table)),
                                      max_size=len(table) - 1))
        for sub_id in sorted(to_remove):
            oracle.unsubscribe(sub_id)
            for matcher in sharded:
                matcher.unsubscribe(sub_id)

        expected = [_ids(oracle.match(attrs)) for attrs in stream]
        for matcher in sharded:
            assert matcher.match_batch_ids(stream) == expected, matcher.name
            assert [_ids(matcher.match(attrs)) for attrs in stream] \
                == expected, matcher.name

    @settings(max_examples=40, deadline=None)
    @given(subscription_tables, event_streams)
    def test_inner_engine_choice_is_transparent(self, table, stream):
        """Sharding composes with any inner engine, not just forwarding."""
        oracle = BruteForceMatcher()
        over_brute = ShardedMatcher(4, "brute")
        over_siena = ShardedMatcher(4, "siena-bare")
        _subscribe_all([oracle, over_brute, over_siena], table)
        expected = [_ids(oracle.match(attrs)) for attrs in stream]
        assert over_brute.match_batch_ids(stream) == expected
        assert over_siena.match_batch_ids(stream) == expected


class TestSplitClassDifferential:
    """A rebalanced (value-bucket-split) matcher is still just a matcher.

    The autonomic rebalancer's actuator —
    :meth:`ShardedMatcher.split_class` — re-routes a live class by a
    secondary value bucket.  Whatever class and bucket attribute it
    picks, at any point in the subscription lifecycle, match results
    must stay identical to the brute oracle: before the split, after it,
    after churn removes half the table, and for registrations arriving
    *after* the split (which must follow the new routing).
    """

    @settings(max_examples=60, deadline=None)
    @given(subscription_tables, event_streams, st.data())
    def test_split_agrees_with_oracle_through_lifecycle(self, table, stream,
                                                        data):
        oracle = BruteForceMatcher()
        matcher = ShardedMatcher(4)
        _subscribe_all([oracle, matcher], table)

        classes = sorted({name_class(filt)
                          for filters in table for filt in filters
                          if name_class(filt)}, key=sorted)
        if not classes:
            return
        names = data.draw(st.sampled_from(classes), label="split class")
        bucket = data.draw(st.sampled_from(sorted(names)), label="bucket")

        # Warm the shards, then split the live class.
        warm = [_ids(subs) for subs in oracle.match_batch(stream)]
        assert matcher.match_batch_ids(stream) == warm
        matcher.split_class(names, bucket)
        assert matcher.match_batch_ids(stream) == warm
        assert [_ids(matcher.match(attrs)) for attrs in stream] == warm

        # Churn after the split: deindexing must reverse the bucketed
        # routing exactly.
        to_remove = data.draw(st.sets(st.integers(1, len(table)),
                                      max_size=len(table) - 1),
                              label="unsubscribed")
        for sub_id in sorted(to_remove):
            oracle.unsubscribe(sub_id)
            matcher.unsubscribe(sub_id)

        # New registrations in the split class follow the new routing.
        next_id = len(table) + 1
        for filters in table[:2]:
            subscription = Subscription(next_id, SID, filters)
            oracle.subscribe(subscription)
            matcher.subscribe(subscription)
            next_id += 1

        expected = [_ids(oracle.match(attrs)) for attrs in stream]
        assert matcher.match_batch_ids(stream) == expected
        assert [_ids(matcher.match(attrs)) for attrs in stream] == expected

    def test_split_spreads_a_pinned_class(self):
        """The skew the rebalancer exists for: one class, one shard —
        until the split distributes it by the EQ operand's bucket."""
        matcher = ShardedMatcher(8)
        for index in range(64):
            filt = Filter([Constraint("ward", Op.EQ, f"w-{index % 16}"),
                           Constraint("hr", Op.GT, index)])
            matcher.subscribe(Subscription(index + 1, SID, [filt]))
        loads = matcher.shard_loads()
        pinned = shard_index(frozenset({"ward", "hr"}), 8)
        assert loads[pinned] == 64 and sum(loads) == 64

        moved = matcher.split_class({"ward", "hr"}, "ward")
        assert moved == 64
        spread = matcher.shard_loads()
        assert sum(spread) == 64
        assert max(spread) < 64
        assert sum(1 for load in spread if load) > 1
        # Every fragment sits exactly at its operand's bucket shard.
        for index in range(16):
            expected = value_bucket(f"w-{index}", 8)
            filt = Filter([Constraint("ward", Op.EQ, f"w-{index}"),
                           Constraint("hr", Op.GT, 1)])
            assert matcher.shard_of_filter(filt) == expected

    def test_split_guards(self):
        matcher = ShardedMatcher(4)
        matcher.subscribe(Subscription(1, SID, [
            Filter([Constraint("a", Op.EQ, 1), Constraint("b", Op.GT, 0)])]))
        with pytest.raises(ConfigurationError):
            matcher.split_class({"a", "b"}, "zz")       # not in the class
        with pytest.raises(ConfigurationError):
            matcher.split_class(frozenset(), "a")       # the empty class
        with pytest.raises(ConfigurationError):
            ShardedMatcher(1).split_class({"a"}, "a")   # nothing to spread
        matcher.split_class({"a", "b"}, "a")
        with pytest.raises(ConfigurationError):
            matcher.split_class({"a", "b"}, "b")        # already split

    def test_eq_equal_numbers_bucket_together(self):
        """1 and 1.0 satisfy the same EQ constraint, so they must route
        to the same bucket shard — otherwise a float-valued event would
        miss an int-constrained filter after a split."""
        for count in (2, 4, 8):
            assert value_bucket(1, count) == value_bucket(1.0, count)
            assert value_bucket(-3, count) == value_bucket(-3.0, count)

    def test_class_stats_report_shape(self):
        matcher = ShardedMatcher(8)
        for index in range(6):
            matcher.subscribe(Subscription(index + 1, SID, [
                Filter([Constraint("ward", Op.EQ, f"w-{index % 3}"),
                        Constraint("hr", Op.GT, index)])]))
        (stat,) = matcher.class_stats()
        assert stat.names == frozenset({"ward", "hr"})
        assert stat.fragments == 6
        assert stat.shard == shard_index(stat.names, 8)
        assert not stat.split
        assert stat.eq_diversity == {"ward": 3}
        matcher.split_class(stat.names, "ward")
        (stat,) = matcher.class_stats()
        assert stat.split


class TestShardRouting:
    def test_shard_index_is_deterministic_and_in_range(self):
        for names in ((), ("hr",), ("hr", "type"), ("a", "b", "c")):
            index = shard_index(names, 8)
            assert 0 <= index < 8
            assert index == shard_index(tuple(reversed(names)), 8)
        assert shard_index(("anything",), 1) == 0

    def test_filters_route_by_name_class(self):
        matcher = ShardedMatcher(8)
        filt = Filter([Constraint("hr", Op.GT, 5),
                       Constraint("type", Op.EQ, "x")])
        expected = shard_index(name_class(filt), 8)
        matcher.subscribe(Subscription(1, SID, [filt]))
        assert matcher.shard_of_filter(filt) == expected
        assert matcher.shard_loads()[expected] == 1
        assert sum(matcher.shard_loads()) == 1

    def test_multi_filter_subscription_spans_shards(self):
        matcher = ShardedMatcher(8)
        fa = Filter([Constraint("a", Op.EXISTS)])
        fb = Filter([Constraint("b", Op.EXISTS)])
        matcher.subscribe(Subscription(1, SID, [fa, fb]))
        occupied = [i for i, load in enumerate(matcher.shard_loads()) if load]
        assert occupied == sorted({matcher.shard_of_filter(fa),
                                   matcher.shard_of_filter(fb)})
        assert matcher._match_ids({"a": 1}) == {1}
        assert matcher._match_ids({"b": 1}) == {1}
        matcher.unsubscribe(1)
        assert sum(matcher.shard_loads()) == 0
        assert matcher._match_ids({"a": 1}) == set()

    def test_empty_filter_matches_everything_at_any_shard_count(self):
        for count in SHARD_COUNTS:
            matcher = ShardedMatcher(count)
            matcher.subscribe(Subscription(7, SID, [Filter([])]))
            assert matcher._match_ids({}) == {7}
            assert matcher._match_ids({"zz": 1}) == {7}
            matcher.unsubscribe(7)
            assert matcher._match_ids({}) == set()

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ShardedMatcher(0)

    def test_meter_forwards_to_shards(self):
        # Work-proportional charges (e.g. siena translation copies) must
        # keep reaching the simulated host when the table is sharded.
        class RecordingMeter:
            def __init__(self):
                self.matches = 0
                self.copied = 0

            def charge_match(self):
                self.matches += 1

            def charge_copy(self, nbytes):
                self.copied += nbytes

        single_meter, sharded_meter = RecordingMeter(), RecordingMeter()
        single = make_engine("forwarding", meter=single_meter)
        sharded = ShardedMatcher(4)
        sharded.set_meter(sharded_meter)
        table = [[Filter([Constraint("hr", Op.GT, 2)])]]
        _subscribe_all([single, sharded], table)
        single.match_batch([{"hr": 3}])
        sharded.match_batch([{"hr": 3}])
        # One occupied shard consulted -> same base charge as one engine.
        assert sharded_meter.matches == single_meter.matches == 1

    def test_events_matched_counts_like_single_engine(self):
        single = make_engine("forwarding")
        sharded = ShardedMatcher(4)
        table = [[Filter([Constraint("hr", Op.GT, 2)])]]
        _subscribe_all([single, sharded], table)
        stream = [{"hr": 3}, {"hr": 1}, {}]
        single.match_batch(stream)
        sharded.match_batch(stream)
        for attrs in stream:
            single.match(attrs)
            sharded.match(attrs)
        assert sharded.events_matched == single.events_matched


def _random_workload(rng, rounds=25):
    """A seeded script of (kind, payload) workload steps."""
    names = list(ATTR_NAMES) + ["type-ish", "ward"]
    steps = []
    for _ in range(rounds):
        roll = rng.random()
        if roll < 0.6:
            events = []
            for _ in range(rng.randint(1, 10)):
                attrs = {name: rng.randint(-3, 6)
                         for name in rng.sample(names, rng.randint(0, 4))}
                events.append(attrs)
            steps.append(("batch" if rng.random() < 0.5 else "single",
                          events))
        elif roll < 0.8:
            constraints = [
                Constraint(rng.choice(names),
                           rng.choice([Op.GT, Op.LT, Op.EQ]),
                           rng.randint(-3, 6))
                for _ in range(rng.randint(0, 2))]
            steps.append(("subscribe", [Filter(constraints)]))
        else:
            steps.append(("unsubscribe", None))
    return steps


class TestShardedBusEquivalence:
    """Single EventBus vs ShardedEventBus in lockstep on one workload."""

    @pytest.mark.parametrize("seed", [11, 4093])
    @pytest.mark.parametrize("shard_count", [2, 8])
    def test_inboxes_and_stats_identical(self, seed, shard_count):
        rng = random.Random(seed)
        steps = _random_workload(rng)

        def run(make_bus):
            sim = Simulator()
            bus = make_bus(sim)
            inboxes = {}
            sub_ids = []
            next_seqno = [0]
            sender = service_id_from_name("pub")

            def subscribe(filters):
                inbox = []
                sub_id = bus.subscribe_local(filters, inbox.append)
                inboxes[sub_id] = inbox
                sub_ids.append(sub_id)

            subscribe([Filter([])])          # a catch-all subscriber
            for kind, payload in steps:
                if kind == "subscribe":
                    subscribe(payload)
                elif kind == "unsubscribe" and len(sub_ids) > 1:
                    bus.unsubscribe_local(sub_ids.pop())
                elif kind in ("batch", "single"):
                    events = []
                    for attrs in payload:
                        next_seqno[0] += 1
                        events.append(Event("w.load", attrs, sender,
                                            next_seqno[0], sim.now()))
                    if kind == "batch":
                        bus.publish_batch(events)
                        # Replay one duplicate through the batch path.
                        bus.publish_batch(events[-1:])
                    else:
                        for event in events:
                            bus.publish(event)
                sim.run_until_idle()
            stats = bus.stats
            assert stats.published == (stats.matched + stats.unmatched
                                       + stats.duplicates_dropped
                                       + stats.from_unknown_member), stats
            delivered = {sub_id: [(e.sender, e.seqno) for e in inbox]
                         for sub_id, inbox in inboxes.items()}
            return delivered, stats

        single = run(lambda sim: EventBus(sim, make_engine("forwarding")))
        sharded = run(lambda sim: ShardedEventBus(sim, shard_count))
        assert sharded[0] == single[0]
        assert sharded[1] == single[1]
