"""Worker-pool differential suite: N processes are indistinguishable
from none.

The worker pool bets that the match phase can leave the process while
dispatch cannot.  This suite pins the bet the same way the sharding suite
does — from below and above:

* **plan codec** — Hypothesis roundtrips MatchPlan through the TLV codec;
* **executor level** — `InlineExecutor` ≡ `WorkerPoolExecutor` ≡ the
  brute-force oracle across shards {1, 2, 8} × workers {0, 2, 4}, with
  mid-stream registration churn and a live `split_class` actuation while
  workers are running (the deltas must re-route the replicas, not desync
  them);
* **failure level** — a SIGKILLed worker costs nothing but a respawn:
  results stay exact (inline fallback on the host's always-registered
  engines), and `ensure_alive` restores the pool.

Pools are expensive to spawn, so the suite builds them once per module
and moves them between tables with ``rebind`` — which is itself the
RESET/snapshot protocol under test.
"""

import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import ShardedEventBus, ShardedMatcher
from repro.core.workers import WorkerPoolExecutor, available_cores
from repro.errors import ConfigurationError
from repro.ids import service_id_from_name
from repro.matching.engine import BruteForceMatcher
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.matching.plan import InlineExecutor, MatchPlan, decode_plan, \
    encode_plan
from repro.sim.kernel import Simulator

from tests.matching.strategies import ATTR_NAMES, attribute_maps, filters

SID = service_id_from_name("worker-diff")
SHARD_COUNTS = (1, 2, 8)
WORKER_COUNTS = (2, 4)

subscription_tables = st.lists(
    st.lists(filters(), min_size=1, max_size=3),
    min_size=1, max_size=8)

event_streams = st.lists(attribute_maps(), min_size=1, max_size=10)


def _subscribe_all(engines, table, offset=0):
    for index, filter_list in enumerate(table):
        subscription = Subscription(offset + index + 1, SID, filter_list)
        for engine in engines:
            engine.subscribe(subscription)


@pytest.fixture(scope="module")
def pools():
    """One long-lived pool per worker count, moved between tables by
    ``rebind`` — spawning processes per Hypothesis example would drown
    the suite in fork/exec time."""
    built = {workers: WorkerPoolExecutor(ShardedMatcher(2, "forwarding"),
                                         workers, recv_timeout_s=20.0)
             for workers in WORKER_COUNTS}
    yield built
    for pool in built.values():
        pool.close()


class TestPlanCodec:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 1000), st.integers(0, 2 ** 40),
           st.lists(st.tuples(st.integers(0, 4096), attribute_maps()),
                    max_size=8))
    def test_roundtrip(self, shard, epoch, pairs):
        plan = MatchPlan(shard, epoch, [i for i, _ in pairs],
                         [attrs for _, attrs in pairs])
        decoded, pos = decode_plan(encode_plan(plan))
        assert decoded == plan
        assert pos == len(encode_plan(plan))

    def test_inline_executor_is_the_host_path(self):
        matcher = ShardedMatcher(4, "forwarding")
        assert isinstance(matcher.executor, InlineExecutor)
        _subscribe_all([matcher], [[Filter([Constraint("a", Op.GT, 0)])]])
        assert matcher.match_batch_ids([{"a": 1}, {"a": -1}]) == [[1], []]


class TestWorkerDifferential:
    """shards {1,2,8} × workers {0,2,4} × oracle, one example at a time.

    "workers 0" is the plain matcher with its default InlineExecutor —
    the exact pre-refactor path — so every assertion pins three
    executions of the same table to the oracle at once.
    """

    def _check(self, pools, table, stream, extra=None):
        oracle = BruteForceMatcher()
        _subscribe_all([oracle], table)
        expected = [[s.sub_id for s in oracle.match(attrs)]
                    for attrs in stream]
        for shards in SHARD_COUNTS:
            inline = ShardedMatcher(shards, "forwarding")
            _subscribe_all([inline], table)
            assert inline.match_batch_ids(stream) == expected
            for workers, pool in pools.items():
                matcher = ShardedMatcher(shards, "forwarding")
                fallbacks = pool.stats.inline_fallbacks
                if extra is None or not extra(pool, matcher, table):
                    _subscribe_all([matcher], table)
                    pool.rebind(matcher)
                assert matcher.match_batch_ids(stream) == expected, \
                    f"shards={shards} workers={workers}"
                # The workers really executed: nothing fell back inline.
                assert pool.stats.inline_fallbacks == fallbacks

    @settings(max_examples=25, deadline=None)
    @given(subscription_tables, event_streams)
    def test_pool_agrees_with_inline_and_oracle(self, pools, table, stream):
        self._check(pools, table, stream)

    @settings(max_examples=25, deadline=None)
    @given(subscription_tables, event_streams)
    def test_delta_path_agrees_with_snapshot_path(self, pools, table,
                                                  stream):
        """Subscribing after rebind streams deltas to live workers; the
        result must equal the snapshot bootstrap (previous test)."""
        def subscribe_after_bind(pool, matcher, table_):
            pool.rebind(matcher)
            _subscribe_all([matcher], table_)
            return True
        self._check(pools, table, stream, extra=subscribe_after_bind)

    @settings(max_examples=20, deadline=None)
    @given(subscription_tables, subscription_tables, event_streams,
           st.data())
    def test_mid_stream_churn(self, pools, table, late_table, stream, data):
        """Batches interleaved with subscribe/unsubscribe churn stay
        oracle-exact: every delta reached the right replica in order."""
        to_remove = sorted(data.draw(st.sets(
            st.integers(1, len(table)), max_size=len(table) - 1)))
        for shards, workers in ((2, 2), (8, 4)):
            pool = pools[workers]
            oracle = BruteForceMatcher()
            matcher = ShardedMatcher(shards, "forwarding")
            _subscribe_all([oracle, matcher], table)
            pool.rebind(matcher)

            fallbacks = pool.stats.inline_fallbacks
            expected = [[s.sub_id for s in oracle.match(a)] for a in stream]
            assert matcher.match_batch_ids(stream) == expected

            for sub_id in to_remove:                    # churn down...
                oracle.unsubscribe(sub_id)
                matcher.unsubscribe(sub_id)
            _subscribe_all([oracle, matcher], late_table,   # ...and up
                           offset=len(table))
            expected = [[s.sub_id for s in oracle.match(a)] for a in stream]
            assert matcher.match_batch_ids(stream) == expected
            assert pool.stats.inline_fallbacks == fallbacks

    def test_split_class_while_workers_live(self, pools):
        """The rebalancer's actuator re-routes worker replicas live."""
        pool = pools[4]
        oracle = BruteForceMatcher()
        matcher = ShardedMatcher(8, "forwarding")
        table = [[Filter([Constraint("hr", Op.EQ, index % 6),
                          Constraint("a", Op.GT, index % 4)])]
                 for index in range(24)]
        _subscribe_all([oracle, matcher], table)
        pool.rebind(matcher)
        stream = [{"hr": i % 6, "a": i % 5, "b": i} for i in range(24)]

        fallbacks = pool.stats.inline_fallbacks
        expected = [[s.sub_id for s in oracle.match(a)] for a in stream]
        assert matcher.match_batch_ids(stream) == expected

        moved = matcher.split_class(frozenset({"hr", "a"}), "hr")
        assert moved == 24
        assert matcher.match_batch_ids(stream) == expected
        assert pool.stats.inline_fallbacks == fallbacks

    def test_sharded_bus_rides_the_pool(self, pools):
        """End to end through ShardedEventBus.publish_batch: BusStats
        invariants hold whatever executes the match phase."""
        from repro.core.events import Event

        def drive(executor_pool):
            sim = Simulator()
            bus = ShardedEventBus(sim, 4)
            if executor_pool is not None:
                executor_pool.rebind(bus.sharded)
            inboxes = {}
            for index in range(8):
                inboxes[index + 1] = []
                bus.subscribe_local(
                    Filter([Constraint("hr", Op.GT, index)]),
                    inboxes[index + 1].append)
            events = [Event("vitals", {"hr": i % 12}, SID, i, 0.0)
                      for i in range(30)]
            bus.publish_batch(events)
            stats = bus.stats
            assert stats.published == stats.matched + stats.unmatched \
                + stats.duplicates_dropped + stats.from_unknown_member
            return {k: [e.seqno for e in v] for k, v in inboxes.items()}, \
                stats

        inline_boxes, inline_stats = drive(None)
        pool_boxes, pool_stats = drive(pools[2])
        assert pool_boxes == inline_boxes
        assert (pool_stats.published, pool_stats.matched,
                pool_stats.unmatched) == (inline_stats.published,
                                          inline_stats.matched,
                                          inline_stats.unmatched)


class TestWorkerFailure:
    def _bound_pool(self, workers=2, shards=4):
        matcher = ShardedMatcher(shards, "forwarding")
        _subscribe_all([matcher],
                       [[Filter([Constraint("hr", Op.GT, index)])]
                        for index in range(12)])
        pool = WorkerPoolExecutor(matcher, workers, recv_timeout_s=10.0)
        return matcher, pool

    def test_sigkilled_worker_costs_only_a_respawn(self):
        matcher, pool = self._bound_pool()
        stream = [{"hr": i} for i in range(20)]
        with pool:
            expected = matcher.match_batch_ids(stream)
            for victim in pool.worker_pids():
                os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while any(p.is_alive() for p in pool._procs) \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            # Exact results straight through the massacre...
            assert matcher.match_batch_ids(stream) == expected
            assert pool.stats.respawns >= 1
            # ...and the supervisor restores full strength.
            assert pool.ensure_alive() == pool.workers
            assert matcher.match_batch_ids(stream) == expected
            assert all(pool.stats_dict()["alive"])

    def test_close_restores_inline_execution(self):
        matcher, pool = self._bound_pool()
        stream = [{"hr": i} for i in range(20)]
        expected = matcher.match_batch_ids(stream)
        pool.close()
        assert isinstance(matcher.executor, InlineExecutor)
        assert matcher.match_batch_ids(stream) == expected
        # Closing twice is a no-op; the matcher can churn freely after.
        pool.close()
        matcher.unsubscribe(1)

    def test_rebind_releases_the_previous_matcher(self):
        matcher, pool = self._bound_pool()
        with pool:
            other = ShardedMatcher(2, "forwarding")
            pool.rebind(other)
            assert isinstance(matcher.executor, InlineExecutor)
            assert other.executor is pool
            # The old matcher's delta sink is detached: churn is local.
            matcher.unsubscribe(1)
            assert pool.stats_dict()["queue_depth"] == [0] * pool.workers

    def test_pool_requires_a_named_engine(self):
        from repro.matching.engine import make_engine
        opaque = ShardedMatcher(2, lambda: make_engine("forwarding"))
        with pytest.raises(ConfigurationError):
            WorkerPoolExecutor(opaque, 2)

    def test_worker_count_validated(self):
        with pytest.raises(ConfigurationError):
            WorkerPoolExecutor(ShardedMatcher(2, "forwarding"), 0)

    def test_one_delta_sink_at_a_time(self):
        matcher, pool = self._bound_pool()
        with pool:
            with pytest.raises(ConfigurationError):
                matcher.attach_delta_sink(lambda *a: None)

    def test_stats_shape(self):
        matcher, pool = self._bound_pool(workers=2)
        with pool:
            matcher.match_batch_ids([{"hr": 5}] * 3)
            stats = pool.stats_dict()
            for key in ("workers", "alive", "pids", "executes", "plans",
                        "respawns", "inline_fallbacks", "ipc_bytes_out",
                        "ipc_bytes_in", "queue_depth", "epoch_lag",
                        "worker_events"):
                assert key in stats, key
            assert stats["workers"] == 2
            assert stats["executes"] >= 1
            assert stats["ipc_bytes_out"] > 0
            assert len(stats["alive"]) == 2


def test_available_cores_positive():
    assert available_cores() >= 1
