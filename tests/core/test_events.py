"""The event model and codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BusError, CodecError
from repro.core.events import (
    NEW_MEMBER_TYPE,
    PURGE_MEMBER_TYPE,
    Event,
    decode_event,
    encode_event,
    new_member_event,
    purge_member_event,
)
from repro.ids import ServiceId, service_id_from_name

SENDER = service_id_from_name("sensor-1")


def make_event(**overrides):
    defaults = dict(type="health.hr", attributes={"hr": 120.5},
                    sender=SENDER, seqno=7, timestamp=1.5)
    defaults.update(overrides)
    return Event(**defaults)


class TestEvent:
    def test_fields(self):
        event = make_event()
        assert event.type == "health.hr"
        assert event.attributes["hr"] == 120.5
        assert event.sender == SENDER
        assert event.seqno == 7

    def test_immutable_fields(self):
        event = make_event()
        with pytest.raises(AttributeError):
            event.type = "other"

    def test_attribute_map_is_readonly(self):
        event = make_event()
        with pytest.raises(TypeError):
            event.attributes["hr"] = 0

    def test_constructor_snapshot(self):
        attrs = {"hr": 1}
        event = make_event(attributes=attrs)
        attrs["hr"] = 999
        assert event.attributes["hr"] == 1

    def test_attrs_view_includes_type(self):
        view = make_event().attrs_view()
        assert view["type"] == "health.hr"
        assert view["hr"] == 120.5

    def test_type_attribute_reserved(self):
        with pytest.raises(BusError):
            make_event(attributes={"type": "spoofed"})

    def test_empty_type_rejected(self):
        with pytest.raises(BusError):
            make_event(type="")

    def test_negative_seqno_rejected(self):
        with pytest.raises(BusError):
            make_event(seqno=-1)

    def test_bad_attribute_value_rejected(self):
        with pytest.raises(BusError):
            make_event(attributes={"x": [1, 2]})

    def test_bad_attribute_name_rejected(self):
        with pytest.raises(BusError):
            make_event(attributes={"": 1})

    def test_key_identifies_event(self):
        assert make_event().key() == (SENDER, 7)

    def test_get_with_default(self):
        event = make_event()
        assert event.get("hr") == 120.5
        assert event.get("missing", 0) == 0

    def test_equality_ignores_timestamp(self):
        assert make_event(timestamp=1.0) == make_event(timestamp=2.0)

    def test_hashable(self):
        assert len({make_event(), make_event()}) == 1


class TestCodec:
    def test_roundtrip(self):
        event = make_event(attributes={"hr": 120.5, "alarm": True,
                                       "patient": "p-1", "raw": b"\x00\x01"})
        decoded, offset = decode_event(encode_event(event))
        assert decoded == event
        assert decoded.timestamp == event.timestamp

    def test_empty_attributes(self):
        decoded, _ = decode_event(encode_event(make_event(attributes={})))
        assert dict(decoded.attributes) == {}

    def test_truncated_rejected(self):
        encoded = encode_event(make_event())
        with pytest.raises(CodecError):
            decode_event(encoded[:8])

    def test_spoofed_type_attribute_on_wire_rejected(self):
        from repro.transport import wire
        import struct
        raw = (wire.encode_str("t") + SENDER.to_bytes48()
               + wire.encode_varint(1) + struct.pack("!d", 0.0)
               + wire.encode_attr_map({"type": "fake"}))
        with pytest.raises(CodecError):
            decode_event(raw)

    @given(st.dictionaries(
        st.text(min_size=1, max_size=10).filter(lambda s: s != "type"),
        st.one_of(st.booleans(), st.integers(-1000, 1000),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=30), st.binary(max_size=30)),
        max_size=8),
        st.integers(0, 2 ** 30))
    def test_roundtrip_property(self, attrs, seqno):
        event = Event("bench.t", attrs, SENDER, seqno, 0.25)
        decoded, _ = decode_event(encode_event(event))
        assert decoded == event


class TestManagementEvents:
    def test_new_member_event(self):
        member = ServiceId(0xABCDEF)
        event = new_member_event(SENDER, 1, 0.0, member=member, name="hr-1",
                                 device_type="sensor.hr", address="node-9")
        assert event.type == NEW_MEMBER_TYPE
        assert event.get("member") == int(member)
        assert event.get("device_type") == "sensor.hr"
        assert event.get("address") == "node-9"

    def test_purge_member_event(self):
        member = ServiceId(0xABCDEF)
        event = purge_member_event(SENDER, 2, 0.0, member=member,
                                   name="hr-1", reason="timeout")
        assert event.type == PURGE_MEMBER_TYPE
        assert event.get("reason") == "timeout"
