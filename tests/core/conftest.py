"""Fixtures for core-layer tests: a bus core with manual admission.

Discovery is tested separately; here membership events are injected by
hand so proxy/bootstrap/client behaviour is isolated from the discovery
protocol.
"""

import pytest

from repro.autonomic.manager import build_bus_manager
from repro.core.bootstrap import ProxyBootstrap
from repro.core.bus import EventBus
from repro.core.client import BusClient
from repro.core.events import NEW_MEMBER_TYPE, PURGE_MEMBER_TYPE
from repro.core.sharding import ShardedEventBus
from repro.matching.engine import make_engine
from repro.transport.endpoint import PacketEndpoint


class CoreKit:
    """A bus core on node "core" plus helpers to admit/purge members.

    ``shards > 1`` builds the core around a :class:`ShardedEventBus`, so
    any kit-based suite can be re-run against the partitioned bus.
    ``autonomic`` (an AutonomicConfig) attaches the MAPE-K control plane
    over the kit's bus and endpoint; the manager is *not* started on a
    timer — deterministic suites tick it explicitly so
    ``run_until_idle`` still terminates.
    """

    def __init__(self, sim, hub, window=None, shards=1, autonomic=None):
        self.sim = sim
        self.hub = hub
        endpoint_kwargs = {} if window is None else {"window": window}
        self.window = window
        self.core_endpoint = PacketEndpoint(hub.create("core"), sim,
                                            **endpoint_kwargs)
        if shards > 1:
            self.bus = ShardedEventBus(sim, shards, "forwarding")
        else:
            self.bus = EventBus(sim, make_engine("forwarding"))
        self.bootstrap = ProxyBootstrap(self.bus, self.core_endpoint)
        self.discovery = self.bus.local_publisher("manual-discovery")
        self.autonomic = None
        if autonomic is not None:
            self.autonomic = build_bus_manager(sim, self.bus,
                                               self.core_endpoint, autonomic)

    def device_endpoint(self, name, **kwargs) -> PacketEndpoint:
        if self.window is not None:
            kwargs.setdefault("window", self.window)
        return PacketEndpoint(self.hub.create(name), self.sim, **kwargs)

    def admit(self, endpoint, name=None, device_type="service"):
        """Publish the New Member event for a device endpoint."""
        node_name = endpoint.local_address
        self.core_endpoint.learn_peer(endpoint.service_id, node_name)
        self.discovery.publish(NEW_MEMBER_TYPE, {
            "member": int(endpoint.service_id),
            "name": name or str(node_name),
            "device_type": device_type,
            "address": str(node_name),
        })
        self.sim.run_until_idle()
        return endpoint.service_id

    def purge(self, member_id, reason="test"):
        self.discovery.publish(PURGE_MEMBER_TYPE, {
            "member": int(member_id), "name": "-", "reason": reason,
        })
        self.sim.run_until_idle()

    def client(self, name, **kwargs) -> BusClient:
        endpoint = self.device_endpoint(name, **kwargs)
        client = BusClient(endpoint, self.sim, "core")
        self.admit(endpoint, name=name)
        return client


@pytest.fixture
def kit(sim, hub):
    return CoreKit(sim, hub)
