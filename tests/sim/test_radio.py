"""The simulated network: delivery, latency, loss, range, fragmentation."""

import pytest

from repro.errors import AddressError, ConfigurationError, TransportError
from repro.sim.hosts import LAPTOP_PROFILE, SENSOR_PROFILE, SimHost
from repro.sim.kernel import Simulator
from repro.sim.radio import (
    BLUETOOTH,
    USB_IP,
    WIFI_11B,
    ZIGBEE,
    LinkProfile,
    SimNetwork,
)
from repro.sim.rng import RngRegistry


def make_net(sim, profile=WIFI_11B, seed=5):
    network = SimNetwork(sim, RngRegistry(seed))
    medium = network.add_medium("m", profile)
    return network, medium


def attach(network, medium, sim, name, position=(0.0, 0.0)):
    network.attach(name, SimHost(sim, LAPTOP_PROFILE, name), medium, position)


class TestLinkProfile:
    def test_bad_latency_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkProfile("x", latency_mean_s=1.0, latency_min_s=2.0,
                        latency_max_s=3.0, bandwidth_bps=1000.0)

    def test_loss_rate_must_be_probability(self):
        with pytest.raises(ConfigurationError):
            LinkProfile("x", latency_mean_s=1.0, latency_min_s=0.5,
                        latency_max_s=2.0, bandwidth_bps=1000.0,
                        loss_rate=1.5)

    def test_fragment_count(self):
        assert USB_IP.fragments(0) == 1
        assert USB_IP.fragments(1472) == 1
        assert USB_IP.fragments(1473) == 2
        assert USB_IP.fragments(5000) == 4

    def test_zigbee_has_tiny_mtu(self):
        assert ZIGBEE.mtu < BLUETOOTH.mtu < USB_IP.mtu

    def test_latency_samples_within_bounds(self):
        import random
        rng = random.Random(3)
        for _ in range(500):
            sample = USB_IP.sample_latency(rng)
            assert USB_IP.latency_min_s <= sample <= USB_IP.latency_max_s

    def test_serialisation_time(self):
        assert USB_IP.serialisation_time(640_000) == pytest.approx(1.0)


class TestDelivery:
    def test_unicast_delivers_payload(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        got = []
        network.set_receiver("b", lambda src, data: got.append((src, data)))
        network.send("a", "b", b"hello")
        sim.run_until_idle()
        assert got == [("a", b"hello")]

    def test_delivery_takes_time(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        moments = []
        network.set_receiver("b", lambda src, data: moments.append(sim.now()))
        network.send("a", "b", b"x" * 100)
        sim.run_until_idle()
        assert moments[0] >= WIFI_11B.latency_min_s

    def test_unknown_node_rejected(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "a")
        with pytest.raises(AddressError):
            network.send("a", "ghost", b"x")

    def test_cross_medium_send_rejected(self, sim):
        network = SimNetwork(sim, RngRegistry(1))
        m1 = network.add_medium("m1", WIFI_11B)
        m2 = network.add_medium("m2", WIFI_11B)
        network.attach("a", SimHost(sim, LAPTOP_PROFILE, "a"), m1)
        network.attach("b", SimHost(sim, LAPTOP_PROFILE, "b"), m2)
        with pytest.raises(TransportError):
            network.send("a", "b", b"x")

    def test_duplicate_node_name_rejected(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "a")
        with pytest.raises(ConfigurationError):
            attach(network, medium, sim, "a")

    def test_down_node_receives_nothing(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        got = []
        network.set_receiver("b", lambda src, data: got.append(data))
        network.set_node_up("b", False)
        network.send("a", "b", b"x")
        sim.run_until_idle()
        assert got == []
        assert network.datagrams_dropped == 1

    def test_blocked_link_drops(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        got = []
        network.set_receiver("b", lambda src, data: got.append(data))
        network.set_link_blocked("a", "b", True)
        network.send("a", "b", b"x")
        sim.run_until_idle()
        assert got == []
        network.set_link_blocked("a", "b", False)
        network.send("a", "b", b"y")
        sim.run_until_idle()
        assert got == [b"y"]

    def test_larger_payloads_arrive_later(self, sim):
        network, medium = make_net(sim, profile=USB_IP)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        arrivals = {}
        network.set_receiver("b",
                             lambda src, data: arrivals.setdefault(
                                 len(data), sim.now()))
        network.send("a", "b", b"s" * 10)
        sim.run_until_idle()
        start = sim.now()
        network.send("a", "b", b"L" * 5000)
        sim.run_until_idle()
        small = arrivals[10]
        large = arrivals[5000] - start
        assert large > small


class TestLoss:
    def test_lossy_link_drops_some(self, sim):
        lossy = LinkProfile("lossy", latency_mean_s=1e-3,
                            latency_min_s=0.5e-3, latency_max_s=2e-3,
                            bandwidth_bps=1e6, loss_rate=0.5)
        network, medium = make_net(sim, profile=lossy)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        got = []
        network.set_receiver("b", lambda src, data: got.append(data))
        for _ in range(200):
            network.send("a", "b", b"x")
        sim.run_until_idle()
        assert 40 < len(got) < 160          # ~50% each way, seeded
        assert network.datagrams_dropped == 200 - len(got)

    def test_fragmented_payload_loses_whole_datagram(self, sim):
        lossy = LinkProfile("lossy", latency_mean_s=1e-3,
                            latency_min_s=0.5e-3, latency_max_s=2e-3,
                            bandwidth_bps=1e6, loss_rate=0.3, mtu=100)
        network, medium = make_net(sim, profile=lossy)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        got = []
        network.set_receiver("b", lambda src, data: got.append(data))
        for _ in range(50):
            network.send("a", "b", b"z" * 450)   # 5 fragments each
        sim.run_until_idle()
        # Whatever arrives must be complete — never a partial payload.
        assert all(len(data) == 450 for data in got)
        # 5 fragments at 30% loss: P(survive) ~ 0.17, so most are lost.
        assert len(got) < 25


class TestRangeAndBroadcast:
    def test_out_of_range_unicast_drops(self, sim):
        network, medium = make_net(sim)   # WiFi range 50 m
        attach(network, medium, sim, "a", position=(0.0, 0.0))
        attach(network, medium, sim, "far", position=(500.0, 0.0))
        got = []
        network.set_receiver("far", lambda src, data: got.append(data))
        network.send("a", "far", b"x")
        sim.run_until_idle()
        assert got == []

    def test_wired_medium_ignores_range(self, sim):
        network, medium = make_net(sim, profile=USB_IP)
        attach(network, medium, sim, "a", position=(0.0, 0.0))
        attach(network, medium, sim, "far", position=(1e6, 0.0))
        got = []
        network.set_receiver("far", lambda src, data: got.append(data))
        network.send("a", "far", b"x")
        sim.run_until_idle()
        assert got == [b"x"]

    def test_broadcast_reaches_only_in_range(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "src", position=(0.0, 0.0))
        attach(network, medium, sim, "near", position=(10.0, 0.0))
        attach(network, medium, sim, "far", position=(400.0, 0.0))
        got = {"near": [], "far": []}
        network.set_receiver("near", lambda s, d: got["near"].append(d))
        network.set_receiver("far", lambda s, d: got["far"].append(d))
        launched = network.broadcast("src", b"beacon")
        sim.run_until_idle()
        assert launched == 1
        assert got["near"] == [b"beacon"]
        assert got["far"] == []

    def test_broadcast_excludes_sender(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "src")
        got = []
        network.set_receiver("src", lambda s, d: got.append(d))
        network.broadcast("src", b"x")
        sim.run_until_idle()
        assert got == []

    def test_mobility_changes_reachability(self, sim):
        from repro.sim.mobility import LinearPath
        network, medium = make_net(sim)
        attach(network, medium, sim, "base", position=(0.0, 0.0))
        path = LinearPath([(0.0, 0.0, 0.0), (10.0, 1000.0, 0.0)])
        network.attach("walker", SimHost(sim, SENSOR_PROFILE, "walker"),
                       medium, path)
        got = []
        network.set_receiver("walker", lambda s, d: got.append(sim.now()))
        network.send("base", "walker", b"early")     # t=0, in range
        sim.run_until_idle()
        sim.run(8.0)                                  # walker now ~800m away
        network.send("base", "walker", b"late")
        sim.run_until_idle()
        assert len(got) == 1


class TestStats:
    def test_counters(self, sim):
        network, medium = make_net(sim)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        network.set_receiver("b", lambda s, d: None)
        network.send("a", "b", b"12345")
        sim.run_until_idle()
        assert network.datagrams_sent == 1
        assert network.datagrams_delivered == 1
        assert network.bytes_delivered == 5

    def test_latency_probe(self, sim):
        network, medium = make_net(sim, profile=USB_IP)
        attach(network, medium, sim, "a")
        attach(network, medium, sim, "b")
        network.set_receiver("b", lambda s, d: None)
        network.latency_probe = []
        for _ in range(50):
            network.send("a", "b", b"x")
        sim.run_until_idle()
        assert len(network.latency_probe) == 50
        assert all(USB_IP.latency_min_s <= v <= USB_IP.latency_max_s
                   for v in network.latency_probe)
