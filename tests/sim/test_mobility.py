"""Mobility models: interpolation and the nurse walk-away scenario."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.mobility import LinearPath, StaticPosition, WalkAway


class TestStaticPosition:
    def test_never_moves(self):
        pos = StaticPosition(3.0, 4.0)
        assert pos(0.0) == (3.0, 4.0)
        assert pos(1e9) == (3.0, 4.0)


class TestLinearPath:
    def test_holds_first_position_before_start(self):
        path = LinearPath([(10.0, 0.0, 0.0), (20.0, 100.0, 0.0)])
        assert path(0.0) == (0.0, 0.0)

    def test_holds_last_position_after_end(self):
        path = LinearPath([(10.0, 0.0, 0.0), (20.0, 100.0, 0.0)])
        assert path(99.0) == (100.0, 0.0)

    def test_interpolates_linearly(self):
        path = LinearPath([(0.0, 0.0, 0.0), (10.0, 100.0, 50.0)])
        x, y = path(5.0)
        assert x == pytest.approx(50.0)
        assert y == pytest.approx(25.0)

    def test_multi_segment(self):
        path = LinearPath([(0.0, 0.0, 0.0), (10.0, 100.0, 0.0),
                           (20.0, 100.0, 100.0)])
        assert path(15.0) == (pytest.approx(100.0), pytest.approx(50.0))

    def test_needs_two_waypoints(self):
        with pytest.raises(ConfigurationError):
            LinearPath([(0.0, 0.0, 0.0)])

    def test_times_must_increase(self):
        with pytest.raises(ConfigurationError):
            LinearPath([(5.0, 0.0, 0.0), (5.0, 1.0, 0.0)])


class TestWalkAway:
    def test_home_before_leaving(self):
        walk = WalkAway(t_leave=10.0, t_return=30.0, distance=100.0)
        assert walk(5.0) == (0.0, 0.0)

    def test_away_in_the_middle(self):
        walk = WalkAway(t_leave=10.0, t_return=30.0, distance=100.0,
                        walk_s=2.0)
        x, y = walk(20.0)
        assert x == pytest.approx(100.0)

    def test_home_after_returning(self):
        walk = WalkAway(t_leave=10.0, t_return=30.0, distance=100.0)
        assert walk(31.0) == (0.0, 0.0)

    def test_short_absence_still_works(self):
        # Absence shorter than twice the walking time: no dwell segment.
        walk = WalkAway(t_leave=10.0, t_return=14.0, distance=50.0,
                        walk_s=10.0)
        assert walk(12.0)[0] == pytest.approx(50.0)
        assert walk(14.5) == (0.0, 0.0)

    def test_return_must_follow_leave(self):
        with pytest.raises(ConfigurationError):
            WalkAway(t_leave=10.0, t_return=10.0)

    def test_custom_home(self):
        walk = WalkAway(t_leave=1.0, t_return=5.0, distance=10.0,
                        home=(7.0, 8.0))
        assert walk(0.0) == (7.0, 8.0)
