"""Host CPU cost model: serial occupancy, charge accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.hosts import (
    LAPTOP_PROFILE,
    PDA_PROFILE,
    SENSOR_PROFILE,
    HostProfile,
    NullCostMeter,
    SimHost,
)


class TestHostProfile:
    def test_packet_cost_combines_fixed_and_per_byte(self):
        profile = HostProfile("t", per_packet_s=1e-3, per_byte_s=1e-6,
                              sw_byte_s=0.0, match_base_s=0.0)
        assert profile.packet_cost(1000) == pytest.approx(2e-3)

    def test_copy_cost_uses_software_path(self):
        profile = HostProfile("t", per_packet_s=0.0, per_byte_s=1e-6,
                              sw_byte_s=1e-5, match_base_s=0.0)
        assert profile.copy_cost(100) == pytest.approx(1e-3)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            HostProfile("t", per_packet_s=-1.0, per_byte_s=0.0,
                        sw_byte_s=0.0, match_base_s=0.0)

    def test_pda_software_copies_cost_more_than_kernel_copies(self):
        # The paper's central observation, encoded as an invariant.
        assert PDA_PROFILE.sw_byte_s > 5 * PDA_PROFILE.per_byte_s

    def test_pda_slower_than_laptop(self):
        assert PDA_PROFILE.per_packet_s > LAPTOP_PROFILE.per_packet_s
        assert PDA_PROFILE.sw_byte_s > LAPTOP_PROFILE.sw_byte_s

    def test_sensor_profile_has_no_matching_cost(self):
        assert SENSOR_PROFILE.match_base_s == 0.0


class TestSimHost:
    def test_occupy_serialises_work(self, sim):
        host = SimHost(sim, LAPTOP_PROFILE, "h")
        first = host.occupy(1.0)
        second = host.occupy(2.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(3.0)

    def test_ready_time_after_idle_is_now(self, sim):
        host = SimHost(sim, LAPTOP_PROFILE, "h")
        host.occupy(1.0)
        sim.call_later(5.0, lambda: None)
        sim.run_until_idle()
        assert host.ready_time() == pytest.approx(5.0)

    def test_charge_packet_counts(self, sim):
        host = SimHost(sim, PDA_PROFILE, "h")
        host.charge_packet(100)
        host.charge_packet(200)
        assert host.packets_handled == 2
        assert host.cpu_seconds_used == pytest.approx(
            PDA_PROFILE.packet_cost(100) + PDA_PROFILE.packet_cost(200))

    def test_charge_copy_counts_bytes(self, sim):
        host = SimHost(sim, PDA_PROFILE, "h")
        host.charge_copy(500)
        assert host.bytes_copied == 500
        assert host.cpu_seconds_used == pytest.approx(
            PDA_PROFILE.copy_cost(500))

    def test_charge_match_uses_base_cost(self, sim):
        host = SimHost(sim, PDA_PROFILE, "h")
        host.charge_match()
        assert host.matches_charged == 1
        assert host.cpu_seconds_used == pytest.approx(PDA_PROFILE.match_base_s)

    def test_negative_charge_rejected(self, sim):
        host = SimHost(sim, LAPTOP_PROFILE, "h")
        with pytest.raises(ConfigurationError):
            host.charge_seconds(-0.5)

    def test_run_when_free_waits_for_cpu(self, sim):
        host = SimHost(sim, LAPTOP_PROFILE, "h")
        host.occupy(2.0)
        moments = []
        host.run_when_free(1.0, lambda: moments.append(sim.now()))
        sim.run_until_idle()
        assert moments == [pytest.approx(3.0)]


class TestNullCostMeter:
    def test_all_charges_are_noops(self):
        meter = NullCostMeter()
        meter.charge_seconds(5.0)
        meter.charge_copy(1000)
        meter.charge_packet(1000)
        meter.charge_match()
