"""The virtual-time scheduler: ordering, cancellation, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import PeriodicTimer, Simulator


class TestScheduling:
    def test_starts_at_zero(self, sim):
        assert sim.now() == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=100.0).now() == 100.0

    def test_call_later_advances_clock(self, sim):
        seen = []
        sim.call_later(5.0, lambda: seen.append(sim.now()))
        sim.run_until_idle()
        assert seen == [5.0]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.call_later(3.0, order.append, "c")
        sim.call_later(1.0, order.append, "a")
        sim.call_later(2.0, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self, sim):
        order = []
        for tag in "abcde":
            sim.call_at(1.0, order.append, tag)
        sim.run_until_idle()
        assert order == list("abcde")

    def test_call_soon_preserves_fifo(self, sim):
        order = []
        sim.call_soon(order.append, 1)
        sim.call_soon(order.append, 2)
        sim.call_soon(order.append, 3)
        sim.run_until_idle()
        assert order == [1, 2, 3]

    def test_cannot_schedule_in_past(self, sim):
        sim.call_later(1.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_later(-1.0, lambda: None)

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now()))
            sim.call_later(2.0, inner)

        def inner():
            seen.append(("inner", sim.now()))

        sim.call_later(1.0, outer)
        sim.run_until_idle()
        assert seen == [("outer", 1.0), ("inner", 3.0)]


class TestCancellation:
    def test_cancelled_timer_does_not_fire(self, sim):
        seen = []
        timer = sim.call_later(1.0, seen.append, "x")
        timer.cancel()
        sim.run_until_idle()
        assert seen == []

    def test_cancel_is_idempotent(self, sim):
        timer = sim.call_later(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        sim.run_until_idle()

    def test_pending_count_ignores_cancelled(self, sim):
        t1 = sim.call_later(1.0, lambda: None)
        sim.call_later(2.0, lambda: None)
        t1.cancel()
        assert sim.pending_count() == 1


class TestRun:
    def test_run_stops_at_target_time(self, sim):
        seen = []
        sim.call_later(1.0, seen.append, "a")
        sim.call_later(5.0, seen.append, "b")
        sim.run(2.0)
        assert seen == ["a"]
        assert sim.now() == 2.0

    def test_run_backwards_rejected(self, sim):
        sim.run(5.0)
        with pytest.raises(SimulationError):
            sim.run(1.0)

    def test_step_returns_false_when_idle(self, sim):
        assert sim.step() is False

    def test_step_runs_one_event(self, sim):
        seen = []
        sim.call_later(1.0, seen.append, 1)
        sim.call_later(2.0, seen.append, 2)
        assert sim.step() is True
        assert seen == [1]

    def test_run_until_idle_max_events_guard(self, sim):
        def rearm():
            sim.call_later(0.1, rearm)

        rearm()
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=50)

    def test_run_until_idle_max_time_guard(self, sim):
        def rearm():
            sim.call_later(1.0, rearm)

        rearm()
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_time=10.0)

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.call_soon(lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 5


class TestPeriodicTimer:
    def test_fires_repeatedly(self, sim):
        moments = []
        sim.every(1.0, lambda: moments.append(sim.now()))
        sim.run(3.5)
        assert moments == [1.0, 2.0, 3.0]

    def test_cancel_stops_it(self, sim):
        moments = []
        timer = sim.every(1.0, lambda: moments.append(sim.now()))
        sim.call_later(2.5, timer.cancel)
        sim.run(10.0)
        assert moments == [1.0, 2.0]
        assert timer.cancelled

    def test_interval_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None, ())

    def test_survives_callback_exception(self, sim):
        calls = []

        def flaky():
            calls.append(sim.now())
            if len(calls) == 1:
                raise ValueError("transient")

        sim.every(1.0, flaky)
        with pytest.raises(ValueError):
            sim.run(1.5)
        # The timer re-armed before raising, so the schedule continues.
        sim.run(2.5)
        assert calls == [1.0, 2.0]


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def trace():
            sim = Simulator()
            log = []
            sim.every(0.3, lambda: log.append(("tick", round(sim.now(), 6))))
            sim.call_later(0.5, lambda: log.append(("a", sim.now())))
            sim.call_later(0.5, lambda: log.append(("b", sim.now())))
            sim.run(2.0)
            return log

        assert trace() == trace()
