"""Named random streams: reproducibility and independence."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("x")
        b = RngRegistry(7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random()
                                                   for _ in range(10)]

    def test_different_names_different_streams(self):
        registry = RngRegistry(7)
        a = [registry.stream("net").random() for _ in range(5)]
        b = [registry.stream("vitals").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_different_streams(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_draw_on_one_stream_does_not_perturb_another(self):
        plain = RngRegistry(7)
        expected = [plain.stream("b").random() for _ in range(5)]

        perturbed = RngRegistry(7)
        perturbed.stream("a").random()          # extra draw elsewhere
        actual = [perturbed.stream("b").random() for _ in range(5)]
        assert actual == expected

    def test_fork_is_deterministic_and_distinct(self):
        base = RngRegistry(7)
        fork_a = base.fork("run-1")
        fork_b = RngRegistry(7).fork("run-1")
        assert fork_a.stream("x").random() == fork_b.stream("x").random()
        assert (RngRegistry(7).fork("run-1").stream("x").random()
                != RngRegistry(7).fork("run-2").stream("x").random())

    def test_seed_property(self):
        assert RngRegistry(42).seed == 42
