"""ServiceId: the 48-bit identifiers of paper Section IV."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.ids import (
    ServiceId,
    service_id_address,
    service_id_from_name,
    service_id_from_socket,
)


class TestServiceId:
    def test_is_an_int(self):
        assert ServiceId(42) == 42
        assert isinstance(ServiceId(42), int)

    def test_rejects_negative(self):
        with pytest.raises(AddressError):
            ServiceId(-1)

    def test_rejects_over_48_bits(self):
        with pytest.raises(AddressError):
            ServiceId(1 << 48)

    def test_accepts_max_48_bit_value(self):
        assert ServiceId((1 << 48) - 1) == (1 << 48) - 1

    def test_rejects_bool(self):
        with pytest.raises(AddressError):
            ServiceId(True)

    def test_rejects_non_int(self):
        with pytest.raises(AddressError):
            ServiceId("7")

    def test_str_is_colon_hex(self):
        assert str(ServiceId(0x0A0000011F90)) == "0a:00:00:01:1f:90"

    def test_repr_contains_hex_form(self):
        assert "0a:00:00:01:1f:90" in repr(ServiceId(0x0A0000011F90))

    def test_wire_roundtrip(self):
        original = ServiceId(0x123456789ABC)
        assert ServiceId.from_bytes48(original.to_bytes48()) == original

    def test_wire_form_is_six_bytes(self):
        assert len(ServiceId(7).to_bytes48()) == 6

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(AddressError):
            ServiceId.from_bytes48(b"\x00\x01")

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_wire_roundtrip_property(self, value):
        assert ServiceId.from_bytes48(ServiceId(value).to_bytes48()) == value


class TestSocketDerivation:
    def test_paper_scheme_address_high_port_low(self):
        sid = service_id_from_socket("10.0.0.1", 8080)
        assert int(sid) == (int.from_bytes(bytes([10, 0, 0, 1]), "big") << 16
                            | 8080)

    def test_inverts_back_to_address(self):
        sid = service_id_from_socket("192.168.7.9", 41200)
        assert service_id_address(sid) == ("192.168.7.9", 41200)

    def test_distinct_ports_distinct_ids(self):
        a = service_id_from_socket("127.0.0.1", 1000)
        b = service_id_from_socket("127.0.0.1", 1001)
        assert a != b

    def test_rejects_bad_port(self):
        with pytest.raises(AddressError):
            service_id_from_socket("127.0.0.1", 70000)

    def test_rejects_non_ipv4(self):
        with pytest.raises(AddressError):
            service_id_from_socket("not-an-ip", 80)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 0xFFFF))
    def test_roundtrip_property(self, a, b, port):
        host = f"{a}.{b}.1.2"
        assert service_id_address(service_id_from_socket(host, port)) == (
            host, port)


class TestNameDerivation:
    def test_deterministic(self):
        assert service_id_from_name("hr-1") == service_id_from_name("hr-1")

    def test_distinct_names_distinct_ids(self):
        names = [f"sensor-{i}" for i in range(200)]
        ids = {service_id_from_name(n) for n in names}
        assert len(ids) == len(names)

    def test_rejects_empty_name(self):
        with pytest.raises(AddressError):
            service_id_from_name("")

    def test_fits_48_bits(self):
        for name in ("a", "node", "x" * 100):
            assert 0 <= int(service_id_from_name(name)) < (1 << 48)
