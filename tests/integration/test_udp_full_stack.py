"""The full SMC stack over real UDP sockets on loopback.

This is the paper's actual deployment configuration (Section IV): UDP
datagrams, OS-chosen ports, broadcast on a known discovery port (stood in
by a peer list on loopback).  Driven by polling so the test stays
single-threaded; wall-clock timers come from the RealtimeScheduler.
"""

import time

import pytest

from repro.core.bus import EventBus
from repro.core.bootstrap import ProxyBootstrap
from repro.core.client import BusClient
from repro.discovery.agent import AgentConfig, DiscoveryAgent
from repro.discovery.service import DiscoveryConfig, DiscoveryService
from repro.matching.filters import Filter
from repro.sim.kernel import RealtimeScheduler
from repro.transport.endpoint import PacketEndpoint
from repro.transport.udp import UdpTransport


@pytest.fixture
def udp_cell():
    """A cell core + two device transports, all on real loopback UDP."""
    scheduler = RealtimeScheduler()
    core_t = UdpTransport()
    dev_t = UdpTransport()
    sub_t = UdpTransport()
    # Loopback has no broadcast: the device list stands in for the domain.
    core_t.set_broadcast_peers([dev_t.local_address, sub_t.local_address])

    core_ep = PacketEndpoint(core_t, scheduler)
    bus = EventBus(scheduler, name="udp-cell-bus")
    bootstrap = ProxyBootstrap(bus, core_ep)
    discovery = DiscoveryService(
        bus, core_ep, scheduler,
        DiscoveryConfig(cell_name="udp-cell", beacon_period_s=0.05,
                        heartbeat_period_s=0.05, silent_after_s=5.0,
                        purge_after_s=30.0, sweep_period_s=0.5))

    transports = [core_t, dev_t, sub_t]

    def pump(condition, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            scheduler.run_for(0.01)
            for transport in transports:
                transport.poll()
            if condition():
                return True
        return False

    yield scheduler, bus, discovery, dev_t, sub_t, pump
    for transport in transports:
        transport.close()


class TestUdpFullStack:
    def test_discovery_and_pubsub_over_real_sockets(self, udp_cell):
        scheduler, bus, discovery, dev_t, sub_t, pump = udp_cell
        discovery.start()

        dev_ep = PacketEndpoint(dev_t, scheduler)
        sub_ep = PacketEndpoint(sub_t, scheduler)
        dev_agent = DiscoveryAgent(dev_ep, scheduler,
                                   AgentConfig(name="dev",
                                               device_type="service",
                                               announce_retry_s=0.05))
        sub_agent = DiscoveryAgent(sub_ep, scheduler,
                                   AgentConfig(name="sub",
                                               device_type="service",
                                               announce_retry_s=0.05))
        dev_client = BusClient(dev_ep, scheduler, bus_address=None)
        sub_client = BusClient(sub_ep, scheduler, bus_address=None)
        dev_agent.on_joined = lambda cell, addr: setattr(
            dev_client, "bus_address", addr)
        sub_agent.on_joined = lambda cell, addr: setattr(
            sub_client, "bus_address", addr)
        dev_agent.start()
        sub_agent.start()

        assert pump(lambda: dev_agent.joined and sub_agent.joined), \
            "devices failed to join over UDP"
        # Proxy creation rides a call_soon callback; give the loop a turn.
        assert pump(lambda: len(bus.members()) == 2), "proxies not created"

        got = []
        sub_client.subscribe(Filter.where("health.hr", hr=(">", 100)),
                             got.append)
        assert pump(lambda: bus.stats.subscriptions_active >= 1)

        dev_client.publish("health.hr", {"hr": 140.0, "patient": "p"})
        dev_client.publish("health.hr", {"hr": 80.0, "patient": "p"})
        dev_client.publish("health.hr", {"hr": 150.0, "patient": "p"})
        assert pump(lambda: len(got) == 2), f"got {len(got)} events"
        assert [e.get("hr") for e in got] == [140.0, 150.0]
        discovery.stop()

    def test_leave_over_real_sockets(self, udp_cell):
        scheduler, bus, discovery, dev_t, sub_t, pump = udp_cell
        discovery.start()
        dev_ep = PacketEndpoint(dev_t, scheduler)
        agent = DiscoveryAgent(dev_ep, scheduler,
                               AgentConfig(name="dev", device_type="service",
                                           announce_retry_s=0.05))
        agent.start()
        assert pump(lambda: agent.joined)
        member = dev_ep.service_id
        assert pump(lambda: bus.is_member(member))
        agent.stop()          # polite LEAVE
        assert pump(lambda: not bus.is_member(member))
        discovery.stop()
