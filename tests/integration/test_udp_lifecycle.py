"""Full discovery lifecycle on real sockets, driven only by the scheduler.

Unlike test_udp_full_stack.py (which pumps transports manually via
``poll()``), every socket here is registered with the RealtimeScheduler's
selector — the deployment-mode configuration.  That makes this suite the
end-to-end regression for the broadcast-socket pollable fix: before it,
a scheduler-driven cell was deaf on the discovery plane.

Timers are aggressive (tens of milliseconds) so the whole
announce → admit → heartbeat → silent → recover → purge arc runs in
about a second of wall time.
"""

import time

import pytest

from repro.core.bus import EventBus
from repro.core.bootstrap import ProxyBootstrap
from repro.core.events import (
    MEMBER_RECOVERED_TYPE,
    MEMBER_SILENT_TYPE,
    NEW_MEMBER_TYPE,
    PURGE_MEMBER_TYPE,
)
from repro.discovery.agent import AgentConfig, DiscoveryAgent
from repro.discovery.membership import MemberState
from repro.discovery.service import DiscoveryConfig, DiscoveryService
from repro.matching.filters import Filter
from repro.sim.kernel import RealtimeScheduler
from repro.transport.endpoint import PacketEndpoint
from repro.transport.udp import UdpTransport


@pytest.fixture
def stack():
    """Cell core + one device, every socket selector-registered."""
    scheduler = RealtimeScheduler()
    core_t = UdpTransport(listen_for_broadcast=True, discovery_port=0,
                          directed_only=True)
    dev_t = UdpTransport()
    core_t.set_broadcast_peers([dev_t.local_address])
    scheduler.register_pollables(core_t.pollables())
    scheduler.register_pollables(dev_t.pollables())

    core_ep = PacketEndpoint(core_t, scheduler)
    bus = EventBus(scheduler, name="lifecycle-bus")
    ProxyBootstrap(bus, core_ep)
    service = DiscoveryService(
        bus, core_ep, scheduler,
        DiscoveryConfig(cell_name="lifecycle-cell",
                        beacon_period_s=0.04, heartbeat_period_s=0.04,
                        silent_after_s=0.25, purge_after_s=0.6,
                        sweep_period_s=0.05))
    agent = DiscoveryAgent(
        PacketEndpoint(dev_t, scheduler), scheduler,
        AgentConfig(name="dev", device_type="service",
                    announce_retry_s=0.04, beacon_timeout_s=5.0))

    log = []
    bus.subscribe_local(Filter.for_type_prefix("smc.member"),
                        lambda e: log.append(e.type))

    def wait(condition, timeout=5.0):
        # No manual transport.poll(): only the selector moves datagrams.
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            scheduler.run_for(0.02)
            if condition():
                return True
        return condition()

    yield scheduler, service, bus, agent, log, wait
    core_t.close()
    dev_t.close()


class TestSchedulerDrivenLifecycle:
    def test_full_arc_announce_to_purge(self, stack):
        scheduler, service, bus, agent, log, wait = stack
        service.start()
        agent.start()

        # announce -> admit: the device finds the cell through a real
        # BEACON on its unicast socket (directed broadcast domain).
        assert wait(lambda: agent.joined), "device never joined"
        member = agent.endpoint.service_id
        assert wait(lambda: bus.is_member(member)), "proxy never built"
        record = service.table.get(member)
        assert record.state is MemberState.ACTIVE

        # heartbeat: liveness flows with no manual pumping.
        seen = service.stats.heartbeats_seen
        assert wait(lambda: service.stats.heartbeats_seen > seen + 2), \
            "heartbeats not arriving through the selector"

        # silent: mute the device's heartbeats; the sweep masks it.
        agent._heartbeat_timer.cancel()
        assert wait(lambda: record.state is MemberState.SILENT), \
            "member never masked SILENT"
        assert MEMBER_SILENT_TYPE in log
        assert bus.is_member(member), "masking must not purge the proxy"

        # recover: heartbeats resume before the purge deadline.
        agent._start_heartbeats(0.04)
        assert wait(lambda: record.state is MemberState.ACTIVE), \
            "silent member never recovered"
        assert MEMBER_RECOVERED_TYPE in log

        # purge: go quiet for good this time.
        agent._heartbeat_timer.cancel()
        assert wait(lambda: member not in service.table), \
            "member never purged"
        assert wait(lambda: not bus.is_member(member)), \
            "proxy survived the purge"
        assert log.index(NEW_MEMBER_TYPE) < log.index(MEMBER_SILENT_TYPE) \
            < log.index(MEMBER_RECOVERED_TYPE) < log.index(PURGE_MEMBER_TYPE)
        service.stop()

    def test_beacons_arrive_via_broadcast_socket(self, stack):
        # The device-discovers-cell direction already proves the cell's
        # *directed* sends; this proves the cell's broadcast *listener*
        # drains under the selector: a device ANNOUNCEs at the discovery
        # port (the real broadcast-domain path) and still gets admitted.
        scheduler, service, bus, agent, log, wait = stack
        service.start()
        discovery_addr = ("127.0.0.1", service.endpoint.transport.discovery_port)
        agent.announce_to(discovery_addr)
        assert wait(lambda: service.stats.announces_seen >= 1), \
            "announce to the discovery port never drained"
        service.stop()
