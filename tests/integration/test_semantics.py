"""The paper's delivery semantics, end to end, under adverse networks.

Section II-C: "all events are delivered to each interested component
exactly once as long as the component remains a member of the SMC" and
"all events from a particular sender are delivered to each interested
receiver in the order sent".

These tests drive the full stack — clients, channels, proxies, bus —
through a lossy/reordering hub and assert the guarantees verbatim,
including property-based randomised loss patterns.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.filters import Filter
from repro.sim.kernel import Simulator
from repro.transport.inmem import InMemoryHub

from tests.core.conftest import CoreKit


def build_kit(window=1):
    sim = Simulator()
    hub = InMemoryHub(sim)
    kit = CoreKit(sim, hub, window=window)
    return sim, hub, kit


class TestExactlyOnceInOrder:
    @pytest.mark.parametrize("loss_rate", [0.0, 0.1, 0.3])
    def test_one_publisher_one_subscriber(self, loss_rate):
        sim, hub, kit = build_kit()
        subscriber = kit.client("sub")
        publisher = kit.client("pub")
        got = []
        subscriber.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()

        rng = random.Random(42)
        if loss_rate:
            hub.drop_filter = lambda src, dest, data: rng.random() > loss_rate
        sent = [publisher.publish("t", {"n": i}) for i in range(30)]
        sim.run(sim.now() + 300.0)
        assert [e.get("n") for e in got] == list(range(30))
        assert [e.seqno for e in got] == [e.seqno for e in sent]

    @pytest.mark.parametrize("window", [1, 4, 32])
    def test_windowed_channels_preserve_semantics(self, window):
        # The sliding-window/SACK transport must uphold Section II-C
        # verbatim at any window, under loss that forces retransmission
        # and reordering through the reorder buffer.
        sim, hub, kit = build_kit(window=window)
        subscriber = kit.client("sub")
        publisher = kit.client("pub")
        got = []
        subscriber.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()

        rng = random.Random(window)
        hub.drop_filter = lambda src, dest, data: rng.random() > 0.2
        for i in range(60):
            publisher.publish("t", {"n": i})
        sim.run(sim.now() + 300.0)
        assert [e.get("n") for e in got] == list(range(60))
        # The transport surfaces what the loss cost: retransmissions
        # happened, and the client can read them without creating state.
        stats = publisher.transport_stats()
        assert stats is not None
        assert stats.retransmissions > 0

    def test_two_publishers_interleaved(self):
        sim, hub, kit = build_kit()
        subscriber = kit.client("sub")
        pub_a = kit.client("pub-a")
        pub_b = kit.client("pub-b")
        got = []
        subscriber.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()

        rng = random.Random(7)
        hub.drop_filter = lambda src, dest, data: rng.random() > 0.15
        for i in range(20):
            pub_a.publish("t", {"src": "a", "n": i})
            pub_b.publish("t", {"src": "b", "n": i})
        sim.run(sim.now() + 300.0)

        # Per-sender FIFO: each sender's events arrive in its own order.
        a_order = [e.get("n") for e in got if e.get("src") == "a"]
        b_order = [e.get("n") for e in got if e.get("src") == "b"]
        assert a_order == list(range(20))
        assert b_order == list(range(20))
        # Exactly once overall.
        assert len(got) == 40

    def test_fanout_to_three_subscribers(self):
        sim, hub, kit = build_kit()
        subscribers = []
        for name in ("s1", "s2", "s3"):
            client = kit.client(name)
            inbox = []
            client.subscribe(Filter.where("t"), inbox.append)
            subscribers.append(inbox)
        publisher = kit.client("pub")
        sim.run_until_idle()

        rng = random.Random(3)
        hub.drop_filter = lambda src, dest, data: rng.random() > 0.2
        for i in range(15):
            publisher.publish("t", {"n": i})
        sim.run(sim.now() + 300.0)
        for inbox in subscribers:
            assert [e.get("n") for e in inbox] == list(range(15))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           loss=st.floats(min_value=0.0, max_value=0.4),
           count=st.integers(1, 25))
    def test_semantics_hold_for_random_loss_property(self, seed, loss,
                                                     count):
        sim, hub, kit = build_kit()
        subscriber = kit.client("sub")
        publisher = kit.client("pub")
        got = []
        subscriber.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()
        rng = random.Random(seed)
        hub.drop_filter = lambda src, dest, data: rng.random() > loss
        for i in range(count):
            publisher.publish("t", {"n": i})
        sim.run(sim.now() + 600.0)
        assert [e.get("n") for e in got] == list(range(count))


class TestMembershipScoping:
    def test_events_before_subscription_not_delivered(self):
        sim, hub, kit = build_kit()
        subscriber = kit.client("sub")
        publisher = kit.client("pub")
        publisher.publish("t", {"n": 0})
        sim.run_until_idle()
        got = []
        subscriber.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()
        publisher.publish("t", {"n": 1})
        sim.run_until_idle()
        assert [e.get("n") for e in got] == [1]

    def test_purged_subscriber_receives_nothing_further(self):
        sim, hub, kit = build_kit()
        subscriber = kit.client("sub")
        publisher = kit.client("pub")
        got = []
        subscriber.subscribe(Filter.where("t"), got.append)
        sim.run_until_idle()
        publisher.publish("t", {"n": 0})
        sim.run_until_idle()
        kit.purge(subscriber.service_id)
        publisher.publish("t", {"n": 1})
        sim.run(sim.now() + 30.0)
        assert [e.get("n") for e in got] == [0]

    def test_republish_after_purge_and_readmission(self):
        # Re-admission starts a new delivery session: a fresh seqno space
        # must be accepted (watermark cleared with the old proxy).
        sim, hub, kit = build_kit()
        publisher = kit.client("pub")
        got = []
        kit.bus.subscribe_local(Filter.where("t"), got.append)
        publisher.publish("t", {"n": 0})
        sim.run_until_idle()

        kit.purge(publisher.service_id)
        kit.admit(publisher.endpoint, name="pub")
        publisher.endpoint.reset_channel_to("core")   # device-side reset
        # The client's seqno counter keeps rising; that is fine too.
        publisher.publish("t", {"n": 1})
        sim.run(sim.now() + 30.0)
        assert [e.get("n") for e in got] == [0, 1]


class TestOrderingAcrossTheBus:
    def test_management_and_application_events_share_fifo(self):
        sim, hub, kit = build_kit()
        subscriber = kit.client("sub")
        got = []
        subscriber.subscribe([Filter.where("app.data"),
                              Filter.where("app.alarm")], got.append)
        sim.run_until_idle()
        publisher = kit.client("pub")
        publisher.publish("app.data", {"n": 1})
        publisher.publish("app.alarm", {"n": 2})
        publisher.publish("app.data", {"n": 3})
        sim.run_until_idle()
        assert [e.get("n") for e in got] == [1, 2, 3]

    def test_local_and_remote_subscribers_see_same_order(self):
        sim, hub, kit = build_kit()
        remote = kit.client("remote")
        remote_got, local_got = [], []
        remote.subscribe(Filter.where("t"), remote_got.append)
        kit.bus.subscribe_local(Filter.where("t"), local_got.append)
        sim.run_until_idle()
        publisher = kit.client("pub")
        for i in range(10):
            publisher.publish("t", {"n": i})
        sim.run(sim.now() + 60.0)
        assert [e.get("n") for e in local_got] == list(range(10))
        assert [e.get("n") for e in remote_got] == list(range(10))
