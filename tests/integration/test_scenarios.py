"""Full-stack scenarios over the simulated wireless testbed.

These are the paper's narrative scenarios run end to end: a body-area
network assembling itself, the nurse walking out of the room, a sensor's
battery dying, and policies steering actuators — all over simulated
Bluetooth with real radio range.
"""

import pytest

from repro.devices import (
    DrugPump,
    HeartRateSensor,
    NurseDisplay,
    VitalSignsGenerator,
)
from repro.devices.waveforms import tachycardia
from repro.ids import service_id_from_name
from repro.matching.filters import Filter
from repro.transport.packets import Packet, PacketType
from repro.sim.hosts import PDA_PROFILE, SENSOR_PROFILE, SimHost
from repro.sim.kernel import Simulator
from repro.sim.mobility import WalkAway
from repro.sim.radio import BLUETOOTH, SimNetwork
from repro.sim.rng import RngRegistry
from repro.smc.cell import CellConfig, SelfManagedCell
from repro.transport.endpoint import PacketEndpoint
from repro.transport.simnet import SimTransport

POLICIES = '''
role nurse : actuator.display ;
role pump : actuator.pump ;
role monitor : sensor.hr ;
inst oblig Tachy {
    on health.hr ;
    if hr > 130 ;
    do notify(msg="tachycardia", target=nurse) -> log(what="alarm") ;
    subject monitor ;
    target nurse ;
}
auth- NoSensorDosing { subject monitor ; target pump ; action * ; }
'''


@pytest.fixture
def ban(request):
    """A Bluetooth body-area network builder with a fresh simulator."""
    sim = Simulator()
    network = SimNetwork(sim, RngRegistry(2006))
    medium = network.add_medium("bt", BLUETOOTH)

    def node(name, profile=SENSOR_PROFILE, position=(0.0, 0.0)):
        network.attach(name, SimHost(sim, profile, name), medium, position)
        return PacketEndpoint(SimTransport(network, name), sim)

    return sim, network, node


def build_cell(sim, network, purge_after=15.0):
    network.attach("pda", SimHost(sim, PDA_PROFILE, "pda"),
                   network._media["bt"], (0.0, 0.0))
    cell = SelfManagedCell(SimTransport(network, "pda"), sim,
                           CellConfig(cell_name="patient", patient="p-1",
                                      purge_after_s=purge_after,
                                      silent_after_s=4.0))
    cell.load_policies(POLICIES)
    return cell


class TestBodyAreaScenario:
    def test_cell_self_assembles_and_alarms(self, ban):
        sim, network, node = ban
        cell = build_cell(sim, network)
        vitals = VitalSignsGenerator(RngRegistry(9), patient="p-1",
                                     episodes=[tachycardia(20.0, 20.0,
                                                           165.0)])
        sensor = HeartRateSensor(node("hr-1"), sim, "hr-1", vitals,
                                 period_s=1.0)
        display = NurseDisplay(node("nurse"), sim, "nurse")
        pump = DrugPump(node("pump"), sim, "pump", "p-1")
        cell.start()
        for device in (sensor, display, pump):
            device.start()
        sim.run(60.0)
        assert set(cell.member_names()) == {"hr-1", "nurse", "pump"}
        assert display.messages, "nurse should have been alerted"
        assert cell.log, "policy log should have entries"
        # The auth- policy kept the pump untouched.
        assert pump.delivered_total_ml() == 0.0

    def test_nurse_walkaway_masked(self, ban):
        sim, network, node = ban
        cell = build_cell(sim, network, purge_after=20.0)
        display = NurseDisplay(
            node("nurse", position=WalkAway(t_leave=30.0, t_return=40.0,
                                            distance=100.0)),
            sim, "nurse")
        cell.start()
        display.start()
        purges = []
        cell.subscribe(Filter.where("smc.member.purge"), purges.append)
        sim.run(70.0)
        assert purges == []                 # absence masked, not purged
        assert "nurse" in cell.member_names()

    def test_battery_death_purges_and_queued_events_dropped(self, ban):
        sim, network, node = ban
        cell = build_cell(sim, network, purge_after=10.0)
        display = NurseDisplay(node("nurse"), sim, "nurse")
        cell.start()
        display.start()
        sim.run(5.0)
        member = display.endpoint.service_id
        proxy = cell.bus.proxy_of(member)

        network.set_node_up("nurse", False)      # battery dies
        # Events queue for the dead display until the purge fires.
        for index in range(3):
            cell.publisher("policy").publish(
                "smc.cmd.notify", {"target": "nurse", "msg": f"m{index}"})
        sim.run(40.0)
        assert not cell.bus.is_member(member)
        assert proxy.destroyed
        assert proxy.stats.dropped_on_destroy >= 2

    def test_roaming_nurse_purge_drops_queues_at_every_address(self, ban):
        """Regression for the roaming-channel leak, driven by mobility.

        The nurse's pad walks out of Bluetooth range (WalkAway), then its
        traffic briefly re-appears from a corridor relay address with the
        same service id — the cell relearns the address, leaving channel
        state at *both* addresses.  When the purge finally fires, the
        proxy's close_channel must drop the queued events at the old
        address and the relay-side channel too; before the fix only the
        latest address was torn down and the old queue retransmitted
        forever.
        """
        sim, network, node = ban
        cell = build_cell(sim, network, purge_after=15.0)
        display = NurseDisplay(
            node("nurse", position=WalkAway(t_leave=20.0, t_return=90.0,
                                            distance=100.0, walk_s=2.0)),
            sim, "nurse")
        # An in-range relay node the roamed traffic will arrive from.
        relay = node("corridor").transport
        cell.start()
        display.start()
        sim.run(19.0)
        member = display.endpoint.service_id
        assert cell.bus.is_member(member)
        proxy = cell.bus.proxy_of(member)

        sim.run(25.0)                       # nurse is now out of range
        for index in range(3):              # events queue at "nurse"
            cell.publisher("policy").publish(
                "smc.cmd.notify", {"target": "nurse", "msg": f"m{index}"})
        sim.run(26.0)
        # The pad's traffic surfaces from the corridor with the same id.
        roamed = Packet(type=PacketType.DATA,
                        sender=service_id_from_name("nurse"), seq=1,
                        payload=b"roamed")
        relay.send("pda", roamed.encode())
        sim.run(27.0)
        endpoint = cell.endpoint
        assert endpoint.address_of(member) == "corridor"
        assert endpoint.channel_addresses(member) == {"nurse", "corridor"}

        sim.run(60.0)                       # silence -> purge
        assert not cell.bus.is_member(member)
        assert proxy.destroyed
        assert proxy.stats.dropped_on_destroy >= 3
        assert endpoint.channel_addresses(member) == set()
        assert endpoint.existing_channel("nurse") is None
        assert endpoint.existing_channel("corridor") is None

    def test_rejoin_after_battery_swap(self, ban):
        sim, network, node = ban
        cell = build_cell(sim, network, purge_after=8.0)
        display = NurseDisplay(node("nurse"), sim, "nurse")
        cell.start()
        display.start()
        sim.run(5.0)
        network.set_node_up("nurse", False)
        sim.run(30.0)
        assert "nurse" not in cell.member_names()
        network.set_node_up("nurse", True)
        sim.run(60.0)
        assert "nurse" in cell.member_names()
        # And the display works again after the new session.
        cell.publisher("policy").publish(
            "smc.cmd.notify", {"target": "nurse", "msg": "back online"})
        sim.run(70.0)
        assert display.last_message() == "back online"


class TestDeterminism:
    def test_identical_seeds_identical_outcomes(self):
        def run_once():
            sim = Simulator()
            network = SimNetwork(sim, RngRegistry(77))
            medium = network.add_medium("bt", BLUETOOTH)
            network.attach("pda", SimHost(sim, PDA_PROFILE, "pda"), medium)
            cell = SelfManagedCell(SimTransport(network, "pda"), sim,
                                   CellConfig(cell_name="d", patient="p"))
            cell.load_policies(POLICIES)
            network.attach("hr-1", SimHost(sim, SENSOR_PROFILE, "hr-1"),
                           medium)
            vitals = VitalSignsGenerator(RngRegistry(77), patient="p",
                                         episodes=[tachycardia(10.0, 20.0,
                                                               170.0)])
            sensor = HeartRateSensor(
                PacketEndpoint(SimTransport(network, "hr-1"), sim), sim,
                "hr-1", vitals, period_s=1.0)
            cell.start()
            sensor.start()
            sim.run(40.0)
            return (cell.bus.stats.published,
                    [round(t, 9) for t, *_ in cell.log])

        assert run_once() == run_once()
