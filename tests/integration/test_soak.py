"""Seeded soak: thousands of events, membership churn, exact accounting.

Drives a full SMC core (clients -> channels -> proxies -> bus) over the
in-memory simulated network for thousands of events while members are
purged and readmitted, mixing the per-event and batch publish pipelines,
plus hostile traffic (publications from a non-member) and bus-level
duplicates.  Asserts the paper's semantics verbatim:

* **exactly-once-while-member** — a subscriber receives every matching
  event published while it is a settled member, exactly once, and nothing
  from its purged windows;
* **per-sender FIFO** — every inbox sees each sender's events in
  strictly increasing seqno order;
* **counter consistency** — ``published == matched + unmatched +
  duplicates_dropped + from_unknown_member`` (every publication attempt
  is accounted exactly once).

The autonomic parametrisation re-runs the whole soak with the MAPE-K
control plane fully enabled (RTT controller, adaptive flush, shard
rebalancer) and ticking between every round, so RTO retuning, flush-cap
changes and a live hot-class split all land *mid-stream*, interleaved
with purges and readmissions — and none of the semantics above may move.
"""

import random

import pytest

from repro.autonomic import AutonomicConfig
from repro.core import protocol
from repro.core.events import Event, encode_event
from repro.core.protocol import BusOp
from repro.ids import service_id_from_name
from repro.matching.filters import Filter
from repro.sim.kernel import Simulator
from repro.transport.inmem import InMemoryHub

from tests.core.conftest import CoreKit

EVENT_TYPES = ("health.hr", "health.temp", "health.alarm", "mgmt.ping")

#: Application traffic only — keeps the ground-truth expectation free of
#: the smc.* membership events the churn itself publishes.
APP_FILTERS = [Filter.for_type_prefix("health."), Filter.where("mgmt.ping")]

ROUNDS = 40
PUBLISHERS = 5
EVENTS_PER_ROUND = (8, 14)       # rng-drawn per publisher per round


class SoakSubscriber:
    """One remote subscriber plus its ground-truth expectation."""

    def __init__(self, kit, name, filters):
        self.kit = kit
        self.name = name
        self.filters = filters
        self.client = kit.client(name)
        self.inbox = []
        self.expected = []
        self.member = True               # settled member right now
        self.client.subscribe(filters, self.inbox.append)
        kit.sim.run_until_idle()

    def purge(self):
        self.kit.purge(self.client.service_id)
        self.member = False

    def readmit(self):
        self.kit.admit(self.client.endpoint, name=self.name)
        self.client.endpoint.reset_channel_to("core")
        self.client.resubscribe_all()
        self.kit.sim.run_until_idle()
        self.member = True

    def expect(self, event):
        if self.member and any(f.matches(event.attrs_view())
                               for f in ([self.filters]
                                         if isinstance(self.filters, Filter)
                                         else self.filters)):
            self.expected.append((event.sender, event.seqno))

    def keys(self):
        return [(e.sender, e.seqno) for e in self.inbox]


def assert_per_sender_fifo(inbox):
    last = {}
    for event in inbox:
        assert event.seqno > last.get(event.sender, 0), (
            f"FIFO violated for sender {event.sender}: "
            f"{event.seqno} after {last.get(event.sender)}")
        last[event.sender] = event.seqno


#: Aggressive thresholds so every controller actually actuates within the
#: soak's small table and burst sizes: the point is semantics under live
#: actuation, not production tuning.
SOAK_AUTONOMIC = AutonomicConfig(
    flush_min_sent=1, flush_min_bytes=512,
    rebalance_hot_ratio=1.2, rebalance_min_fragments=2)


@pytest.mark.parametrize("seed,shards,autonomic", [
    (7, 1, None), (2026, 1, None),      # the classic single bus
    (7, 2, None), (2026, 8, None),      # sharded cores: semantics fixed
    (11, 8, SOAK_AUTONOMIC),            # all three loops actuating live
])
def test_soak_churn_exactly_once_fifo_and_counters(seed, shards, autonomic):
    rng = random.Random(seed)
    sim = Simulator()
    hub = InMemoryHub(sim)
    kit = CoreKit(sim, hub, shards=shards, autonomic=autonomic)

    publishers = [kit.client(f"pub-{i}") for i in range(PUBLISHERS)]
    pub_member = {p.service_id: True for p in publishers}
    sim.run_until_idle()

    # Subscribers: a never-churned catch-all, a content-filtered one, and
    # one that is purged and readmitted repeatedly.
    steady = SoakSubscriber(kit, "sub-steady", APP_FILTERS)
    vitals = SoakSubscriber(kit, "sub-vitals", Filter.where("health.hr"))
    churny = SoakSubscriber(kit, "sub-churny", APP_FILTERS)
    subscribers = [steady, vitals, churny]

    # A co-located service subscribing to the app traffic via the local API.
    local_inbox = []
    local_expected = []
    kit.bus.subscribe_local(APP_FILTERS, local_inbox.append)

    # Hostile traffic source: never admitted, publishes anyway.
    stranger = kit.device_endpoint("stranger")
    stranger_events = 0

    # Bus-level duplicate source: the same stamped event published twice.
    dup_sender = service_id_from_name("dup-sender")
    dup_seqno = 0
    duplicates_injected = 0

    def record_expectations(event):
        for subscriber in subscribers:
            subscriber.expect(event)
        if any(f.matches(event.attrs_view()) for f in APP_FILTERS):
            local_expected.append((event.sender, event.seqno))

    total_member_published = 0
    for round_no in range(ROUNDS):
        # Publish a burst from every currently-admitted publisher, half
        # through the per-event path, half through the batch pipeline.
        for publisher in publishers:
            if not pub_member[publisher.service_id]:
                continue
            count = rng.randint(*EVENTS_PER_ROUND)
            items = []
            for _ in range(count):
                event_type = rng.choice(EVENT_TYPES)
                items.append((event_type, {
                    "hr": rng.randint(40, 180),
                    "src": str(publisher.service_id)}))
            if rng.random() < 0.5:
                events = publisher.publish_batch(items)
            else:
                events = [publisher.publish(t, attrs) for t, attrs in items]
            total_member_published += len(events)
            for event in events:
                record_expectations(event)
        sim.run_until_idle()

        # Hostile and duplicate traffic, occasionally.
        if round_no % 5 == 1:
            event = Event("mgmt.ping", {"n": round_no},
                          stranger.service_id, stranger_events + 1, sim.now())
            frame = protocol.frame(BusOp.PUBLISH, encode_event(event))
            if rng.random() < 0.5:
                stranger.send_reliable("core", frame)
                stranger_events += 1
            else:
                event2 = Event("mgmt.ping", {"n": round_no},
                               stranger.service_id, stranger_events + 2,
                               sim.now())
                stranger.send_reliable("core", protocol.frame_batch(
                    [frame, protocol.frame(BusOp.PUBLISH,
                                           encode_event(event2))]))
                stranger_events += 2
            sim.run_until_idle()
        if round_no % 7 == 2:
            dup_seqno += 1
            event = Event("mgmt.ping", {"n": round_no}, dup_sender,
                          dup_seqno, sim.now())
            assert kit.bus.publish(event) is True
            record_expectations(event)
            assert kit.bus.publish(event) is False     # suppressed duplicate
            duplicates_injected += 1
            sim.run_until_idle()

        # Membership churn: everything is idle, so purges are race-free.
        if round_no % 8 == 3:
            churny.purge()
        elif round_no % 8 == 5:
            churny.readmit()
        if round_no % 11 == 4:
            victim = publishers[rng.randrange(len(publishers))]
            kit.purge(victim.service_id)
            pub_member[victim.service_id] = False
        elif round_no % 11 == 6:
            for publisher in publishers:
                if not pub_member[publisher.service_id]:
                    kit.admit(publisher.endpoint,
                              name=f"pub-re-{publisher.service_id}")
                    publisher.endpoint.reset_channel_to("core")
                    pub_member[publisher.service_id] = True
            sim.run_until_idle()
        sim.run_until_idle()

        # One control-plane round per soak round: actuations (RTO
        # retunes, flush resizes, the hot-class split) land between
        # bursts, interleaved with the membership churn above.
        if kit.autonomic is not None:
            kit.autonomic.tick()
            sim.run_until_idle()

    if not churny.member:
        churny.readmit()
    sim.run(sim.now() + 60.0)
    assert total_member_published > 2000, "soak must cover thousands of events"

    # -- exactly-once-while-member ----------------------------------------
    for subscriber in subscribers:
        assert len(set(subscriber.keys())) == len(subscriber.keys()), (
            f"{subscriber.name} saw a duplicate")
        assert sorted(subscriber.keys()) == sorted(subscriber.expected), (
            f"{subscriber.name}: delivered set != published-while-member set")
    assert sorted((e.sender, e.seqno) for e in local_inbox) \
        == sorted(local_expected)

    # -- per-sender FIFO ----------------------------------------------------
    for subscriber in subscribers:
        assert_per_sender_fifo(subscriber.inbox)
    assert_per_sender_fifo(local_inbox)

    # -- counter consistency ------------------------------------------------
    stats = kit.bus.stats
    assert stats.from_unknown_member == stranger_events
    assert stats.duplicates_dropped == duplicates_injected
    assert stats.published == (stats.matched + stats.unmatched
                               + stats.duplicates_dropped
                               + stats.from_unknown_member), stats
    assert stats.published > total_member_published

    # -- the autonomic run must actually have closed all three loops -----
    if kit.autonomic is not None:
        fired = {actuation.controller for actuation in kit.autonomic.audit}
        assert {"rtt", "flush", "rebalance"} <= fired, (
            f"controllers that actuated: {sorted(fired)}")
        splits = kit.bus.sharded.splits()
        assert splits, "rebalancer never split the hot class"
