"""Seeded chaos soak: the fault harness proving the lifecycle machinery.

One simulated cell, seven devices, and a :class:`~repro.sim.faults.
FaultPlan` that crashes a member mid-heartbeat-interval, freezes another
through a GC-pause window, flaps a third's link, corrupts/duplicates/
delays a publisher's datagrams, and drains a subscriber gracefully —
all at seeded instants, so a failure is a reproduction recipe.

Invariants asserted after the storm:

* every ghost is detected DEGRADED within the advertised bound
  (3 x heartbeat + one sweep period) and eventually purged;
* BusStats conservation — ``published == matched + unmatched +
  duplicates_dropped + from_unknown_member`` — survives every fault;
* a never-faulted subscriber receives every event from a never-faulted
  publisher exactly once, in FIFO order, and a mangled link degrades to
  *loss only* (the CRC eats corruption; dedup eats duplicates);
* the draining member's queue flushes completely before teardown:
  zero matched-event loss on planned departure.

A second class replays the core faults in deployment mode: real UDP
sockets, a sharded cell with match workers, a SIGKILLed worker and a
crashed device — same invariants.
"""

import os
import signal
import time

import pytest

from repro.core.bootstrap import ProxyBootstrap
from repro.core.bus import EventBus
from repro.core.client import BusClient
from repro.core.events import PURGE_MEMBER_TYPE
from repro.discovery.agent import AgentConfig, DiscoveryAgent
from repro.discovery.lifecycle import LifecycleState
from repro.discovery.service import DiscoveryConfig, DiscoveryService
from repro.matching.filters import Filter
from repro.sim.faults import FaultPlan, HubFaults
from repro.smc.cell import CellConfig

CHAOS_EVENTS = 200     # steady publisher, clean link
NOISE_EVENTS = 100     # noisy publisher, mangled link


def assert_conservation(stats):
    assert stats.published == (stats.matched + stats.unmatched
                               + stats.duplicates_dropped
                               + stats.from_unknown_member), stats


class ChaosCell:
    """A cell plus named devices on one hub, with fast lifecycle timers."""

    HEARTBEAT_S = 0.2
    SWEEP_S = 0.1

    def __init__(self, sim, endpoints):
        self.sim = sim
        core = endpoints("core")
        self.bus = EventBus(sim)
        ProxyBootstrap(self.bus, core)
        self.service = DiscoveryService(
            self.bus, core, sim,
            DiscoveryConfig(cell_name="chaos-ward",
                            beacon_period_s=0.2,
                            heartbeat_period_s=self.HEARTBEAT_S,
                            silent_after_s=0.6, purge_after_s=2.0,
                            sweep_period_s=self.SWEEP_S,
                            drain_deadline_s=5.0))
        self.agents = {}
        self.clients = {}
        self.purges = []            # (name, reason)
        self.bus.subscribe_local(
            Filter.where(PURGE_MEMBER_TYPE),
            lambda e: self.purges.append((e.get("name"), e.get("reason"))))
        self._endpoints = endpoints

    def device(self, name, with_client=False):
        endpoint = self._endpoints(name)
        agent = DiscoveryAgent(endpoint, self.sim,
                               AgentConfig(name=name, device_type="service",
                                           beacon_timeout_s=3.0))
        self.agents[name] = agent
        if with_client:
            client = BusClient(endpoint, self.sim, None)
            agent.on_joined = (lambda _c, addr, c=client:
                               setattr(c, "bus_address", addr))
            self.clients[name] = client
        return agent

    def start(self):
        self.service.start()
        for agent in self.agents.values():
            agent.start()

    def record(self, name):
        return self.service.table.get(self.agents[name].endpoint.service_id)

    def purge_reasons(self, name):
        return [reason for who, reason in self.purges if who == name]


def test_chaos_soak_detection_conservation_and_drain(sim, hub, endpoints):
    cell = ChaosCell(sim, endpoints)
    cell.device("steady-pub", with_client=True)
    cell.device("steady-sub", with_client=True)
    cell.device("drainer", with_client=True)
    cell.device("ghost", with_client=True)
    cell.device("sleeper")
    cell.device("walker")
    cell.device("noisy", with_client=True)
    cell.start()

    # Everyone joins on a clean network, then the subscriptions settle.
    sim.run(2.5)
    assert all(agent.joined for agent in cell.agents.values())
    chaos_inbox, noise_inbox, drain_inbox, ghost_inbox = [], [], [], []
    cell.clients["steady-sub"].subscribe(
        Filter.where("chaos.data"), lambda e: chaos_inbox.append(e.get("n")))
    cell.clients["steady-sub"].subscribe(
        Filter.where("noise.data"), lambda e: noise_inbox.append(e.get("n")))
    cell.clients["drainer"].subscribe(
        Filter.where("chaos.data"), lambda e: drain_inbox.append(e.get("n")))
    cell.clients["ghost"].subscribe(
        Filter.where("chaos.data"), lambda e: ghost_inbox.append(e.get("n")))
    ghost_proxy = cell.bus.proxy_of(cell.agents["ghost"].endpoint.service_id)
    drain_proxy = cell.bus.proxy_of(
        cell.agents["drainer"].endpoint.service_id)

    # The traffic: a clean stream and a mangled stream, both seqno'd.
    chaos_sent, noise_sent = [], []

    def publish(client_name, event_type, sent, n):
        event = cell.clients[client_name].publish(event_type, {"n": n})
        if event is not None:
            sent.append(n)

    for n in range(CHAOS_EVENTS):
        sim.call_at(3.0 + n * 0.05, publish, "steady-pub", "chaos.data",
                    chaos_sent, n)
    for n in range(NOISE_EVENTS):
        sim.call_at(4.0 + n * 0.1, publish, "noisy", "noise.data",
                    noise_sent, n)

    # The storm, compiled up-front from one seed.
    faults = HubFaults(hub, rng_seed=1337)
    plan = FaultPlan(sim, seed=1337)
    plan.at(4.0, "mangle core|noisy",
            lambda: faults.mangle("core", "noisy", corrupt_rate=0.1,
                                  duplicate_rate=0.1, delay_s=0.01))
    plan.crash(plan.jittered(5.0, 0.2), faults, "ghost")
    plan.freeze(6.0, faults, "sleeper", 1.2)
    plan.flap(8.0, faults, "core", "walker", 0.3, 3)
    plan.at(14.5, "clear mangle core|noisy",
            lambda: faults.clear_mangle("core", "noisy"))
    plan.at(14.5, "drain drainer",
            lambda: cell.agents["drainer"].leave_gracefully())
    assert len(plan.log) == 12          # the full reproduction recipe

    sim.run(25.0)

    # -- ghost detection within the advertised bound -----------------------
    threshold = cell.service.config.degraded_threshold_s
    assert cell.service.degraded_latencies, "no degradation ever detected"
    assert all(lat <= threshold + cell.SWEEP_S + 1e-9
               for lat in cell.service.degraded_latencies)
    assert cell.service.stats.degradations >= 2     # ghost and sleeper
    assert cell.purge_reasons("ghost") == ["timeout"]
    assert cell.record("ghost") is None
    # The ghost's queued deliveries died with its proxy — that is the
    # crash cost, and it is confined to the crashed member.
    assert ghost_proxy.destroyed
    assert ghost_proxy.stats.dropped_on_destroy > 0

    # -- transient victims recovered ---------------------------------------
    assert cell.record("sleeper").lifecycle is LifecycleState.HEALTHY
    assert cell.record("walker").lifecycle is LifecycleState.HEALTHY
    assert cell.agents["sleeper"].joined
    assert cell.agents["walker"].joined

    # -- healthy members saw no loss, no duplication, no reordering --------
    assert chaos_sent == list(range(CHAOS_EVENTS))
    assert chaos_inbox == list(range(CHAOS_EVENTS))
    assert noise_sent == list(range(NOISE_EVENTS))
    assert sorted(noise_inbox) == list(range(NOISE_EVENTS))
    assert len(noise_inbox) == len(set(noise_inbox))
    assert faults.injected > 0, "the mangle never actuated"
    assert hub.datagrams_dropped > 0, "the storm never dropped a datagram"

    # -- the graceful departure lost nothing -------------------------------
    assert cell.purge_reasons("drainer") == ["drain"]
    assert drain_inbox == list(range(CHAOS_EVENTS))
    assert drain_proxy.destroyed
    assert drain_proxy.stats.dropped_on_destroy == 0
    assert cell.service.stats.drains_completed == 1
    assert cell.service.stats.drain_timeouts == 0

    # -- exact accounting through it all -----------------------------------
    assert_conservation(cell.bus.stats)


def test_chaos_soak_is_deterministic(sim, hub, endpoints):
    """Same seed, same storm: the plan's log is the reproduction recipe."""
    faults = HubFaults(hub, rng_seed=7)
    plan = FaultPlan(sim, seed=7)
    instants = [plan.jittered(1.0, 0.5) for _ in range(5)]
    plan2 = FaultPlan(sim, seed=7)
    assert [plan2.jittered(1.0, 0.5) for _ in range(5)] == instants
    payload = bytes(range(64))
    faults.mangle("a", "b", corrupt_rate=1.0)
    faults2 = HubFaults(hub, rng_seed=7)
    faults2.mangle("a", "b", corrupt_rate=1.0)
    assert faults._rng.random() == faults2._rng.random()


class TestUdpChaos:
    """The same faults on real sockets: sharded cell, match workers."""

    @pytest.fixture
    def server(self):
        from repro.deploy.server import CellServer, ServerConfig
        config = ServerConfig(
            cell=CellConfig(cell_name="chaos-udp", shards=4,
                            beacon_period_s=0.05, heartbeat_period_s=0.05,
                            silent_after_s=0.3, purge_after_s=1.5,
                            sweep_period_s=0.05),
            discovery_port=0, guard_period_s=0.05, workers=2)
        cell_server = CellServer(config)
        cell_server.start()
        yield cell_server
        cell_server.close()

    @staticmethod
    def wait(server, condition, timeout=15.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            server.run_for(0.02)
            if condition():
                return True
        return condition()

    def test_worker_sigkill_and_device_crash_mid_stream(self, server):
        from repro.deploy.harness import LoopbackDevice
        devices = {
            name: LoopbackDevice(
                server.scheduler, server.address,
                AgentConfig(name=name, device_type="service",
                            announce_retry_s=0.05, beacon_timeout_s=10.0))
            for name in ("chaos-pub", "chaos-sub", "chaos-ghost")
        }
        try:
            for device in devices.values():
                device.start()
            assert self.wait(server, lambda: all(
                d.joined for d in devices.values())), "devices never joined"

            inbox = []
            devices["chaos-sub"].subscribe(
                Filter.where("ward.hr"), lambda e: inbox.append(e.get("n")))
            server.run_for(0.2)

            for n in range(30):
                devices["chaos-pub"].publish("ward.hr", {"n": n})
                server.run_for(0.01)

            # SIGKILL a match worker mid-stream; the guard respawns it and
            # the stream continues.
            victim = server.worker_pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            for n in range(30, 60):
                devices["chaos-pub"].publish("ward.hr", {"n": n})
                server.run_for(0.01)
            assert self.wait(
                server,
                lambda: server.worker_pool.stats.respawns >= 1), \
                "worker never respawned"
            assert victim not in server.worker_pool.worker_pids()

            assert self.wait(server, lambda: len(inbox) == 60), \
                f"subscriber saw {len(inbox)}/60 events"
            assert sorted(inbox) == list(range(60))
            assert len(set(inbox)) == 60

            # A device crashes without a word: degraded, then purged.
            discovery = server.cell.discovery
            ghost_id = devices["chaos-ghost"].service_id
            devices["chaos-ghost"].crash()
            assert self.wait(
                server, lambda: discovery.stats.degradations >= 1), \
                "crash never detected DEGRADED"
            threshold = discovery.config.degraded_threshold_s
            assert all(lat <= threshold + discovery.config.sweep_period_s
                       + 0.5           # realtime scheduler slop
                       for lat in discovery.degraded_latencies)
            assert self.wait(
                server, lambda: discovery.table.get(ghost_id) is None), \
                "ghost never purged"

            # A planned departure drains cleanly even on real sockets.
            devices["chaos-pub"].leave_gracefully()
            assert self.wait(
                server,
                lambda: discovery.stats.drains_completed >= 1), \
                "graceful drain never completed"
            assert discovery.stats.drain_timeouts == 0

            assert_conservation(server.cell.bus.stats)
        finally:
            for device in devices.values():
                device.close()
