#!/usr/bin/env python3
"""Deployment mode: the SMC cell on real UDP sockets and wall-clock time.

Every other example runs on the virtual clock — the Simulator dispatches
timers instantly and SimTransport moves datagrams in-process.  This one
runs the *same* cell (same EventBus, same DiscoveryService, same policy
and autonomic planes) on the paper's actual deployment configuration:
real UDP sockets with OS-chosen ports, driven by a RealtimeScheduler
whose selector loop interleaves wall-clock timers with socket reads.
That symmetry is the point of the scheduler abstraction: nothing in the
protocol stack knows which clock it is on.

What this demo stands up, all on loopback:

* a :class:`~repro.deploy.server.CellServer` — the cell core with edge
  admission (capacity NAKs), per-peer backpressure sweeps and a healthz
  TCP endpoint serving live JSON snapshots;
* N :class:`~repro.deploy.harness.LoopbackDevice` clients, each with its
  own real UDP socket, joining by rendezvous (loopback has no broadcast
  domain; the server's directed beacons keep them fed after admission);
* a pub/sub workload: every device publishes heart-rate vitals, one
  subscriber device holds an alert rule, and the tachycardia events flow
  device → cell → matching engine → proxy → device over real sockets.

Run:  PYTHONPATH=src python examples/udp_cell.py [--clients N]
          [--duration SECONDS] [--batch N] [--shards N] [--workers N]
          [--selftest]

``--batch N`` makes every sensor coalesce N readings into one BATCH
frame (the client-harness half of the batch pipeline); ``--shards`` /
``--workers`` stand the cell up on a sharded bus with that many match
worker processes.  ``--selftest`` asserts full membership and a
throughput floor, then drains the cell with polite LEAVEs — this is what
the CI smoke job runs with 100 clients.
"""

import argparse
import sys
import time

from repro.deploy import CellServer, ServerConfig, make_devices, read_healthz
from repro.matching.filters import Filter
from repro.smc.cell import CellConfig


def build_server(max_members: int, shards: int = 1,
                 workers: int = 0) -> CellServer:
    config = ServerConfig(
        cell=CellConfig(
            cell_name="udp-ward",
            beacon_period_s=0.2,
            heartbeat_period_s=0.2,
            silent_after_s=2.0,
            purge_after_s=8.0,
            sweep_period_s=0.25,
            shards=shards,
        ),
        discovery_port=0,          # OS-chosen: no collisions between runs
        max_members=max_members,
        guard_period_s=0.25,
        workers=workers,
    )
    return CellServer(config)


def wait_until(server: CellServer, condition, timeout_s: float) -> bool:
    """Pump the run loop until ``condition()`` holds (or the deadline)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        server.run_for(0.05)
        if condition():
            return True
    return condition()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=10,
                        help="device sockets to join (default 10)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="publishing phase length in seconds")
    parser.add_argument("--batch", type=int, default=0,
                        help="readings each sensor coalesces into one "
                             "BATCH frame (0 = one packet per reading)")
    parser.add_argument("--shards", type=int, default=1,
                        help="matching shards on the cell core")
    parser.add_argument("--workers", type=int, default=0,
                        help="match worker processes (requires --shards > 1)")
    parser.add_argument("--selftest", action="store_true",
                        help="assert membership and throughput, exit 1 on "
                             "failure (CI mode)")
    args = parser.parse_args()

    server = build_server(max_members=args.clients + 1,
                          shards=args.shards, workers=args.workers)
    server.start()
    print(f"cell core on udp {server.address[0]}:{server.address[1]}, "
          f"healthz on http://{server.healthz_address[0]}:"
          f"{server.healthz_address[1]}/")

    # One extra device acts as the nurse display: it subscribes to the
    # alert rule every sensor's vitals are matched against.
    devices = make_devices(server.scheduler, server.address,
                           args.clients + 1, announce_retry_s=0.2,
                           batch=args.batch)
    sensors, display = devices[:-1], devices[-1]
    for device in devices:
        device.start()

    if not wait_until(server, lambda: all(d.joined for d in devices),
                      timeout_s=30.0):
        joined = sum(d.joined for d in devices)
        print(f"FAIL: only {joined}/{len(devices)} devices joined",
              file=sys.stderr)
        return 1
    # Proxy creation rides the New Member event; wait for the bus side.
    wait_until(server, lambda: len(server.cell.bus.members()) == len(devices),
               timeout_s=10.0)
    print(f"{len(devices)} devices joined "
          f"({len(server.cell.bus.members())} proxies live)")

    alerts: list = []
    display.subscribe(Filter.where("vitals.hr", hr=(">", 120)),
                      alerts.append)
    wait_until(server,
               lambda: server.cell.bus.stats.subscriptions_active >= 1,
               timeout_s=5.0)

    # Publishing phase: every sensor alternates normal and tachycardic
    # readings; only the latter should reach the display.  With --batch,
    # readings buffer client-side and ride BATCH frames.
    deadline = time.monotonic() + args.duration
    beat = 0
    while time.monotonic() < deadline:
        for index, sensor in enumerate(sensors):
            hr = 140.0 if (beat + index) % 2 == 0 else 80.0
            sensor.publish("vitals.hr", {"hr": hr, "patient": sensor.name})
        beat += 1
        server.run_for(0.02)
    for sensor in sensors:
        sensor.flush()                     # partial buffers out the door
    # ClientStats counts what actually left each socket, batched or not.
    published = sum(sensor.client.stats.published for sensor in sensors)
    # Drain phase: let retransmissions and deliveries settle.
    expected_alerts = published // 2       # every other reading is > 120
    wait_until(server, lambda: len(alerts) >= expected_alerts,
               timeout_s=10.0)

    snapshot = read_healthz(server.healthz_address,
                            pump=lambda: server.run_for(0.2))
    rate = published / max(args.duration, 1e-9)
    print(f"published {published} events in {args.duration:.1f}s "
          f"({rate:.0f}/s), {len(alerts)} alerts delivered")
    print(f"healthz: members={snapshot['member_count']} "
          f"bus.matched={snapshot['bus']['matched']} "
          f"channels.retransmissions="
          f"{snapshot['channels']['retransmissions']}")
    if "workers" in snapshot:
        pool = snapshot["workers"]
        print(f"workers: alive={sum(pool['alive'])}/{pool['workers']} "
              f"plans={pool['plans']} respawns={pool['respawns']} "
              f"ipc_out={pool['ipc_bytes_out']}B "
              f"events={pool['worker_events']}")

    failures = []
    if args.selftest:
        if snapshot["member_count"] != len(devices):
            failures.append(f"membership {snapshot['member_count']} != "
                            f"{len(devices)}")
        if published < 50:
            failures.append(f"throughput floor: published only {published} "
                            f"events in {args.duration:.1f}s")
        if len(alerts) < expected_alerts:
            failures.append(f"deliveries: {len(alerts)} alerts < "
                            f"{expected_alerts} expected")

    # Clean shutdown: polite LEAVEs drain the membership table.
    for device in devices:
        device.leave()
    wait_until(server, lambda: len(server.cell.discovery.table) == 0,
               timeout_s=10.0)
    remaining = len(server.cell.discovery.table)
    print(f"after LEAVE drain: {remaining} members remain")
    if args.selftest and remaining:
        failures.append(f"{remaining} members survived the LEAVE drain")

    for device in devices:
        device.close()
    server.close()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.selftest:
        print("selftest passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
