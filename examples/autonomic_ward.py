#!/usr/bin/env python3
"""A skewed hospital ward self-healing: the autonomic control plane live.

Every alert rule in this ward constrains the same three attributes —
``type``, the vital and the patient — so static CRC routing hashes the
*entire* subscription table onto one shard of the sharded bus.  Nurses
re-tune alert thresholds constantly (subscription churn), and every
re-tune cold-starts that one overloaded shard while seven others idle.

The MAPE-K manager watches shard loads, notices the pin, and splits the
hot class by the ``patient`` equality bucket — live, mid-traffic, with
the decision on its audit log.  Deliveries are identical before and
after (the differential suite proves it); only the load distribution and
the churn cost change.

Run:  PYTHONPATH=src python examples/autonomic_ward.py
"""

import random

from repro.autonomic import AutonomicConfig, AutonomicManager, ShardRebalancer
from repro.core.sharding import ShardedEventBus
from repro.matching.filters import Constraint, Filter, Op
from repro.sim.kernel import Simulator


def alert_rule(rng: random.Random) -> Filter:
    """One nurse-station alert: a vitals type, a threshold, a patient."""
    return Filter([
        Constraint("type", Op.EQ, f"vitals.{rng.choice('abcd')}"),
        Constraint("hr", rng.choice([Op.GT, Op.LT]), rng.randint(40, 180)),
        Constraint("patient", Op.EQ, f"p-{rng.randint(1, 40)}"),
    ])


def main() -> None:
    rng = random.Random(2006)
    sim = Simulator()
    bus = ShardedEventBus(sim, shard_count=8)
    alarms: list = []
    for _ in range(2000):
        bus.subscribe_local([alert_rule(rng)], alarms.append)

    print("ward of 2000 alert rules, one attribute class:")
    print(f"  shard loads (static CRC routing): {bus.shard_loads()}")

    # The control plane: just the rebalancer here — RTT and flush
    # control need network hops, see CellConfig.autonomic for the full
    # cell wiring.
    manager = AutonomicManager(
        sim, None,
        [ShardRebalancer(bus.sharded, hot_ratio=2.0, min_fragments=64)],
        config=AutonomicConfig())

    monitor = bus.local_publisher("vitals-pack")

    def burst(n: int = 200) -> None:
        monitor.publish_batch([
            (f"vitals.{rng.choice('abcd')}",
             {"hr": rng.randint(40, 180),
              "patient": f"p-{rng.randint(1, 40)}"})
            for _ in range(n)])
        sim.run_until_idle()

    burst()
    before = len(alarms)
    print(f"  first burst: {before} alarms delivered")

    # One manager tick: monitor -> analyze -> plan -> execute.
    for actuation in manager.tick():
        print(f"  actuation: {actuation.action} {actuation.target} "
              f"(bucket={actuation.detail['bucket_name']!r}, "
              f"moved {actuation.detail['moved']} fragments)")
    print(f"  shard loads after the split:      {bus.shard_loads()}")

    # Traffic continues, semantics unchanged — and churn now cold-starts
    # one bucket shard instead of the whole ward.
    burst()
    print(f"  second burst: {len(alarms) - before} alarms delivered")
    print(f"  audit log: {len(manager.audit)} actuation(s) on record")
    for actuation in manager.audit:
        print(f"    t={actuation.time:.1f}s {actuation.controller} "
              f"{actuation.action} -> {actuation.target}")


if __name__ == "__main__":
    main()
