#!/usr/bin/env python3
"""Event correlation: from noisy readings to clinical episodes.

The paper's introduction motivates exactly this: "analysis and data mining
of the monitored information can be used to predict potential problems
(such as a possible heart attack for a specific patient being monitored)
and to generate a warning".  One tachycardia reading is an artefact; a
sustained elevated trend is an episode.

This example wires the cell's :class:`~repro.core.correlate.EventCorrelator`
between raw sensor events and the policy service:

* a *trend rule* turns sustained high heart rate into a
  ``health.hr.episode`` composite event;
* an *absence rule* watches for a silent sensor (is the probe detached?);
* policies react to the *composite* events only — no alarm fatigue from
  single noisy readings.

Run:  python examples/correlated_alarms.py
"""

from repro import Filter, Simulator
from repro.devices import HeartRateSensor, NurseDisplay, VitalSignsGenerator
from repro.devices.waveforms import tachycardia
from repro.sim import (
    PDA_PROFILE,
    SENSOR_PROFILE,
    RngRegistry,
    SimHost,
    SimNetwork,
    WIFI_11B,
)
from repro.smc import CellConfig, SelfManagedCell
from repro.transport.endpoint import PacketEndpoint
from repro.transport.simnet import SimTransport

POLICIES = """
role nurse : actuator.display ;
role monitor : sensor.hr ;

// React to the correlated episode, not to raw readings.
inst oblig SustainedTachycardia {
    on health.hr.episode ;
    do notify(msg="sustained tachycardia episode", mean=$mean, target=nurse)
       -> log(what="episode", mean=$mean) ;
    subject monitor ;
    target nurse ;
}

inst oblig SensorSilent {
    on smc.correlated.hr-watchdog ;
    do notify(msg="heart-rate sensor silent", target=nurse)
       -> log(what="sensor-silent") ;
    subject monitor ;
    target nurse ;
}
"""


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(31)
    network = SimNetwork(sim, rng)
    wifi = network.add_medium("wifi", WIFI_11B)

    network.attach("pda", SimHost(sim, PDA_PROFILE, "pda"), wifi, (0.0, 0.0))
    cell = SelfManagedCell(SimTransport(network, "pda"), sim,
                           CellConfig(cell_name="ward-2", patient="p-31"))
    cell.load_policies(POLICIES)

    # Correlation rules: raw health.hr -> composite events.
    cell.correlator.add_trend_rule(
        "hr-trend", Filter.where("health.hr"), attribute="hr",
        level=120.0, window_s=15.0, min_samples=8,
        emit_type="health.hr.episode")
    cell.correlator.add_absence_rule(
        "hr-watchdog", Filter.where("health.hr"), timeout_s=20.0)

    vitals = VitalSignsGenerator(rng, patient="p-31", episodes=[
        tachycardia(start_s=30.0, duration_s=45.0, peak_bpm=155.0),
    ])

    def endpoint(name):
        network.attach(name, SimHost(sim, SENSOR_PROFILE, name), wifi,
                       (0.0, 0.0))
        return PacketEndpoint(SimTransport(network, name), sim)

    sensor = HeartRateSensor(endpoint("hr-1"), sim, "hr-1", vitals,
                             period_s=1.0, threshold_bpm=999.0)
    display = NurseDisplay(endpoint("nurse"), sim, "nurse")
    cell.start()
    sensor.start()
    display.start()

    # Phase 1: the tachycardia episode (t=30..75).
    sim.run(100.0)
    # Phase 2: the sensor's battery dies -> the watchdog fires.
    network.set_node_up("hr-1", False)
    sim.run(150.0)

    raw_readings = cell.bus.stats.published
    print(f"raw events published: {raw_readings}")
    print(f"composite events: {cell.correlator.stats.composites_published}")
    print("\n== nurse display (composite alarms only) ==")
    for moment, message in display.messages[:8]:
        print(f"  t={moment:7.2f}s  {message}")
    print("\n== cell log ==")
    for moment, _target, params in cell.log[:8]:
        print(f"  t={moment:7.2f}s  {params}")

    kinds = {params.get("what") for _, _, params in cell.log}
    assert "episode" in kinds, "trend rule should have fired"
    assert "sensor-silent" in kinds, "watchdog should have fired"
    # Far fewer alarms than raw readings: that is the point.
    assert len(display.messages) < raw_readings / 5

if __name__ == "__main__":
    main()
