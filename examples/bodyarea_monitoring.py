#!/usr/bin/env python3
"""The paper's motivating scenario: a body-area network Self-Managed Cell.

A patient's PDA runs the SMC core (event bus + discovery + policy).  Body
sensors, a drug pump and the nurse's display join over simulated Bluetooth
as they come in range.  Policies deployed on the PDA:

* tachycardia  -> notify the nurse and raise the sensor's alarm threshold;
* desaturation -> notify the nurse;
* pump safety  -> an ``auth-`` policy forbids sensors from commanding the
  pump directly; only the cell's clinician role may dose.

The nurse then walks out of radio range for a short while (the paper's
transient-disconnection scenario) — her proxy and queued events survive —
and finally the heart-rate sensor's battery dies and it is purged.

Run:  python examples/bodyarea_monitoring.py
"""

from repro import Filter, Simulator
from repro.devices import (
    DrugPump,
    HeartRateSensor,
    NurseDisplay,
    SpO2Sensor,
    TemperatureSensor,
    VitalSignsGenerator,
)
from repro.devices.waveforms import desaturation, tachycardia
from repro.sim import (
    BLUETOOTH,
    PDA_PROFILE,
    SENSOR_PROFILE,
    RngRegistry,
    SimHost,
    SimNetwork,
    WalkAway,
)
from repro.smc import CellConfig, SelfManagedCell
from repro.transport.endpoint import PacketEndpoint
from repro.transport.simnet import SimTransport

POLICIES = """
// roles are filled by device types
role nurse    : actuator.display ;
role pump     : actuator.pump ;
role monitor  : sensor.hr, sensor.spo2, sensor.temp ;

inst oblig Tachycardia {
    on health.hr ;
    if hr > 125 ;
    do notify(msg="tachycardia", hr=$hr, target=nurse)
       -> set_threshold(value=140, target=monitor)
       -> log(what="hr-alarm", hr=$hr) ;
    subject monitor ;
    target nurse ;
}

inst oblig Desaturation {
    on health.spo2 ;
    if spo2 < 90 ;
    do notify(msg="SpO2 low", spo2=$spo2, target=nurse)
       -> log(what="spo2-alarm", spo2=$spo2) ;
    subject monitor ;
    target nurse ;
}

// the monitor role may alert the nurse, but may never drive the pump
auth+ MonitorsAlert { subject monitor ; target nurse ; action notify, set_threshold, log ; }
auth- NoSensorDosing { subject monitor ; target pump ; action * ; }
"""


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(2006)
    network = SimNetwork(sim, rng)
    ban = network.add_medium("bluetooth", BLUETOOTH)

    def endpoint(name, position=(0.0, 0.0), profile=SENSOR_PROFILE):
        network.attach(name, SimHost(sim, profile, name), ban, position)
        return PacketEndpoint(SimTransport(network, name), sim)

    # The SMC core on the patient's PDA.
    network.attach("pda", SimHost(sim, PDA_PROFILE, "pda"), ban, (0.0, 0.0))
    cell = SelfManagedCell(SimTransport(network, "pda"), sim,
                           CellConfig(cell_name="patient-17",
                                      patient="p-17",
                                      purge_after_s=20.0))
    cell.load_policies(POLICIES)

    # The patient: tachycardia at t=40s, desaturation at t=120s.
    vitals = VitalSignsGenerator(rng, patient="p-17", episodes=[
        tachycardia(start_s=40.0, duration_s=30.0, peak_bpm=160.0),
        desaturation(start_s=120.0, duration_s=40.0, trough_percent=85.0),
    ])

    # On-body devices.
    hr = HeartRateSensor(endpoint("hr-1"), sim, "hr-1", vitals,
                         period_s=1.0, threshold_bpm=125.0)
    spo2 = SpO2Sensor(endpoint("spo2-1"), sim, "spo2-1", vitals, period_s=2.0)
    temp = TemperatureSensor(endpoint("temp-1"), sim, "temp-1", vitals,
                             period_s=10.0)     # unacknowledged, like the paper
    pump = DrugPump(endpoint("pump-1"), sim, "pump-1", "p-17")

    # The nurse, who walks out of range between t=70 and t=85 (masked: the
    # purge timeout is 20s, so her membership survives the absence).
    nurse_walk = WalkAway(t_leave=70.0, t_return=85.0, distance=50.0)
    display = NurseDisplay(endpoint("nurse-pda", position=nurse_walk), sim,
                           "nurse-pda")

    # A visible timeline of membership and alarms.
    timeline = []
    cell.subscribe(Filter.for_type_prefix("smc.member"), lambda e: timeline
                   .append((sim.now(), e.type, e.get("name"), e.get("reason"))))

    for device in (hr, spo2, temp, pump, display):
        device.start()
    cell.start()

    sim.run(150.0)
    # Battery death: the heart-rate sensor vanishes without a LEAVE.
    network.set_node_up("hr-1", False)
    sim.run(220.0)

    print("== membership timeline ==")
    for moment, etype, name, reason in timeline:
        detail = f" ({reason})" if reason else ""
        print(f"  t={moment:7.2f}s  {etype:22s} {name}{detail}")

    print("\n== nurse display ==")
    for moment, message in display.messages[:8]:
        print(f"  t={moment:7.2f}s  {message}")
    if len(display.messages) > 8:
        print(f"  ... {len(display.messages) - 8} more")

    print("\n== cell log (policy actions) ==")
    for moment, target, params in cell.log[:6]:
        print(f"  t={moment:7.2f}s  -> {target}: {params}")
    if len(cell.log) > 6:
        print(f"  ... {len(cell.log) - 6} more")

    print(f"\nbus: {cell.bus.stats}")
    print(f"members at end: {cell.member_names()}")
    assert "hr-1" not in cell.member_names(), "dead sensor should be purged"
    assert display.messages, "nurse should have been notified"

if __name__ == "__main__":
    main()
