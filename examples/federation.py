#!/usr/bin/env python3
"""SMC federation: a clinic cell importing alarms from patient cells.

Two patients each run their own Self-Managed Cell on their PDA.  The
clinic's cell peers with both: a federation link joins each patient cell
as an ordinary member (device type ``smc.peer``) and imports only alarm
streams — covering-based aggregation first reduces the import filter set.
Loop suppression and duplicate elimination come from the federation
metadata stamped on every imported event.

Run:  python examples/federation.py
"""

from repro import Filter, Simulator
from repro.devices.actuators import ManualSensor
from repro.devices.protocols import HeartRateProtocol
from repro.sim import (
    LAPTOP_PROFILE,
    PDA_PROFILE,
    SENSOR_PROFILE,
    RngRegistry,
    SimHost,
    SimNetwork,
    WIFI_11B,
)
from repro.smc import CellConfig, FederationLink, SelfManagedCell, aggregate_filters
from repro.transport.endpoint import PacketEndpoint
from repro.transport.simnet import SimTransport


def main() -> None:
    sim = Simulator()
    network = SimNetwork(sim, RngRegistry(42))
    wifi = network.add_medium("wifi", WIFI_11B)

    def endpoint(name, profile=SENSOR_PROFILE):
        network.attach(name, SimHost(sim, profile, name), wifi, (0.0, 0.0))
        return PacketEndpoint(SimTransport(network, name), sim)

    # Three cells: two patients, one clinic.
    cells = {}
    for node, cell_name, profile in (("pda-1", "patient-1", PDA_PROFILE),
                                     ("pda-2", "patient-2", PDA_PROFILE),
                                     ("clinic-pc", "clinic", LAPTOP_PROFILE)):
        network.attach(node, SimHost(sim, profile, node), wifi, (0.0, 0.0))
        cells[cell_name] = SelfManagedCell(
            SimTransport(network, node), sim,
            CellConfig(cell_name=cell_name, patient=cell_name))

    # The clinic wants only alarms.  Note the aggregation: the broad
    # "health." prefix filter covers the specific hr filter, so only one
    # subscription is actually sent to each patient cell.
    imports = [Filter.where("health.hr", alarm=True),
               Filter([*Filter.for_type_prefix("health.").constraints,
                       *Filter.where(None, alarm=True).constraints])]
    print(f"import filters: {len(imports)} -> "
          f"{len(aggregate_filters(imports))} after covering aggregation")

    links = []
    for patient in ("patient-1", "patient-2"):
        link = FederationLink(
            cells["clinic"], endpoint(f"clinic-link-{patient}"), sim,
            imports, link_name=f"clinic-link-{patient}",
            peer_cell_name=patient)
        links.append(link)

    # Clinic-side dashboard.
    dashboard = []
    cells["clinic"].subscribe(
        Filter.for_type_prefix("health."),
        lambda e: dashboard.append(
            (sim.now(), e.get("fed.path"), e.type, e.get("hr"))))

    # One heart-rate sensor per patient cell.
    sensors = {}
    for patient in ("patient-1", "patient-2"):
        sensor = ManualSensor(endpoint(f"hr-{patient}"), sim,
                              f"hr-{patient}", "sensor.hr",
                              target_cell=patient)
        sensors[patient] = sensor
        sensor.start()

    for cell in cells.values():
        cell.start()
    for link in links:
        link.start()
    sim.run(5.0)
    assert all(link.connected for link in links)

    # Patient 1: normal reading (not imported), then an alarm (imported).
    proto1 = HeartRateProtocol("patient-1")
    sensors["patient-1"].send_reading(proto1.encode_reading(82.0, alarm=False))
    sensors["patient-1"].send_reading(proto1.encode_reading(151.0, alarm=True))
    # Patient 2: alarm.
    proto2 = HeartRateProtocol("patient-2")
    sensors["patient-2"].send_reading(proto2.encode_reading(143.0, alarm=True))
    sim.run(15.0)

    print("\n== clinic dashboard ==")
    for moment, path, etype, hr in dashboard:
        print(f"  t={moment:6.2f}s  via {path:22s} {etype}  hr={hr}")

    alarms = [entry for entry in dashboard if entry[3] and entry[3] > 120]
    assert len(alarms) == 2, dashboard
    # The normal reading stayed in its own cell.
    assert not any(hr == 82.0 for *_rest, hr in dashboard)
    print("\nfederation stats:")
    for link in links:
        print(f"  {link.peer_cell_name}: {link.stats}")

if __name__ == "__main__":
    main()
