#!/usr/bin/env python3
"""Regenerate the paper's evaluation (Section V) end to end.

Prints, as tables:

* the in-text link baseline (1.5 ms average latency within 0.6-2.3 ms;
  raw transfer ~575 KB/s);
* Figure 4(a): response time vs payload size, Siena-based vs C-based bus;
* Figure 4(b): throughput vs payload size, both buses.

Pass ``--quick`` for a fast sweep (fewer sizes/samples), ``--csv`` to dump
CSV files next to this script.

Run:  python examples/fig4_reproduction.py --quick
"""

import argparse
import pathlib

from repro.bench import (
    run_fig4a,
    run_fig4b,
    run_link_baseline,
)
from repro.bench.reporting import format_series_table, to_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="coarser sweep, fewer samples")
    parser.add_argument("--csv", action="store_true",
                        help="also write fig4a.csv / fig4b.csv")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("== link baseline (paper: 1.5 ms avg, 0.6-2.3 ms; ~575 KB/s) ==")
    baseline = run_link_baseline(seed=args.seed)
    print(f"  one-way latency: mean {baseline['latency_ms_mean']:.2f} ms, "
          f"min {baseline['latency_ms_min']:.2f}, "
          f"max {baseline['latency_ms_max']:.2f} "
          f"({baseline['latency_samples']} samples)")
    print(f"  raw bulk transfer: {baseline['bulk_throughput_kb_s']:.1f} KB/s")
    print()

    if args.quick:
        fig4a = run_fig4a(payload_sizes=(0, 1000, 2500, 5000), samples=5,
                          seed=args.seed)
        fig4b = run_fig4b(payload_sizes=(0, 500, 1500, 3000),
                          duration_s=15.0, seed=args.seed)
    else:
        fig4a = run_fig4a(seed=args.seed)
        fig4b = run_fig4b(seed=args.seed)

    print(format_series_table(fig4a))
    print("paper shape: both rise ~linearly with payload; the C-based bus "
          "stays below the Siena-based bus,\nwith the gap growing with "
          "payload (data translation costs).")
    print()
    print(format_series_table(fig4b))
    print("paper shape: throughput grows with payload; the C-based bus "
          "sustains more than the Siena-based\nbus, and both sit far below "
          "the raw link's ~575 KB/s.")

    if args.csv:
        directory = pathlib.Path(__file__).parent
        (directory / "fig4a.csv").write_text(to_csv(fig4a))
        (directory / "fig4b.csv").write_text(to_csv(fig4b))
        print(f"\nCSV written to {directory}/fig4a.csv and fig4b.csv")

if __name__ == "__main__":
    main()
