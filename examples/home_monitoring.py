#!/usr/bin/env python3
"""Home monitoring for an elderly patient (paper Section I).

"On-body and environmental sensors may also be used in the home for
monitoring elderly patients to determine problem situations or
deterioration of well-being over time."

This scenario mixes both kinds of device:

* a raw-protocol body temperature sensor (fever detection over hours);
* *smart* environmental devices built on the BusClient API — a motion
  sensor and a door sensor that publish typed events themselves;
* an inactivity policy: if the front door opened but no motion follows,
  notify the carer;
* a deterioration policy: a slow fever trend raises a well-being flag.

Run:  python examples/home_monitoring.py
"""

from repro import Filter, Simulator
from repro.core.client import BusClient
from repro.devices import NurseDisplay, TemperatureSensor, VitalSignsGenerator
from repro.devices.base import SmartDevice
from repro.devices.waveforms import fever
from repro.discovery.agent import AgentConfig
from repro.sim import (
    PDA_PROFILE,
    SENSOR_PROFILE,
    RngRegistry,
    SimHost,
    SimNetwork,
    WIFI_11B,
)
from repro.smc import CellConfig, SelfManagedCell
from repro.transport.endpoint import PacketEndpoint
from repro.transport.simnet import SimTransport

# The standard display translator obeys commands targeted at the "nurse"
# role (repro.devices.protocols.standard_translators), so the carer's
# display fills that role here.
POLICIES = """
role nurse   : actuator.display ;
role home    : home.motion, home.door ;
role monitor : sensor.temp ;

inst oblig DoorWithoutReturn {
    on home.door ;
    if state = "opened" and hour >= 22 ;
    do notify(msg="front door opened late", target=nurse)
       -> log(what="door-late") ;
    subject home ;
    target nurse ;
}

inst oblig FeverTrend {
    on health.temp ;
    if celsius >= 38.5 ;
    do notify(msg="fever", celsius=$celsius, target=nurse)
       -> log(what="fever", celsius=$celsius) ;
    subject monitor ;
    target nurse ;
}

inst oblig Inactivity {
    on home.inactivity ;
    do notify(msg="no movement for a while", minutes=$minutes, target=nurse)
       -> log(what="inactivity", minutes=$minutes) ;
    subject home ;
    target nurse ;
}
"""


class MotionSensor(SmartDevice):
    """Publishes motion events; raises an inactivity event after silence.

    A smart device: it owns a BusClient, builds typed events itself, and
    carries enough logic to summarise its own silence — the "complex
    sensor behind a simple proxy" end of the paper's spectrum.
    """

    def __init__(self, endpoint, scheduler, name, *, inactivity_after_s):
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type="home.motion"))
        self.inactivity_after_s = inactivity_after_s
        self._last_motion = scheduler.now()
        self._watch = None

    def on_connected(self, client: BusClient, *, rejoined: bool) -> None:
        if self._watch is None:
            self._watch = self.scheduler.every(self.inactivity_after_s / 4,
                                               self._check)

    def motion(self) -> None:
        """Called by the scenario when the patient moves."""
        self._last_motion = self.scheduler.now()
        if self.client.bus_address is not None:
            self.client.publish("home.motion", {"zone": "living-room"})

    def _check(self) -> None:
        quiet = self.scheduler.now() - self._last_motion
        if quiet >= self.inactivity_after_s and self.client.bus_address:
            self.client.publish("home.inactivity",
                                {"minutes": round(quiet / 60.0, 1)})
            self._last_motion = self.scheduler.now()    # rearm


class DoorSensor(SmartDevice):
    def __init__(self, endpoint, scheduler, name):
        super().__init__(endpoint, scheduler,
                         AgentConfig(name=name, device_type="home.door"))

    def door(self, state: str, hour: int) -> None:
        if self.client.bus_address is not None:
            self.client.publish("home.door", {"state": state, "hour": hour})


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(7)
    network = SimNetwork(sim, rng)
    wifi = network.add_medium("wifi", WIFI_11B)

    def endpoint(name, profile=SENSOR_PROFILE):
        network.attach(name, SimHost(sim, profile, name), wifi, (0.0, 0.0))
        return PacketEndpoint(SimTransport(network, name), sim)

    network.attach("hub", SimHost(sim, PDA_PROFILE, "hub"), wifi, (0.0, 0.0))
    cell = SelfManagedCell(SimTransport(network, "hub"), sim,
                           CellConfig(cell_name="home-7", patient="elder-7"))
    cell.load_policies(POLICIES)

    vitals = VitalSignsGenerator(rng, patient="elder-7", episodes=[
        fever(start_s=300.0, duration_s=1200.0, peak_celsius=39.4),
    ])
    temp = TemperatureSensor(endpoint("temp-1"), sim, "temp-1", vitals,
                             period_s=60.0)
    motion = MotionSensor(endpoint("motion-1"), sim, "motion-1",
                          inactivity_after_s=600.0)
    door = DoorSensor(endpoint("door-1"), sim, "door-1")
    carer = NurseDisplay(endpoint("carer-pda"), sim, "carer-pda")

    for device in (temp, motion, door, carer):
        device.start()
    cell.start()

    # Scripted day: regular motion for 5 minutes, then the patient sits
    # still (inactivity fires), a late door opening, then the fever peaks.
    for minute in range(5):
        sim.call_later(60.0 * minute + 30.0, motion.motion)
    sim.call_later(900.0, door.door, "opened", 23)
    sim.run(1500.0)

    print("== carer display ==")
    for moment, message in carer.messages[:6]:
        print(f"  t={moment:8.1f}s  {message}")
    if len(carer.messages) > 6:
        print(f"  ... {len(carer.messages) - 6} more")
    print("\n== cell log ==")
    seen_kinds = set()
    for moment, target, params in cell.log:
        kind = params.get("what")
        if kind not in seen_kinds:
            seen_kinds.add(kind)
            print(f"  first {kind!r:14} at t={moment:8.1f}s  {params}")
    print(f"\nmembers: {cell.member_names()}")
    assert {"inactivity", "door-late", "fever"} <= seen_kinds, seen_kinds
    assert carer.messages, "the carer's display should have received alerts"

if __name__ == "__main__":
    main()
