#!/usr/bin/env python3
"""Quickstart: content-based pub/sub on the SMC event bus in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import EventBus, Filter, Simulator
from repro.matching.engine import make_engine

def main() -> None:
    # Everything runs on a deterministic virtual-time scheduler.
    sim = Simulator()

    # The event bus with the paper's second-generation ("C-based")
    # fast-forwarding matcher.
    bus = EventBus(sim, make_engine("forwarding"))

    # A nurse's station subscribes to dangerous heart rates for one patient.
    def on_alarm(event):
        print(f"[{sim.now():6.3f}s] ALARM  hr={event.get('hr')} "
              f"patient={event.get('patient')}")

    bus.subscribe_local(
        Filter.where("health.hr", hr=(">", 120), patient="p-17"),
        on_alarm)

    # And to every management event, with a type-prefix filter.
    bus.subscribe_local(
        Filter.for_type_prefix("smc."),
        lambda event: print(f"[{sim.now():6.3f}s] MGMT   {event.type}"))

    # A monitor service publishes readings.
    monitor = bus.local_publisher("hr-monitor")
    monitor.publish("health.hr", {"hr": 88.0, "patient": "p-17"})   # quiet
    monitor.publish("health.hr", {"hr": 141.5, "patient": "p-17"})  # alarm!
    monitor.publish("health.hr", {"hr": 150.0, "patient": "p-99"})  # other patient
    monitor.publish("smc.member.new", {"member": 1, "name": "demo",
                                       "device_type": "demo", "address": "-"})

    # High-rate sources use the batch pipeline: one publish_batch call
    # stamps the whole burst, matches it in one engine invocation, and
    # coalesces deliveries per subscriber (over the network: one packet
    # per flush instead of one per event).  Semantics are identical to
    # publishing one by one — just faster.
    monitor.publish_batch([
        ("health.hr", {"hr": 122.0 + i, "patient": "p-17"})
        for i in range(4)])

    sim.run_until_idle()
    print(f"done: {bus.stats.published} published, "
          f"{bus.stats.delivered_local} delivered")

if __name__ == "__main__":
    main()
