"""A7 — policy engine micro-benchmark (wall clock).

Obligation evaluations per second as the policy count grows.  Each policy
is one bus subscription, so this also exercises the matcher with the
filter shapes real policies produce.
"""

import pytest

from repro import EventBus, Simulator
from repro.matching.engine import make_engine
from repro.policy import PolicyEngine, parse_policies


def build_policy_source(count: int) -> str:
    parts = ["role nurse : nurse.pda ;"]
    for index in range(count):
        parts.append(f"""
inst oblig Rule{index} {{
    on health.hr ;
    if hr > {60 + (index % 100)} and patient = "p-{index % 10}" ;
    do log(rule={index}) ;
    subject monitor ;
    target nurse ;
}}""")
    return "\n".join(parts)


@pytest.mark.parametrize("policy_count", [10, 100, 400])
def test_policy_evaluation_rate(benchmark, policy_count):
    sim = Simulator()
    bus = EventBus(sim, make_engine("forwarding"))
    engine = PolicyEngine(bus)
    fired = []
    engine.executor.register_handler("log",
                                     lambda target, params: fired.append(params))
    engine.load(parse_policies(build_policy_source(policy_count)))
    publisher = bus.local_publisher("hr")

    counter = [0]

    def run():
        counter[0] += 1
        for index in range(50):
            publisher.publish("health.hr",
                              {"hr": 60 + (index % 120),
                               "patient": f"p-{index % 10}"})
        sim.run_until_idle()

    benchmark(run)
    benchmark.extra_info["actions_fired"] = len(fired)
    assert engine.stats.events_evaluated > 0
    assert fired, "at least some rules must have fired"
