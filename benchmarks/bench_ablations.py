"""A3/A4 — design-choice ablations on the simulated testbed.

* Quenching (Section VI future work): an advertised-but-unobserved
  publisher should put (almost) nothing on the air when quenching is on.
* Loss: the delivery semantics must hold verbatim under datagram loss,
  with the cost visible as latency, not as missing or reordered events.
"""

from repro.bench.experiments import run_loss_sweep, run_quench_experiment
from repro.bench.reporting import format_series_table


def test_quenching_saves_radio_traffic(once, benchmark):
    result = once(run_quench_experiment, publishes=100)
    print()
    print(f"  quench off: {result['quench_off']['datagrams_on_air']} "
          f"datagrams on air")
    print(f"  quench on:  {result['quench_on']['datagrams_on_air']} "
          f"datagrams on air "
          f"({result['quench_on']['publishes_suppressed']} suppressed)")
    benchmark.extra_info.update({
        "datagrams_off": result["quench_off"]["datagrams_on_air"],
        "datagrams_on": result["quench_on"]["datagrams_on_air"],
    })
    # All 100 publishes suppressed at the source.
    assert result["quench_on"]["publishes_suppressed"] == 100
    assert result["quench_on"]["publishes_sent"] == 0
    # An order of magnitude less radio traffic.
    assert result["datagram_reduction_factor"] > 5.0


def test_delivery_semantics_survive_loss(once, benchmark):
    result = once(run_loss_sweep, loss_rates=(0.0, 0.05, 0.20), events=40)
    print()
    print(format_series_table(result, precision=1))
    complete = result.notes["delivery_complete_in_order"]
    benchmark.extra_info["complete_in_order"] = {
        str(k): v for k, v in complete.items()}

    # Exactly-once, in-order, complete at every loss rate.
    assert all(complete.values()), complete
    # Loss costs latency: 20% loss must be visibly slower than lossless.
    series = result.series[0]
    by_loss = {p.x: p.mean for p in series.points}
    assert by_loss[0.20] > by_loss[0.0]
