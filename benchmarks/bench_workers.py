"""A4 — multi-core match workers (wall clock).

The worker pool's whole claim is that the match phase can use every core
the host offers.  This bench pins the claim on a deliberately CPU-bound
vitals-ward workload:

* **10k subscriptions**, float thresholds over eight single-vital name
  classes — the classes spread the table across all shards, and float
  event values (distinct per event) defeat the forwarding engine's
  satisfied-value memo, so every event pays real binary-search and
  threshold-scan work instead of a dict hit;
* **workers {0, 2, 4}** over the same stream, results pinned identical;
* a **hard ≥1.8x gate at 4 workers vs inline** — enforced only where the
  hardware can physically show it (``available_cores() >= 4``; the gate
  runs informationally elsewhere, e.g. single-core containers, where the
  honest expectation is ~1.0x plus IPC overhead);
* a **crash-recovery smoke** under a wall-clock bound: a SIGKILL mid-run
  costs one inline round and a respawn, never a wrong match set.
"""

import os
import random
import signal
import time

import pytest

from repro.core.sharding import ShardedMatcher
from repro.core.workers import WorkerPoolExecutor, available_cores
from repro.ids import service_id_from_name
from repro.matching.filters import Constraint, Filter, Op, Subscription

SUBSCRIBER = service_id_from_name("bench-worker-subscriber")

VITALS = ("hr", "temp", "spo2", "bp_sys", "bp_dia", "resp", "glucose",
          "battery")
VITAL_RANGES = {"hr": (40, 180), "temp": (35.0, 42.0), "spo2": (80, 100),
                "bp_sys": (90, 200), "bp_dia": (50, 130), "resp": (8, 40),
                "glucose": (50, 250), "battery": (0, 100)}

SHARDS = 8
SUB_COUNT = 10_000
EVENT_COUNT = 400
GATE_WORKERS = 4
GATE_SPEEDUP = 1.8


def build_cpu_bound_subscriptions(count: int, seed: int = 7
                                  ) -> list[Subscription]:
    """Float band-alert rules, one vital per rule: lo < vital < lo + 2%.

    Single-vital name classes are what lets the table spread across all
    shards (and therefore all workers); float operands are what keeps the
    match CPU-bound (every event misses the satisfied-value memo, so both
    half-open constraints of every rule on the event's vital get counted)
    while the narrow band keeps the *match set* sparse and realistic —
    alarms fire rarely, so the work is the counting, not shipping ids.
    """
    rng = random.Random(seed)
    subscriptions = []
    for index in range(count):
        vital = VITALS[index % len(VITALS)]
        lo, hi = VITAL_RANGES[vital]
        width = (hi - lo) * 0.02
        band_lo = lo + (hi - lo - width) * rng.random()
        subscriptions.append(Subscription(
            index + 1, SUBSCRIBER,
            [Filter([Constraint(vital, Op.GT, band_lo),
                     Constraint(vital, Op.LT, band_lo + width)])]))
    return subscriptions


def build_cpu_bound_events(count: int, seed: int = 11) -> list[dict]:
    """Full vitals packs with distinct float values per event — every
    event misses the (name, value) memo and pays the full match cost."""
    rng = random.Random(seed)
    events = []
    for _ in range(count):
        attrs = {}
        for vital in VITALS:
            lo, hi = VITAL_RANGES[vital]
            attrs[vital] = lo + (hi - lo) * rng.random()
        events.append(attrs)
    return events


def _build_matcher(sub_count: int = SUB_COUNT) -> ShardedMatcher:
    matcher = ShardedMatcher(SHARDS, "forwarding")
    for subscription in build_cpu_bound_subscriptions(sub_count):
        matcher.subscribe(subscription)
    return matcher


@pytest.mark.parametrize("workers", [0, 2, 4])
def test_worker_match_rate(benchmark, workers):
    """Events/second through the match phase at each pool width
    (workers=0 is the InlineExecutor — the pre-refactor path)."""
    matcher = _build_matcher(sub_count=2000)
    events = build_cpu_bound_events(EVENT_COUNT)
    pool = None
    if workers:
        pool = WorkerPoolExecutor(matcher, workers)
    try:
        matcher.match_batch_ids(events[:50])           # warm spawn + replicas

        def run():
            return sum(len(ids)
                       for ids in matcher.match_batch_ids(events))

        matched = benchmark(run)
        benchmark.extra_info["matched"] = matched
        benchmark.extra_info["available_cores"] = available_cores()
        assert matched > 0
    finally:
        if pool is not None:
            pool.close()


def test_worker_pool_is_exact_and_gates_at_4_workers():
    """The worker pool's hard perf gate (CI smoke runs this).

    Always: 4 workers produce byte-identical match sets to the inline
    path on the 10k-sub CPU-bound stream, with zero inline fallbacks —
    the workers really did the matching.  Where the hardware has >= 4
    usable cores (CI runners do): the pool must sustain >= 1.8x inline
    throughput over three *distinct* event streams — distinct because a
    repeated stream hits the forwarding engine's satisfied-value memo on
    every round after the first, and a memo-warm pass measures dict hits,
    not matching (real sensor floats never repeat).  On fewer cores the
    ratio is reported but not enforced — a 1-core host physically cannot
    show a process-pool speedup, only the IPC tax.
    """
    inline = _build_matcher()
    pooled = _build_matcher()
    streams = [build_cpu_bound_events(EVENT_COUNT, seed=11 + round_)
               for round_ in range(3)]
    warm = build_cpu_bound_events(50, seed=5)

    pool = WorkerPoolExecutor(pooled, GATE_WORKERS)
    try:
        inline.match_batch_ids(warm)           # warm spawn + code paths
        pooled.match_batch_ids(warm)

        start = time.perf_counter()
        inline_ids = [inline.match_batch_ids(stream) for stream in streams]
        inline_s = time.perf_counter() - start
        start = time.perf_counter()
        pooled_ids = [pooled.match_batch_ids(stream) for stream in streams]
        pooled_s = time.perf_counter() - start

        assert pooled_ids == inline_ids        # exact, event by event
        assert pool.stats.inline_fallbacks == 0
        assert pool.stats.plans > 0

        total_events = sum(len(stream) for stream in streams)
        inline_eps = total_events / inline_s
        pooled_eps = total_events / pooled_s
        speedup = pooled_eps / inline_eps
        cores = available_cores()
        print(f"\nworkers={GATE_WORKERS}: {pooled_eps:.0f} ev/s vs inline "
              f"{inline_eps:.0f} ev/s = {speedup:.2f}x on {cores} cores")
        if cores >= GATE_WORKERS:
            assert speedup >= GATE_SPEEDUP, (
                f"{GATE_WORKERS} workers {pooled_eps:.0f} ev/s vs inline "
                f"{inline_eps:.0f} ev/s ({speedup:.2f}x, need >= "
                f"{GATE_SPEEDUP}x on {cores} cores)")
    finally:
        pool.close()


def test_worker_crash_recovery_smoke():
    """Kill a worker mid-stream: the round still returns exact results
    (host-engine fallback), the pool is back at full strength within a
    bounded wall-clock window, and throughput resumes on the workers."""
    matcher = _build_matcher(sub_count=2000)
    events = build_cpu_bound_events(100)
    pool = WorkerPoolExecutor(matcher, 2, recv_timeout_s=10.0)
    try:
        expected = matcher.match_batch_ids(events)

        start = time.monotonic()
        os.kill(pool.worker_pids()[0], signal.SIGKILL)
        assert matcher.match_batch_ids(events) == expected
        assert pool.ensure_alive() == pool.workers
        assert matcher.match_batch_ids(events) == expected
        elapsed = time.monotonic() - start

        assert all(pool.stats_dict()["alive"])
        assert pool.stats.respawns >= 1
        assert elapsed < 15.0, f"recovery took {elapsed:.1f}s"
    finally:
        pool.close()
