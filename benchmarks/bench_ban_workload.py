"""A8 — engine comparison under a realistic BAN management workload.

Figure 4 uses synthetic fixed-size payloads; this ablation replays a
realistic body-area-network event mix (mostly small vitals readings, a few
alarms) through the full testbed and compares the two bus generations on
the traffic the paper's cell would actually carry.  The expectation from
the paper holds here too: the translation-free bus completes the same
workload in less virtual time.
"""

from repro.bench.testbed import build_paper_testbed
from repro.bench.workloads import ban_monitoring_mix
from repro.sim.rng import RngRegistry

EVENT_COUNT = 150


def replay_workload(engine: str) -> tuple[float, int]:
    """Replay the BAN mix; returns (virtual seconds, events delivered)."""
    testbed = build_paper_testbed(engine=engine, subscribe_default=False)
    from repro.matching.filters import Filter
    testbed.subscriber.subscribe(Filter.for_type_prefix("health."),
                                 testbed.received.append)
    testbed.sim.run(testbed.sim.now() + 1.0)

    events = ban_monitoring_mix(RngRegistry(11), EVENT_COUNT)
    start = testbed.sim.now()
    outstanding = iter(events)

    # Keep four events outstanding, as in the throughput experiment.
    published = 0

    def pump():
        nonlocal published
        while published - len(testbed.received) < 4:
            try:
                event_type, attrs = next(outstanding)
            except StopIteration:
                return
            testbed.publisher.publish(event_type, attrs)
            published += 1

    pump()
    while len(testbed.received) < EVENT_COUNT:
        if not testbed.sim.step():
            break
        pump()
    return testbed.sim.now() - start, len(testbed.received)


def test_ban_workload_engine_comparison(once, benchmark):
    def run():
        return {engine: replay_workload(engine)
                for engine in ("forwarding", "siena")}

    results = once(run)
    forwarding_time, forwarding_count = results["forwarding"]
    siena_time, siena_count = results["siena"]
    print()
    print(f"  forwarding bus: {forwarding_count} events in "
          f"{forwarding_time:.2f} virtual s")
    print(f"  siena bus:      {siena_count} events in "
          f"{siena_time:.2f} virtual s")
    benchmark.extra_info["forwarding_s"] = round(forwarding_time, 3)
    benchmark.extra_info["siena_s"] = round(siena_time, 3)

    # All events delivered by both buses.
    assert forwarding_count == EVENT_COUNT
    assert siena_count == EVENT_COUNT
    # The translation-free bus finishes the same workload sooner.  Vitals
    # events are small, so the gap is modest — but it must be there.
    assert forwarding_time < siena_time
