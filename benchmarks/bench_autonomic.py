"""A7 — the autonomic control plane's hard gates (CI smoke runs these).

The paper's claim is an event service *supporting autonomic management*;
these benches gate the three MAPE-K loops the control plane closes:

* **RTT** — from one stock channel config, the RTT controller must land
  the RTO within 2x of the per-link optimal static value on *both* the
  paper's USB-cable RTT (3 ms) and a home-monitoring uplink (200 ms),
  with zero spurious retransmissions once converged.  Deterministic
  (virtual time, fixed delay).
* **Rebalance** — on a skewed vitals ward that pins the whole
  subscription table onto one shard, the rebalancer's live class split
  must recover at least 1.3x the static routing's throughput under
  per-batch churn (wall clock, measured ~5x).
* **Cell integration** — a full paper testbed on the 200 ms uplink with
  the manager enabled converges its member channels' RTOs from the
  deployment-agnostic default, with every actuation in the audit log.
"""

from repro.bench.experiments import run_rebalance_recovery, run_rtt_convergence

#: The two deployments one default config must serve (ROADMAP: "work
#: across the USB cable (3 ms RTT) and wide-area uplinks (200 ms)
#: without per-deployment tuning").
LINK_RTTS = {"usb_cable": 0.003, "home_uplink": 0.2}


def test_rtt_estimator_convergence_gate(once, benchmark):
    """Converged RTO within 2x of each link's optimal static RTO."""
    results = once(lambda: {name: run_rtt_convergence(rtt)
                            for name, rtt in LINK_RTTS.items()})
    print()
    for name, result in results.items():
        print(f"  {name:12s} rtt={result['rtt_s'] * 1000:5.0f} ms  "
              f"rto: {result['default_rto_s'] * 1000:5.0f} -> "
              f"{result['converged_rto_s'] * 1000:6.1f} ms "
              f"({result['rto_over_optimal']:.2f}x optimal, "
              f"{result['rtt_samples']} samples, "
              f"{result['spurious_rtx_after_convergence']} spurious rtx "
              f"after convergence)")
        benchmark.extra_info[f"{name}_rto_over_optimal"] = round(
            result["rto_over_optimal"], 3)

    for name, result in results.items():
        # The hard gate: within 2x of the per-link optimum, both links,
        # one default config.
        assert result["rto_over_optimal"] <= 2.0, (name, result)
        # And never *below* the RTT — that would be spurious-rtx country.
        assert result["converged_rto_s"] > result["rtt_s"], (name, result)
        # Converged means quiescent: no spurious retransmissions.
        assert result["spurious_rtx_after_convergence"] == 0, (name, result)
        # Every retune is on the audit record.
        assert result["rtt_actuations"] >= 1

    # The two links demand RTOs ~60x apart; the loop, not the config,
    # provides the difference.
    assert (results["home_uplink"]["converged_rto_s"]
            > 20.0 * results["usb_cable"]["converged_rto_s"])


def test_shard_rebalance_recovery_gate(once, benchmark):
    """Autonomic split >= 1.3x static routing on the skewed ward."""
    result = once(run_rebalance_recovery)
    static = result["static"]
    autonomic = result["autonomic"]
    print()
    print(f"  static : {static['events_per_s']:8.0f} ev/s  "
          f"loads={static['shard_loads']}")
    print(f"  split  : {autonomic['events_per_s']:8.0f} ev/s  "
          f"loads={autonomic['shard_loads']}  "
          f"({result['speedup']:.2f}x)")
    benchmark.extra_info.update({
        "static_eps": round(static["events_per_s"], 1),
        "autonomic_eps": round(autonomic["events_per_s"], 1),
        "speedup": round(result["speedup"], 2),
    })
    # Identical deliveries and stats (asserted inside the experiment too).
    assert static["outcome"] == autonomic["outcome"]
    # The split actually happened, by the patient bucket, on the record.
    assert autonomic["actuations"] == ["split_class:patient"]
    # Static routing pins one shard; the split must spread the table.
    assert max(static["shard_loads"]) == sum(static["shard_loads"])
    assert max(autonomic["shard_loads"]) < sum(autonomic["shard_loads"]) / 2
    # The hard CI gate.
    assert result["speedup"] >= 1.3, result["speedup"]


def test_autonomic_cell_on_home_uplink(once, benchmark):
    """A whole cell self-tunes: paper testbed, 200 ms uplink, default
    config — the member channels' RTOs converge near the measured SRTT
    and every actuation is audited."""
    from benchmarks.bench_fig4b_throughput import HOME_UPLINK
    from repro.autonomic import AutonomicConfig
    from repro.bench.experiments import BENCH_EVENT_TYPE, _run_until
    from repro.bench.testbed import build_paper_testbed
    from repro.bench.workloads import payload_attributes

    def run():
        testbed = build_paper_testbed(
            engine="forwarding", link_profile=HOME_UPLINK,
            autonomic=AutonomicConfig(tick_s=0.5))
        for sample in range(120):
            expected = len(testbed.received) + 1
            testbed.publisher.publish(
                BENCH_EVENT_TYPE, payload_attributes(200, sample))
            _run_until(testbed.sim,
                       lambda: len(testbed.received) >= expected,
                       testbed.sim.now() + 60.0)
        manager = testbed.cell.autonomic
        rtos = [channel.rto_initial
                for channel in testbed.cell.endpoint.live_channels()
                if channel.stats.rtt_samples]
        return {
            "rtt_actuations": len(manager.actuations("rtt")),
            "flush_actuations": len(manager.actuations("flush")),
            "ticks": manager.ticks,
            "rtos_ms": [round(rto * 1000, 1) for rto in rtos],
            "srtt_ms": round(
                testbed.cell.endpoint.channel_stats().srtt * 1000, 1),
        }

    result = once(run)
    print(f"\n  cell on 200ms uplink: srtt={result['srtt_ms']} ms, "
          f"member-channel RTOs={result['rtos_ms']} ms, "
          f"{result['rtt_actuations']} rtt + "
          f"{result['flush_actuations']} flush actuations "
          f"over {result['ticks']} ticks")
    benchmark.extra_info.update(result)
    assert result["ticks"] > 0
    assert result["rtt_actuations"] >= 1
    assert result["rtos_ms"], "no member channel gathered RTT samples"
    for rto_ms in result["rtos_ms"]:
        # Down from the testbed's conservative 1500 ms default to within
        # a small multiple of the ~200 ms path RTT (CPU costs included).
        assert 200.0 < rto_ms < 600.0, result
