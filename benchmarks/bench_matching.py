"""A1 — matching engine micro-benchmarks (wall clock).

Events/second through each engine as the subscription table grows.  This
is the real-CPU companion to the virtual-time figure benches: the counting
(forwarding) engine should scale better than naive per-subscription
evaluation, and the Siena translation backend should pay a visible tax
over the bare poset matcher.
"""

import random

import pytest

from repro.ids import service_id_from_name
from repro.matching.engine import make_engine
from repro.matching.filters import Constraint, Filter, Op, Subscription

SUBSCRIBER = service_id_from_name("bench-subscriber")


def build_subscriptions(count: int, seed: int = 7) -> list[Subscription]:
    rng = random.Random(seed)
    subscriptions = []
    for index in range(count):
        constraints = [Constraint("type", Op.EQ,
                                  f"health.{rng.choice('abcdefgh')}")]
        if rng.random() < 0.7:
            constraints.append(Constraint("hr", rng.choice([Op.GT, Op.LT]),
                                          rng.randint(40, 180)))
        if rng.random() < 0.4:
            constraints.append(Constraint("patient", Op.EQ,
                                          f"p-{rng.randint(1, 20)}"))
        subscriptions.append(
            Subscription(index + 1, SUBSCRIBER, [Filter(constraints)]))
    return subscriptions


def build_events(count: int, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    return [{"type": f"health.{rng.choice('abcdefgh')}",
             "hr": rng.randint(40, 180),
             "patient": f"p-{rng.randint(1, 20)}"}
            for _ in range(count)]


@pytest.mark.parametrize("engine_name", ["forwarding", "siena", "brute"])
@pytest.mark.parametrize("sub_count", [10, 100, 1000])
def test_match_rate(benchmark, engine_name, sub_count):
    engine = make_engine(engine_name)
    for subscription in build_subscriptions(sub_count):
        engine.subscribe(subscription)
    events = build_events(200)

    def run():
        total = 0
        for attrs in events:
            total += len(engine.match(attrs))
        return total

    matched = benchmark(run)
    benchmark.extra_info["matched_per_200_events"] = matched
    assert matched > 0


@pytest.mark.parametrize("engine_name", ["forwarding", "siena", "brute"])
@pytest.mark.parametrize("sub_count", [10, 100, 1000])
def test_match_batch_rate(benchmark, engine_name, sub_count):
    """The batch pipeline: same workload as test_match_rate, one call."""
    engine = make_engine(engine_name)
    for subscription in build_subscriptions(sub_count):
        engine.subscribe(subscription)
    events = build_events(200)

    def run():
        return sum(len(subs) for subs in engine.match_batch(events))

    matched = benchmark(run)
    benchmark.extra_info["matched_per_200_events"] = matched
    assert matched > 0


def test_match_batch_agrees_and_doubles_throughput_at_10k():
    """The batch pipeline's hard perf gate (CI smoke runs this).

    At 10k subscriptions the forwarding engine's ``match_batch`` must
    sustain at least 2x the events/sec of the per-event ``match`` path on
    the same stream — and return exactly the same match sets.  Sustained
    methodology: one warm-up pass populates the value memo, as a
    long-running bus would be, and each path takes its best of three runs
    so a noisy-neighbour stall on a shared CI runner cannot flap the gate.
    """
    import time

    engine = make_engine("forwarding")
    for subscription in build_subscriptions(10_000):
        engine.subscribe(subscription)
    events = build_events(1000)

    engine.match_batch(events)      # warm the satisfied-value memo

    def best_of(runs, fn):
        best, result = float("inf"), None
        for _ in range(runs):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    per_event_s, per_event = best_of(3, lambda: [
        [s.sub_id for s in engine.match(attrs)] for attrs in events])
    batch_s, batched = best_of(3, lambda: [
        [s.sub_id for s in subs] for subs in engine.match_batch(events)])

    assert batched == per_event       # identical match sets, event by event
    per_eps = len(events) / per_event_s
    batch_eps = len(events) / batch_s
    assert batch_eps >= 2.0 * per_eps, (
        f"batch {batch_eps:.0f} ev/s vs per-event {per_eps:.0f} ev/s "
        f"({batch_eps / per_eps:.2f}x, need >= 2x)")


def test_forwarding_faster_than_brute_at_scale():
    """At 2000 subscriptions the index must beat linear scan clearly."""
    import time

    events = build_events(300)
    timings = {}
    for name in ("forwarding", "brute"):
        engine = make_engine(name)
        for subscription in build_subscriptions(2000):
            engine.subscribe(subscription)
        start = time.perf_counter()
        reference = [len(engine.match(attrs)) for attrs in events]
        timings[name] = time.perf_counter() - start
        if name == "forwarding":
            forwarding_result = reference
        else:
            assert reference == forwarding_result   # same answers
    assert timings["forwarding"] < timings["brute"], timings
