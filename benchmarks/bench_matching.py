"""A1 — matching engine micro-benchmarks (wall clock).

Events/second through each engine as the subscription table grows.  This
is the real-CPU companion to the virtual-time figure benches: the counting
(forwarding) engine should scale better than naive per-subscription
evaluation, and the Siena translation backend should pay a visible tax
over the bare poset matcher.
"""

import random
import time

import pytest

from repro.core.bus import EventBus
from repro.core.events import Event
from repro.core.sharding import ShardedEventBus
from repro.ids import service_id_from_name
from repro.matching.engine import make_engine
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.sim.kernel import Simulator

SUBSCRIBER = service_id_from_name("bench-subscriber")


def build_subscriptions(count: int, seed: int = 7) -> list[Subscription]:
    rng = random.Random(seed)
    subscriptions = []
    for index in range(count):
        constraints = [Constraint("type", Op.EQ,
                                  f"health.{rng.choice('abcdefgh')}")]
        if rng.random() < 0.7:
            constraints.append(Constraint("hr", rng.choice([Op.GT, Op.LT]),
                                          rng.randint(40, 180)))
        if rng.random() < 0.4:
            constraints.append(Constraint("patient", Op.EQ,
                                          f"p-{rng.randint(1, 20)}"))
        subscriptions.append(
            Subscription(index + 1, SUBSCRIBER, [Filter(constraints)]))
    return subscriptions


def build_events(count: int, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    return [{"type": f"health.{rng.choice('abcdefgh')}",
             "hr": rng.randint(40, 180),
             "patient": f"p-{rng.randint(1, 20)}"}
            for _ in range(count)]


@pytest.mark.parametrize("engine_name", ["forwarding", "siena", "brute"])
@pytest.mark.parametrize("sub_count", [10, 100, 1000])
def test_match_rate(benchmark, engine_name, sub_count):
    engine = make_engine(engine_name)
    for subscription in build_subscriptions(sub_count):
        engine.subscribe(subscription)
    events = build_events(200)

    def run():
        total = 0
        for attrs in events:
            total += len(engine.match(attrs))
        return total

    matched = benchmark(run)
    benchmark.extra_info["matched_per_200_events"] = matched
    assert matched > 0


@pytest.mark.parametrize("engine_name", ["forwarding", "siena", "brute"])
@pytest.mark.parametrize("sub_count", [10, 100, 1000])
def test_match_batch_rate(benchmark, engine_name, sub_count):
    """The batch pipeline: same workload as test_match_rate, one call."""
    engine = make_engine(engine_name)
    for subscription in build_subscriptions(sub_count):
        engine.subscribe(subscription)
    events = build_events(200)

    def run():
        return sum(len(subs) for subs in engine.match_batch(events))

    matched = benchmark(run)
    benchmark.extra_info["matched_per_200_events"] = matched
    assert matched > 0


def test_match_batch_agrees_and_doubles_throughput_at_10k():
    """The batch pipeline's hard perf gate (CI smoke runs this).

    At 10k subscriptions the forwarding engine's ``match_batch`` must
    sustain at least 2x the events/sec of the per-event ``match`` path on
    the same stream — and return exactly the same match sets.  Sustained
    methodology: one warm-up pass populates the value memo, as a
    long-running bus would be, and each path takes its best of three runs
    so a noisy-neighbour stall on a shared CI runner cannot flap the gate.
    """
    engine = make_engine("forwarding")
    for subscription in build_subscriptions(10_000):
        engine.subscribe(subscription)
    events = build_events(1000)

    engine.match_batch(events)      # warm the satisfied-value memo

    def best_of(runs, fn):
        best, result = float("inf"), None
        for _ in range(runs):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    per_event_s, per_event = best_of(3, lambda: [
        [s.sub_id for s in engine.match(attrs)] for attrs in events])
    batch_s, batched = best_of(3, lambda: [
        [s.sub_id for s in subs] for subs in engine.match_batch(events)])

    assert batched == per_event       # identical match sets, event by event
    per_eps = len(events) / per_event_s
    batch_eps = len(events) / batch_s
    assert batch_eps >= 2.0 * per_eps, (
        f"batch {batch_eps:.0f} ev/s vs per-event {per_eps:.0f} ev/s "
        f"({batch_eps / per_eps:.2f}x, need >= 2x)")


# -- sharded bus scaling -----------------------------------------------------
#
# The sharded workload is a ward of patients wearing full vitals packs:
# every event carries all eight vitals, every alert rule constrains the
# event type, one vital and (half the time) one patient.  The rules span
# many attribute-name classes, which is what lets the sharded bus spread
# the table; selective thresholds keep match sets realistic (sparse).

VITALS = ("hr", "temp", "spo2", "bp_sys", "bp_dia", "resp", "glucose",
          "battery")
VITAL_RANGES = {"hr": (40, 180), "temp": (350, 420), "spo2": (80, 100),
                "bp_sys": (90, 200), "bp_dia": (50, 130), "resp": (8, 40),
                "glucose": (50, 250), "battery": (0, 100)}


def build_vitals_subscriptions(count: int, seed: int = 7,
                               first_id: int = 1) -> list[Subscription]:
    rng = random.Random(seed)
    subscriptions = []
    for index in range(count):
        vital = rng.choice(VITALS)
        lo, hi = VITAL_RANGES[vital]
        constraints = [Constraint("type", Op.EQ,
                                  f"vitals.{rng.choice('abcd')}"),
                       Constraint(vital, rng.choice([Op.GT, Op.LT]),
                                  rng.randint(lo, hi))]
        if rng.random() < 0.5:
            constraints.append(Constraint("patient", Op.EQ,
                                          f"p-{rng.randint(1, 40)}"))
        subscriptions.append(Subscription(first_id + index, SUBSCRIBER,
                                          [Filter(constraints)]))
    return subscriptions


def build_vitals_events(count: int, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    events = []
    for _ in range(count):
        attrs = {"patient": f"p-{rng.randint(1, 40)}"}
        for vital in VITALS:
            lo, hi = VITAL_RANGES[vital]
            attrs[vital] = rng.randint(lo, hi)
        events.append((f"vitals.{rng.choice('abcd')}", attrs))
    return events


def _run_sharded_bus_workload(shards: int, sub_count: int, batches: int,
                              batch_size: int) -> tuple[float, tuple]:
    """One full bus run: subscribe, warm, then measure batches under
    steady subscription churn.  Returns (seconds, comparable outcome).

    Churn is the point: every registration change wholesale-invalidates a
    forwarding engine's satisfied-value memo, so a single bus re-warms
    its whole table every round while a sharded bus re-warms only the one
    shard the churned class routes to.
    """
    sim = Simulator()
    if shards == 1:
        bus = EventBus(sim, make_engine("forwarding"))
    else:
        bus = ShardedEventBus(sim, shards)
    for subscription in build_vitals_subscriptions(sub_count):
        bus.subscribe_local(subscription.filters, lambda event: None)

    sender = service_id_from_name("vitals-pack")
    stamped = [Event(event_type, attrs, sender, seqno + 1, 0.0)
               for seqno, (event_type, attrs)
               in enumerate(build_vitals_events(batch_size * (batches + 1)))]
    churn_subs = build_vitals_subscriptions(batches, seed=1303,
                                            first_id=sub_count + 1)

    bus.publish_batch(stamped[:batch_size])        # warm every shard
    sim.run_until_idle()

    start = time.perf_counter()
    for index in range(1, batches + 1):
        bus.publish_batch(stamped[index * batch_size:
                                  (index + 1) * batch_size])
        sim.run_until_idle()
        # One member re-subscribes each round: the churn that keeps
        # real cells' match memos cold.
        sub_id = bus.subscribe_local(churn_subs[index - 1].filters,
                                     lambda event: None)
        bus.unsubscribe_local(sub_id)
    elapsed = time.perf_counter() - start
    stats = bus.stats
    outcome = (stats.published, stats.matched, stats.unmatched,
               stats.duplicates_dropped, stats.delivered_local)
    return elapsed, outcome


@pytest.mark.parametrize("shards", [1, 2, 4, 8])
def test_sharded_publish_batch_scaling(benchmark, shards):
    """The shard-scaling curve: publish_batch under churn at each width."""
    def run():
        return _run_sharded_bus_workload(shards, sub_count=2000,
                                         batches=6, batch_size=100)

    elapsed, outcome = benchmark(run)
    benchmark.extra_info["delivered"] = outcome[-1]
    assert outcome[0] > 0


def test_sharded_bus_beats_single_bus_under_churn_at_10k():
    """The sharded bus's hard perf gate (CI smoke runs this).

    At 10k subscriptions with one subscription churned per batch, eight
    shards must sustain >= 1.5x the publish_batch throughput of the
    single bus — measured ~2.1x, the margin absorbs noisy CI
    neighbours — while producing identical BusStats.  Best of two full
    runs per configuration, mirroring the batch gate above.
    """
    settings = dict(sub_count=10_000, batches=16, batch_size=200)

    def best_of(runs, shards):
        best, outcome = float("inf"), None
        for _ in range(runs):
            elapsed, outcome = _run_sharded_bus_workload(shards, **settings)
            best = min(best, elapsed)
        return best, outcome

    single_s, single_outcome = best_of(2, 1)
    sharded_s, sharded_outcome = best_of(2, 8)

    assert sharded_outcome == single_outcome   # same deliveries, same stats
    events = settings["batches"] * settings["batch_size"]
    single_eps = events / single_s
    sharded_eps = events / sharded_s
    assert sharded_eps >= 1.5 * single_eps, (
        f"8 shards {sharded_eps:.0f} ev/s vs single bus {single_eps:.0f} "
        f"ev/s ({sharded_eps / single_eps:.2f}x, need >= 1.5x)")


def test_forwarding_faster_than_brute_at_scale():
    """At 2000 subscriptions the index must beat linear scan clearly."""
    events = build_events(300)
    timings = {}
    for name in ("forwarding", "brute"):
        engine = make_engine(name)
        for subscription in build_subscriptions(2000):
            engine.subscribe(subscription)
        start = time.perf_counter()
        reference = [len(engine.match(attrs)) for attrs in events]
        timings[name] = time.perf_counter() - start
        if name == "forwarding":
            forwarding_result = reference
        else:
            assert reference == forwarding_result   # same answers
    assert timings["forwarding"] < timings["brute"], timings
