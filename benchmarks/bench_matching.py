"""A1 — matching engine micro-benchmarks (wall clock).

Events/second through each engine as the subscription table grows.  This
is the real-CPU companion to the virtual-time figure benches: the counting
(forwarding) engine should scale better than naive per-subscription
evaluation, and the Siena translation backend should pay a visible tax
over the bare poset matcher.
"""

import random

import pytest

from repro.ids import service_id_from_name
from repro.matching.engine import make_engine
from repro.matching.filters import Constraint, Filter, Op, Subscription

SUBSCRIBER = service_id_from_name("bench-subscriber")


def build_subscriptions(count: int, seed: int = 7) -> list[Subscription]:
    rng = random.Random(seed)
    subscriptions = []
    for index in range(count):
        constraints = [Constraint("type", Op.EQ,
                                  f"health.{rng.choice('abcdefgh')}")]
        if rng.random() < 0.7:
            constraints.append(Constraint("hr", rng.choice([Op.GT, Op.LT]),
                                          rng.randint(40, 180)))
        if rng.random() < 0.4:
            constraints.append(Constraint("patient", Op.EQ,
                                          f"p-{rng.randint(1, 20)}"))
        subscriptions.append(
            Subscription(index + 1, SUBSCRIBER, [Filter(constraints)]))
    return subscriptions


def build_events(count: int, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    return [{"type": f"health.{rng.choice('abcdefgh')}",
             "hr": rng.randint(40, 180),
             "patient": f"p-{rng.randint(1, 20)}"}
            for _ in range(count)]


@pytest.mark.parametrize("engine_name", ["forwarding", "siena", "brute"])
@pytest.mark.parametrize("sub_count", [10, 100, 1000])
def test_match_rate(benchmark, engine_name, sub_count):
    engine = make_engine(engine_name)
    for subscription in build_subscriptions(sub_count):
        engine.subscribe(subscription)
    events = build_events(200)

    def run():
        total = 0
        for attrs in events:
            total += len(engine.match(attrs))
        return total

    matched = benchmark(run)
    benchmark.extra_info["matched_per_200_events"] = matched
    assert matched > 0


def test_forwarding_faster_than_brute_at_scale():
    """At 2000 subscriptions the index must beat linear scan clearly."""
    import time

    events = build_events(300)
    timings = {}
    for name in ("forwarding", "brute"):
        engine = make_engine(name)
        for subscription in build_subscriptions(2000):
            engine.subscribe(subscription)
        start = time.perf_counter()
        reference = [len(engine.match(attrs)) for attrs in events]
        timings[name] = time.perf_counter() - start
        if name == "forwarding":
            forwarding_result = reference
        else:
            assert reference == forwarding_result   # same answers
    assert timings["forwarding"] < timings["brute"], timings
