"""E1 — Figure 4(a): response time vs payload size, both event buses.

Regenerates the series of the paper's Figure 4(a) on the simulated
PDA+laptop testbed.  The assertions encode the *shape* the paper reports:

* response time rises with payload size for both buses;
* the C-based (forwarding) bus is faster than the Siena-based bus;
* the gap grows with payload (the translation cost is per byte).
"""

from repro.bench.experiments import run_fig4a
from repro.bench.reporting import format_series_table

PAYLOADS = (0, 1000, 2500, 5000)
SAMPLES = 5


def test_fig4a_response_time_curves(once, benchmark):
    result = once(run_fig4a, payload_sizes=PAYLOADS, samples=SAMPLES)
    print()
    print(format_series_table(result))

    siena = {p.x: p.mean for p in
             result.series_by_label("Siena-based event bus").points}
    cbus = {p.x: p.mean for p in
            result.series_by_label("C-based event bus").points}
    benchmark.extra_info["siena_ms"] = {int(k): round(v, 1)
                                        for k, v in siena.items()}
    benchmark.extra_info["cbus_ms"] = {int(k): round(v, 1)
                                       for k, v in cbus.items()}

    # Monotonic rise with payload.
    for series in (siena, cbus):
        values = [series[p] for p in PAYLOADS]
        assert all(a < b for a, b in zip(values, values[1:])), values
    # The C bus wins at every size, and by a growing margin.
    for payload in PAYLOADS:
        assert cbus[payload] <= siena[payload]
    gaps = [siena[p] - cbus[p] for p in PAYLOADS]
    assert gaps[-1] > gaps[0], gaps
    # Rough magnitudes of the paper's figure: hundreds of ms at 5000 B.
    assert 150.0 < cbus[5000] < 450.0
    assert 300.0 < siena[5000] < 600.0
