"""A6 — discovery timing: admission latency and purge behaviour.

Section VI: scenarios "such as maximum timeouts for the discovery service
to allow silence from a device until a 'Purge Member' event is launched".
Admission latency should track the beacon period (a device can only find
the cell when it hears a beacon); purge latency should track the
configured timeout, independent of beacon period.
"""

import math

from repro.bench.experiments import run_discovery_timing
from repro.bench.reporting import format_series_table

BEACON_PERIODS = (0.25, 1.0, 2.0)
PURGE_AFTER = 6.0


def test_discovery_admission_and_purge(once, benchmark):
    result = once(run_discovery_timing, beacon_periods=BEACON_PERIODS,
                  purge_after_s=PURGE_AFTER)
    print()
    print(format_series_table(result, precision=2))
    print(f"  purge latency after walking away: "
          f"{result.notes['purge_latency_after_leave_s']}")

    series = result.series[0]
    admit = {p.x: p.mean for p in series.points}
    benchmark.extra_info["admit_s"] = {str(k): round(v, 2)
                                       for k, v in admit.items()}

    # Admission happens within roughly one beacon period (plus protocol).
    for period in BEACON_PERIODS:
        assert not math.isnan(admit[period])
        assert admit[period] < period + 1.0, (period, admit[period])
    # Purge fires after the configured silence tolerance, not much later
    # than timeout + one sweep + silence-detection slack.
    for period, latency in result.notes["purge_latency_after_leave_s"].items():
        assert not math.isnan(latency)
        assert PURGE_AFTER - 1.0 < latency < PURGE_AFTER + 4.0, (period,
                                                                 latency)
