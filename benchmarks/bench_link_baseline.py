"""E3/E4 — the paper's in-text link measurements, plus the transport gate.

"The latency on the link is 1.5ms on average (0.6ms minimum, 2.3ms maximum
taken over the link for 1 minute)" and "the link can sustain a throughput
of approximately 575KB/s when simply transferring data from one host to
another."

The second test gates the sliding-window/SACK reliable channel: on a
lossy 20 ms-RTT simulated link, window=32 must sustain at least 5x the
goodput of stop-and-wait.  A regression in the windowed transport
(retransmit starvation, go-back-N bursts, SACK breakage) collapses the
ratio and fails the build.
"""

from repro.bench.experiments import run_link_baseline, run_window_goodput


def test_link_latency_and_raw_throughput(once, benchmark):
    result = once(run_link_baseline)
    print()
    print(f"  latency: mean {result['latency_ms_mean']:.2f} ms "
          f"(min {result['latency_ms_min']:.2f}, "
          f"max {result['latency_ms_max']:.2f})  "
          f"bulk: {result['bulk_throughput_kb_s']:.1f} KB/s")
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in result.items() if isinstance(v, float)})

    # E3: 1.5 ms average within a 0.6-2.3 ms band.
    assert 1.3 < result["latency_ms_mean"] < 1.7
    assert 0.55 < result["latency_ms_min"] < 0.8
    assert 2.0 < result["latency_ms_max"] < 2.4
    # E4: ~575 KB/s raw transfer.
    assert 520.0 < result["bulk_throughput_kb_s"] < 630.0


def test_windowed_channel_goodput_gate(once, benchmark):
    """window=32 with SACK >= 5x stop-and-wait on a lossy 20 ms-RTT link."""
    result = once(run_window_goodput)
    sw, win = result[1], result[32]
    print()
    print(f"  stop-and-wait: {sw['goodput_kb_s']:7.1f} KB/s "
          f"({sw['retransmissions']} rtx)  "
          f"window=32: {win['goodput_kb_s']:7.1f} KB/s "
          f"({win['retransmissions']} rtx, "
          f"{win['fast_retransmits']} fast)  "
          f"speedup {result['speedup']:.1f}x")
    benchmark.extra_info.update({
        "stop_and_wait_kb_s": round(sw["goodput_kb_s"], 1),
        "window32_kb_s": round(win["goodput_kb_s"], 1),
        "speedup": round(result["speedup"], 2),
    })
    # The hard CI gate (virtual-time, seeded loss: fully deterministic).
    assert result["speedup"] >= 5.0
    # SACK means only genuinely lost packets are retransmitted: far fewer
    # retransmissions than a go-back-N burst per loss would produce.
    assert win["retransmissions"] <= sw["retransmissions"] * 3
