"""E3/E4 — the paper's in-text link measurements.

"The latency on the link is 1.5ms on average (0.6ms minimum, 2.3ms maximum
taken over the link for 1 minute)" and "the link can sustain a throughput
of approximately 575KB/s when simply transferring data from one host to
another."
"""

from repro.bench.experiments import run_link_baseline


def test_link_latency_and_raw_throughput(once, benchmark):
    result = once(run_link_baseline)
    print()
    print(f"  latency: mean {result['latency_ms_mean']:.2f} ms "
          f"(min {result['latency_ms_min']:.2f}, "
          f"max {result['latency_ms_max']:.2f})  "
          f"bulk: {result['bulk_throughput_kb_s']:.1f} KB/s")
    benchmark.extra_info.update(
        {k: round(v, 3) for k, v in result.items() if isinstance(v, float)})

    # E3: 1.5 ms average within a 0.6-2.3 ms band.
    assert 1.3 < result["latency_ms_mean"] < 1.7
    assert 0.55 < result["latency_ms_min"] < 0.8
    assert 2.0 < result["latency_ms_max"] < 2.4
    # E4: ~575 KB/s raw transfer.
    assert 520.0 < result["bulk_throughput_kb_s"] < 630.0
