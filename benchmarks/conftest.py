"""Shared fixtures for the benchmark suite.

Simulation experiments run in virtual time and are deterministic, so each
is executed once per benchmark (``rounds=1``) — the wall-clock number
pytest-benchmark reports is the cost of *running the simulation*, while
the reproduced figure values land in ``extra_info`` (and are printed when
run with ``-s``).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a deterministic experiment exactly once under the benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
