"""A7 — lifecycle guarantees, measured: ghost detection and drain.

The health state machine promises two numbers worth gating in CI:

* **detection** — a member that dies silently is marked DEGRADED within
  3 x heartbeat period (the jitter-tolerant miss threshold) plus at most
  one sweep period, across heartbeat rates;
* **drain** — a member that announces departure (LEAVE_INTENT) has every
  queued delivery flushed before its proxy is torn down: zero
  matched-event loss on a planned exit, with the flush latency reported.
"""

import math

from repro.bench.experiments import run_lifecycle_timing

HEARTBEAT_PERIODS = (0.2, 0.5, 1.0)
DRAIN_BACKLOG = 50


def test_ghost_detection_latency_tracks_heartbeat_period(once, benchmark):
    result = once(run_lifecycle_timing, heartbeat_periods=HEARTBEAT_PERIODS,
                  drain_backlog=DRAIN_BACKLOG)
    print()
    latencies = {p.x: p.mean for p in result.series[0].points}
    for period, latency in latencies.items():
        print(f"  heartbeat {period:.1f}s: degraded after "
              f"{latency:.2f}s ({latency / period:.2f} heartbeats)")
    benchmark.extra_info["detection_s"] = {str(k): round(v, 3)
                                           for k, v in latencies.items()}

    # The gate: detection within the 3 x heartbeat threshold plus one
    # sweep period (sweep = heartbeat / 10 in this experiment).
    for period, latency in latencies.items():
        assert not math.isnan(latency), f"never detected at hb={period}"
        assert latency <= 3.0 * period + period / 10.0 + 1e-6, (period,
                                                                latency)


def test_graceful_drain_rehomes_with_zero_loss(once, benchmark):
    result = once(run_lifecycle_timing, heartbeat_periods=(0.2,),
                  drain_backlog=DRAIN_BACKLOG)
    drain = result.notes["drain"]
    print()
    print(f"  drained {drain['events_delivered']}/"
          f"{drain['events_published']} queued events in "
          f"{drain['flush_latency_s']:.2f}s, "
          f"{drain['dropped_on_destroy']} dropped at teardown")
    benchmark.extra_info["drain"] = {
        "delivered": drain["events_delivered"],
        "dropped_on_destroy": drain["dropped_on_destroy"],
        "flush_latency_s": round(drain["flush_latency_s"], 3),
    }

    # The gate: planned departure loses nothing, in order, and the
    # teardown found an empty channel.
    assert drain["events_delivered"] == drain["events_published"]
    assert drain["delivered_in_order"]
    assert drain["dropped_on_destroy"] == 0
    assert drain["drain_completed"]
    assert not math.isnan(drain["flush_latency_s"])
