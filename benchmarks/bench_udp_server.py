"""Deployment-mode harness: 100+ real client sockets against one cell.

Unlike the simulation benchmarks, this one runs on the wall clock and
real loopback UDP — it is the measurement the paper's prototype chapter
describes, scaled to the deployment layer: N devices (each with its own
socket) join a :class:`~repro.deploy.server.CellServer` by rendezvous,
publish vitals through the bus, survive a silence/recovery cycle, and
leave.  Assertions are deliberately conservative (loopback on a loaded
CI box), but the membership count and the throughput floor are hard:
the deployment layer must sustain at least 100 concurrent members
through the full discovery lifecycle.
"""

import time

import pytest

from repro.deploy import CellServer, ServerConfig, make_devices, read_healthz
from repro.discovery.membership import MemberState
from repro.matching.filters import Filter
from repro.smc.cell import CellConfig

CLIENTS = 100
JOIN_TIMEOUT_S = 60.0
PUBLISH_WINDOW_S = 2.0
THROUGHPUT_FLOOR_EPS = 200.0      # events/s; loopback does thousands


@pytest.fixture
def server():
    config = ServerConfig(
        cell=CellConfig(cell_name="bench-ward",
                        beacon_period_s=0.2, heartbeat_period_s=0.2,
                        silent_after_s=1.0, purge_after_s=4.0,
                        sweep_period_s=0.2),
        discovery_port=0,
        max_members=CLIENTS + 1,
        guard_period_s=0.25,
    )
    cell_server = CellServer(config)
    cell_server.start()
    yield cell_server
    cell_server.close()


def pump(server, condition, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        server.run_for(0.05)
        if condition():
            return True
    return condition()


def test_hundred_clients_full_lifecycle(server, benchmark):
    devices = make_devices(server.scheduler, server.address, CLIENTS,
                           announce_retry_s=0.25, beacon_timeout_s=30.0)
    subscriber = make_devices(server.scheduler, server.address, 1,
                              name_prefix="display",
                              announce_retry_s=0.25,
                              beacon_timeout_s=30.0)[0]
    all_devices = devices + [subscriber]
    try:
        # -- join: every socket through announce -> admit ------------------
        join_started = time.monotonic()
        for device in all_devices:
            device.start()
        assert pump(server, lambda: all(d.joined for d in all_devices),
                    JOIN_TIMEOUT_S), (
            f"only {sum(d.joined for d in all_devices)}/{len(all_devices)} "
            f"joined within {JOIN_TIMEOUT_S}s")
        join_s = time.monotonic() - join_started
        assert pump(server,
                    lambda: len(server.cell.bus.members()) == len(all_devices),
                    10.0), "proxies missing after join"

        got = []
        subscriber.subscribe(Filter.where("vitals.hr", hr=(">", 120)),
                             got.append)
        assert pump(server,
                    lambda: server.cell.bus.stats.subscriptions_active >= 1,
                    5.0)

        # -- publish window ------------------------------------------------
        published = 0
        deadline = time.monotonic() + PUBLISH_WINDOW_S
        while time.monotonic() < deadline:
            for device in devices:
                if device.publish("vitals.hr",
                                  {"hr": 140.0, "patient": device.name}):
                    published += 1
            server.run_for(0.02)
        assert pump(server, lambda: len(got) >= published, 20.0), (
            f"delivered {len(got)}/{published} within the drain window")
        rate = published / PUBLISH_WINDOW_S
        assert rate >= THROUGHPUT_FLOOR_EPS, (
            f"throughput floor: {rate:.0f} ev/s < {THROUGHPUT_FLOOR_EPS}")

        # -- healthz over real TCP ----------------------------------------
        snapshot = read_healthz(server.healthz_address,
                                pump=lambda: server.run_for(0.2))
        assert snapshot["member_count"] == len(all_devices)
        assert snapshot["bus"]["matched"] >= published
        assert snapshot["edge"]["capacity_rejections"] == 0

        # -- silence -> SILENT -> recovery --------------------------------
        quiet = devices[0]
        quiet.agent._cancel_timers()           # mute heartbeats only
        table = server.cell.discovery.table
        assert pump(server,
                    lambda: (record := table.get(quiet.service_id)) is not None
                    and record.state is MemberState.SILENT,
                    10.0), "muted device never went SILENT"
        quiet.agent._start_heartbeats(0.2)     # resume before purge
        assert pump(server,
                    lambda: (record := table.get(quiet.service_id)) is not None
                    and record.state is MemberState.ACTIVE,
                    10.0), "silent device never recovered"
        assert server.cell.discovery.stats.recoveries >= 1

        # -- polite drain: LEAVE all, then one purge by timeout -----------
        straggler = devices[1]
        straggler.agent._cancel_timers()       # goes silent, gets purged
        for device in all_devices:
            if device is not straggler:
                device.leave()
        assert pump(server, lambda: len(table) == 0, 30.0), (
            f"{len(table)} members remain after drain")
        assert server.cell.discovery.stats.purges == len(all_devices)
        assert server.cell.discovery.stats.leaves == len(all_devices) - 1

        benchmark.extra_info["clients"] = len(all_devices)
        benchmark.extra_info["join_s"] = round(join_s, 2)
        benchmark.extra_info["publish_rate_eps"] = round(rate, 0)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    finally:
        for device in all_devices:
            device.close()
