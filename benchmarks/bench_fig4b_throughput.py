"""E2/E5 — Figure 4(b): throughput vs payload size, both event buses.

Shape assertions from the paper:

* throughput grows with payload size (fixed per-event costs amortise);
* the C-based bus sustains more than the Siena-based bus (E5: the gain is
  attributed to dropping data translation);
* both sit far below the raw link's ~575 KB/s (per-event overheads).
"""

from repro.bench.experiments import run_fig4b
from repro.bench.reporting import format_series_table
from repro.sim.radio import LinkProfile

PAYLOADS = (0, 500, 1500, 3000)

#: A wide-area home-monitoring uplink (the continuous-vitals scenario of
#: the related ubiquitous-health work): ~200 ms RTT, same bandwidth as the
#: USB cable so only round trips change.  On a link like this the
#: stop-and-wait channel — not the PDA's CPU — is the bottleneck, which is
#: what the window sweep measures.
HOME_UPLINK = LinkProfile(name="home_uplink", latency_mean_s=0.1,
                          latency_min_s=0.08, latency_max_s=0.14,
                          bandwidth_bps=640_000.0, mtu=1472)


def test_fig4b_throughput_curves(once, benchmark):
    result = once(run_fig4b, payload_sizes=PAYLOADS, duration_s=15.0)
    print()
    print(format_series_table(result))

    siena = {p.x: p.mean for p in
             result.series_by_label("Siena-based event bus").points}
    cbus = {p.x: p.mean for p in
            result.series_by_label("C-based event bus").points}
    benchmark.extra_info["siena_kb_s"] = {int(k): round(v, 1)
                                          for k, v in siena.items()}
    benchmark.extra_info["cbus_kb_s"] = {int(k): round(v, 1)
                                         for k, v in cbus.items()}

    nonzero = [p for p in PAYLOADS if p > 0]
    # Rising with payload.
    for series in (siena, cbus):
        values = [series[p] for p in nonzero]
        assert all(a < b for a, b in zip(values, values[1:])), values
    # C bus above Siena bus at every payload.
    for payload in nonzero:
        assert cbus[payload] > siena[payload]
    # Far below the raw link (paper: ~575 KB/s vs <= ~20 KB/s measured on
    # the paper's own copy-heavy JVM path).  The zero-copy wire path
    # (PR 5) halves the software copies each event pays, so this
    # reproduction now sits somewhat above the paper's 0-22 KB/s axis
    # while keeping the paper's shape: per-event software costs — not
    # link bandwidth — still cap both buses two orders of magnitude
    # below the raw link.
    assert cbus[3000] < 40.0
    assert siena[3000] < 30.0
    # Magnitude band, recalibrated for the single-copy path (measured
    # cbus ~25.0, siena ~14.3 KB/s at 3000 B; the pre-PR 5 double-copy
    # path measured 16.8 / 11.2).
    assert 10.0 < cbus[3000] < 35.0
    assert 6.0 < siena[3000] < 25.0


def test_fig4b_batch_pipeline_beats_per_event(once, benchmark):
    """The batch publish pipeline against the per-event path (E2 follow-on).

    Same testbed, same engine, same pipeline depth; the batched publisher
    coalesces 8 PUBLISH frames per reliable payload and the bus flushes
    one DELIVER batch per scheduling round.  Amortising the per-packet
    and per-match-invocation overhead must show up as a clear events/sec
    win at small payloads (where fixed costs dominate).
    """
    size = 500

    def run():
        per_event = run_fig4b(payload_sizes=(size,), duration_s=10.0,
                              pipeline_depth=32, engines=("forwarding",),
                              batch_size=1)
        batched = run_fig4b(payload_sizes=(size,), duration_s=10.0,
                            pipeline_depth=32, engines=("forwarding",),
                            batch_size=8)
        return (per_event.notes["forwarding.events_per_second"][size],
                batched.notes["forwarding.events_per_second"][size])

    per_eps, batch_eps = once(run)
    benchmark.extra_info["per_event_eps"] = round(per_eps, 1)
    benchmark.extra_info["batch_eps"] = round(batch_eps, 1)
    print(f"\nfig4b batch pipeline: per-event {per_eps:.1f} ev/s, "
          f"batch(8) {batch_eps:.1f} ev/s "
          f"({batch_eps / per_eps:.2f}x)")
    # The virtual-time testbed is deterministic, so this gate is stable.
    assert batch_eps >= 1.5 * per_eps


WINDOWS = (1, 4, 32)


def test_fig4b_window_sweep(once, benchmark):
    """Throughput of the full testbed against the channel window.

    Same hosts, same engine, publisher keeping 32 events outstanding;
    only the reliable-channel window varies, over the high-RTT
    ``HOME_UPLINK``.  At window=1 every hop is stop-and-wait — one
    payload per link round trip — so deliveries serialise behind
    acknowledgements.  Raising the window lets queued payloads stream
    until the PDA's CPU becomes the bottleneck instead of the link.
    (On the paper's USB cable the CPU already dominates and the window
    barely registers — the paper's own copy-cost finding.)
    """
    size = 500

    def run():
        eps = {}
        for window in WINDOWS:
            result = run_fig4b(payload_sizes=(size,), duration_s=20.0,
                               pipeline_depth=32, engines=("forwarding",),
                               batch_size=1, window=window,
                               link_profile=HOME_UPLINK)
            eps[window] = result.notes["forwarding.events_per_second"][size]
        return eps

    eps = once(run)
    benchmark.extra_info["events_per_second_by_window"] = {
        w: round(v, 1) for w, v in eps.items()}
    print("\nfig4b window sweep (forwarding, 500B, 200ms-RTT uplink): "
          + ", ".join(f"w={w}: {eps[w]:.1f} ev/s" for w in WINDOWS))
    # Pipelining must monotonically help, and clearly so at the top end.
    assert eps[4] > eps[1]
    assert eps[32] >= 0.9 * eps[4]
    assert eps[32] >= 2.0 * eps[1]
