"""A5 — response time vs number of recipients.

Section VI plans "further investigation into event bus performance
(variation in delays incurred depending on message size or number of
recipients)".  With one stop-and-wait channel per subscriber and a serial
CPU on the PDA, time-to-last-subscriber should grow with fan-out.
"""

from repro.bench.experiments import run_fanout
from repro.bench.reporting import format_series_table

SUBSCRIBER_COUNTS = (1, 2, 4)


def test_fanout_response_time(once, benchmark):
    result = once(run_fanout, subscriber_counts=SUBSCRIBER_COUNTS,
                  payload_size=1000, samples=5)
    print()
    print(format_series_table(result))
    series = result.series[0]
    by_count = {int(p.x): p.mean for p in series.points}
    benchmark.extra_info["ms_to_last_subscriber"] = {
        k: round(v, 1) for k, v in by_count.items()}

    values = [by_count[c] for c in SUBSCRIBER_COUNTS]
    assert all(a < b for a, b in zip(values, values[1:])), values
    # Serial per-subscriber sends: clearly growing, not constant (fixed
    # per-event costs are shared, so growth is sublinear in fan-out).
    assert by_count[4] > 1.5 * by_count[1]
