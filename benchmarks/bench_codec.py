"""A2 — wire codec micro-benchmarks (wall clock).

Encode/decode cost for events of varying payload size, and packet
framing/checksum cost.  The codec sits on every hop of the bus, so its
cost is part of every figure; this bench keeps it visible in isolation.
"""

import pytest

from repro.core.events import Event, decode_event, encode_event
from repro.ids import service_id_from_name
from repro.transport.packets import Packet, PacketType

SENDER = service_id_from_name("bench")


@pytest.mark.parametrize("size", [0, 500, 2000, 5000])
def test_event_roundtrip(benchmark, size):
    event = Event("bench.payload", {"data": b"x" * size, "seq": 42},
                  SENDER, 7, 1.25)

    def roundtrip():
        decoded, _ = decode_event(encode_event(event))
        return decoded

    decoded = benchmark(roundtrip)
    assert decoded == event


@pytest.mark.parametrize("size", [0, 1400, 5000])
def test_packet_roundtrip(benchmark, size):
    packet = Packet(type=PacketType.DATA, sender=SENDER, seq=9, ack=3,
                    payload=b"y" * size)

    def roundtrip():
        return Packet.decode(packet.encode())

    decoded = benchmark(roundtrip)
    assert decoded.payload == packet.payload
    assert decoded.seq == packet.seq
