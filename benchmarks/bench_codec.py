"""A2 — wire codec micro-benchmarks (wall clock).

Encode/decode cost for events of varying payload size, and packet
framing/checksum cost.  The codec sits on every hop of the bus, so its
cost is part of every figure; this bench keeps it visible in isolation.

PR 5 (zero-copy wire path) added two hard gates, run in CI with
``--benchmark-disable``:

* **fan-out encode memo** — dispatching one matched event to 50
  subscribers must encode >= 5x faster with the shared
  :class:`~repro.core.bus.DeliverMemo` than with one TLV encode per
  proxy (measured ~20x: the memo encodes once and reuses the framed
  payload);
* **event decode** — decoding a 5 KB-payload waveform event must run
  >= 1.5x faster than the pre-refactor decoder (reimplemented verbatim
  below as the reference), measured best-of-rounds so a noisy CI
  neighbour cannot flap the gate (measured ~1.8x from the inline
  fast paths, interned types/senders and single-materialisation parse).
"""

import struct
import time

import pytest

from repro.core import protocol
from repro.core.bus import DeliverMemo
from repro.core.events import Event, decode_event, encode_event
from repro.errors import CodecError
from repro.ids import ServiceId, service_id_from_name
from repro.transport.packets import Packet, PacketType

SENDER = service_id_from_name("bench")

#: 20+ mixed-type attributes — the shape of a correlated-alarms or
#: full-vitals-pack event, where per-token codec overhead dominates.
ATTR_HEAVY = {
    f"attr_{i:02d}": [True, i, float(i), f"val-{i}", bytes((i,)) * 9][i % 5]
    for i in range(24)
}

#: A 5 KB ECG waveform chunk with its realistic metadata attributes.
WAVEFORM_ATTRS = {
    "samples": b"\x07" * 5000, "patient": "p-0042", "ward": "w3",
    "lead": 2, "rate_hz": 250.0, "alarm": False,
}


@pytest.mark.parametrize("size", [0, 500, 2000, 5000])
def test_event_roundtrip(benchmark, size):
    event = Event("bench.payload", {"data": b"x" * size, "seq": 42},
                  SENDER, 7, 1.25)

    def roundtrip():
        decoded, _ = decode_event(encode_event(event))
        return decoded

    decoded = benchmark(roundtrip)
    assert decoded == event


def test_event_roundtrip_attr_heavy(benchmark):
    event = Event("bench.attrs", ATTR_HEAVY, SENDER, 9, 2.5)

    def roundtrip():
        decoded, _ = decode_event(encode_event(event))
        return decoded

    decoded = benchmark(roundtrip)
    assert decoded == event


@pytest.mark.parametrize("size", [0, 1400, 5000])
def test_packet_roundtrip(benchmark, size):
    packet = Packet(type=PacketType.DATA, sender=SENDER, seq=9, ack=3,
                    payload=b"y" * size)

    def roundtrip():
        return Packet.decode(packet.encode())

    decoded = benchmark(roundtrip)
    assert decoded.payload == packet.payload
    assert decoded.seq == packet.seq


def test_batch_framing_roundtrip(benchmark):
    """Encode 64 publish frames into BATCH payloads and decode them back.

    This is one flush of the batch pipeline: scatter-gather chunk lists
    joined once per reliable payload on the way out, memoryview frame
    slices on the way back in.
    """
    events = [Event("vitals.hr", {"hr": 60 + (i % 40), "patient": f"p-{i}"},
                    SENDER, i + 1, 1.25) for i in range(64)]

    def roundtrip():
        payloads = protocol.chunk_frames(
            [protocol.publish_parts(event) for event in events])
        decoded = []
        for payload in payloads:
            op, body = protocol.unframe(memoryview(payload))
            if op == protocol.BusOp.BATCH:
                for framed in protocol.parse_batch(body):
                    _, sub_body = protocol.unframe(framed)
                    decoded.append(decode_event(sub_body)[0])
            else:
                decoded.append(decode_event(body)[0])
        return decoded

    decoded = benchmark(roundtrip)
    assert decoded == events


# -- hard gate 1: fan-out encode memo ----------------------------------------

FAN_OUT = 50


def _best_of(runs, fn):
    best, result = float("inf"), None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fanout_encode_memo_gate(benchmark):
    """One matched event to 50 proxies: memo >= 5x over per-proxy encode.

    The per-proxy side is exactly what ``Proxy.deliver`` did before PR 5
    (one full DELIVER encode per subscriber); the memo side is what the
    bus dispatch does now (encode once, share the framed payload).
    """
    event = Event("vitals.hr",
                  {"hr": 72, "patient": "p-12", "ward": "w3", "alarm": False},
                  SENDER, 9, 2.5)
    rounds = 200

    def per_proxy():
        framed = None
        for _ in range(rounds):
            for _ in range(FAN_OUT):
                framed = protocol.deliver_frame(event)
        return framed

    def with_memo():
        framed = None
        for _ in range(rounds):
            memo = DeliverMemo()
            for _ in range(FAN_OUT):
                framed = memo.deliver_frame(event)
        return framed

    per_proxy_s, per_frame = _best_of(3, per_proxy)
    memo_s, memo_frame = _best_of(3, with_memo)
    assert memo_frame == per_frame          # byte-identical wire output
    speedup = per_proxy_s / memo_s
    benchmark.extra_info["fanout_encode_speedup"] = round(speedup, 1)
    print(f"\nfan-out encode at {FAN_OUT} subscribers: "
          f"per-proxy {per_proxy_s * 1e3:.2f} ms, memo {memo_s * 1e3:.2f} ms "
          f"({speedup:.1f}x)")
    assert speedup >= 5.0, (
        f"fan-out encode memo only {speedup:.2f}x over per-proxy encode "
        f"at {FAN_OUT} subscribers (need >= 5x)")
    benchmark(lambda: None)


# -- hard gate 2: event decode vs the pre-refactor decoder -------------------
#
# The reference below is the seed decoder, copied verbatim (bytes
# materialised at every layer, full Event.__init__ revalidation, enum
# construction per payload).  The golden suite in
# tests/transport/test_zero_copy.py pins that both decoders accept the
# same wire bytes; this gate pins that the new one is actually faster.

def _ref_decode_varint(buf, offset=0):
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise CodecError("truncated varint")
        if shift > 70:
            raise CodecError("varint too long")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _ref_decode_value(buf, offset=0):
    if offset >= len(buf):
        raise CodecError("truncated value: missing tag")
    tag = buf[offset]
    pos = offset + 1
    if tag == 1:
        if pos >= len(buf):
            raise CodecError("truncated bool")
        raw = buf[pos]
        if raw not in (0, 1):
            raise CodecError(f"invalid bool byte: {raw}")
        return bool(raw), pos + 1
    if tag == 2:
        encoded, pos = _ref_decode_varint(buf, pos)
        return (encoded >> 1) ^ -(encoded & 1), pos
    if tag == 3:
        if pos + 8 > len(buf):
            raise CodecError("truncated float")
        (value,) = struct.unpack_from("!d", buf, pos)
        return value, pos + 8
    if tag == 4:
        length, pos = _ref_decode_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated string")
        try:
            return buf[pos:pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8: {exc}") from exc
    if tag == 5:
        length, pos = _ref_decode_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated bytes")
        return bytes(buf[pos:pos + length]), pos + length
    raise CodecError(f"unknown value tag: {tag}")


def _ref_decode_str(buf, offset=0):
    length, pos = _ref_decode_varint(buf, offset)
    if pos + length > len(buf):
        raise CodecError("truncated string")
    try:
        return buf[pos:pos + length].decode("utf-8"), pos + length
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8: {exc}") from exc


def _ref_decode_attr_map(buf, offset=0):
    count, pos = _ref_decode_varint(buf, offset)
    if count > 0xFFFF:
        raise CodecError(f"attribute count too large: {count}")
    attributes = {}
    for _ in range(count):
        name, pos = _ref_decode_str(buf, pos)
        value, pos = _ref_decode_value(buf, pos)
        if name in attributes:
            raise CodecError(f"duplicate attribute on wire: {name!r}")
        attributes[name] = value
    return attributes, pos


def _ref_decode_event(buf, offset=0):
    event_type, pos = _ref_decode_str(buf, offset)
    if pos + 6 > len(buf):
        raise CodecError("truncated event: missing sender id")
    sender = ServiceId.from_bytes48(buf[pos:pos + 6])
    pos += 6
    seqno, pos = _ref_decode_varint(buf, pos)
    if pos + 8 > len(buf):
        raise CodecError("truncated event: missing timestamp")
    (timestamp,) = struct.unpack_from("!d", buf, pos)
    pos += 8
    attributes, pos = _ref_decode_attr_map(buf, pos)
    return Event(event_type, attributes, sender, seqno, timestamp), pos


def _ref_unframe(payload):
    if not payload:
        raise CodecError("empty bus payload")
    try:
        op = protocol.BusOp(payload[0])
    except ValueError:
        raise CodecError(f"unknown bus opcode: {payload[0]}") from None
    return op, payload[1:]


def test_event_decode_gate(benchmark):
    """Decode of a 5 KB waveform event: >= 1.5x over the seed decoder."""
    event = Event("health.ecg.waveform", WAVEFORM_ATTRS, SENDER, 7, 1.25)
    payload = protocol.deliver_frame(event)
    rounds = 500

    def reference():
        decoded = None
        for _ in range(rounds):
            _, body = _ref_unframe(payload)
            decoded, _ = _ref_decode_event(body)
        return decoded

    def current():
        decoded = None
        for _ in range(rounds):
            _, body = protocol.unframe(memoryview(payload))
            decoded, _ = decode_event(body)
        return decoded

    ref_s, ref_event = _best_of(5, reference)
    new_s, new_event = _best_of(5, current)
    assert new_event == ref_event
    assert new_event.timestamp == ref_event.timestamp
    speedup = ref_s / new_s
    benchmark.extra_info["event_decode_speedup"] = round(speedup, 2)
    print(f"\n5 KB event decode: seed {ref_s / rounds * 1e6:.2f} us, "
          f"zero-copy {new_s / rounds * 1e6:.2f} us ({speedup:.2f}x)")
    assert speedup >= 1.5, (
        f"event decode only {speedup:.2f}x over the pre-refactor decoder "
        f"on 5 KB payloads (need >= 1.5x)")
    benchmark(lambda: None)
