"""Setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (which build an editable wheel) fail; this shim keeps
``python setup.py develop`` and legacy ``pip install -e .`` working.
"""

from setuptools import setup

setup()
