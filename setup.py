"""Packaging for the SMC event-service reproduction.

The offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (which build an editable wheel) fail; keeping everything
in classic ``setup.py`` form preserves ``python setup.py develop`` and
legacy ``pip install -e .``.

Installing exposes ``repro-lint``, the repo's AST invariant analyzer
(equivalent to ``python -m repro.analysis``); see the "Enforced
invariants" section of ROADMAP.md for the rule catalogue.
"""

from setuptools import find_packages, setup

setup(
    name="repro-smc",
    version="0.8.0",
    description=(
        "Reproduction of 'An Event Service Supporting Autonomic Management "
        "of Ubiquitous Systems for e-Health' (ICDCS-W 2006): a self-managed "
        "cell event bus with content-based matching, windowed reliable "
        "transport, an autonomic control plane, and a deployment mode."),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-lint = repro.analysis.cli:main",
        ],
    },
)
