"""The control plane's Analyze/Plan/Execute: three feedback controllers.

Each controller closes one of the loops the paper's autonomic-management
claims call for, over a mechanism earlier PRs built fast but left
statically tuned:

* :class:`RttController` — the reliable channel's retransmission timeout
  was a static constructor bound, which no single value can make right
  for both the paper's USB cable (3 ms RTT) and a home-monitoring uplink
  (200 ms RTT).  The channel now measures (RFC-6298 ``srtt``/``rttvar``,
  Karn-filtered — see :mod:`repro.transport.reliability`); this
  controller decides, actuating
  :meth:`~repro.transport.reliability.ReliableChannel.set_rto`.

* :class:`FlushController` — batch flush sizing was a fixed function of
  the channel window.  This controller grows flushes on clean links
  (fewer packets, fewer per-payload costs) and shrinks them under
  measured loss (smaller retransmission units) or quenching
  (back-pressure), actuating the ``flush_limit`` override on
  :class:`~repro.core.client.BusClient` and
  :class:`~repro.core.proxy.Proxy`.

* :class:`ShardRebalancer` — shard routing is static CRC-32 over name
  classes, so a hot class (a ward where every alert rule constrains the
  same vitals attributes) pins one shard.  This controller watches
  per-shard loads, picks the dominant class and a value-bucket key from
  its equality-constraint diversity, and actuates
  :meth:`~repro.core.sharding.ShardedMatcher.split_class`.

Every decision a controller takes is returned as an :class:`Actuation`
record; the manager appends them to its audit log, so a cell's autonomic
history is always reconstructable.  Controllers are pure pollers — they
keep per-target deltas between ticks but never install callbacks, so
disabling one (or the whole manager) leaves the data plane untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Protocol

from repro.core import protocol
from repro.errors import ConfigurationError

if TYPE_CHECKING:                                      # pragma: no cover
    from repro.autonomic.telemetry import MetricRegistry
    from repro.core.sharding import ShardedMatcher
    from repro.transport.reliability import ChannelStats, ReliableChannel


@dataclass(frozen=True)
class Actuation:
    """One executed control decision, as recorded in the audit log."""

    time: float
    controller: str
    target: str
    action: str
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:                          # pragma: no cover
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return (f"[{self.time:9.3f}s] {self.controller}: {self.action} "
                f"{self.target} ({pairs})")


class Controller(Protocol):
    """One MAPE loop body: observe, decide, actuate, report."""

    name: str

    def tick(self, now: float,
             registry: "MetricRegistry | None" = None) -> list[Actuation]:
        """Run one analyze→plan→execute round; return what was actuated."""
        ...


# -- RTT ---------------------------------------------------------------------

class RttController:
    """Drive each channel's RTO from its live RFC-6298 estimate.

    Two regimes per channel:

    * **estimating** — the channel has RTT samples: plan
      ``RTO = srtt + max(K * rttvar, granularity)`` (RFC 6298 §2.3),
      clamped to ``[min_rto, max_rto]``, and actuate only when the change
      clears a deadband (so the audit log records adaptations, not
      jitter).
    * **blind** — no sample yet *and* retransmissions grew since the last
      tick while traffic is in flight.  An RTO below the path RTT makes
      every packet retransmit before its ack returns, and Karn's rule
      then disqualifies every sample — the classic deadlock.  The plan is
      Karn's own: back the RTO off (double it) until some packet survives
      un-retransmitted and the estimator gets its first sample.
    """

    name = "rtt"

    def __init__(self, channels: Callable[[], Iterable["ReliableChannel"]],
                 *, k: float = 4.0, granularity_s: float = 0.001,
                 min_rto_s: float = 0.002, max_rto_s: float = 60.0,
                 deadband: float = 0.1) -> None:
        if min_rto_s <= 0 or max_rto_s < min_rto_s:
            raise ConfigurationError(
                f"bad RTO bounds: min={min_rto_s}, max={max_rto_s}")
        self._channels = channels
        self._k = k
        self._granularity = granularity_s
        self._min_rto = min_rto_s
        self._max_rto = max_rto_s
        self._deadband = deadband
        self._seen: dict[int, tuple[int, int]] = {}   # id -> (samples, rtx)

    def tick(self, now: float,
             registry: "MetricRegistry | None" = None) -> list[Actuation]:
        actuations: list[Actuation] = []
        seen: dict[int, tuple[int, int]] = {}
        for channel in self._channels():
            if channel.closed:
                continue
            stats = channel.stats
            key = id(channel)
            prev_samples, prev_rtx = self._seen.get(key, (0, 0))
            seen[key] = (stats.rtt_samples, stats.retransmissions)
            target = str(channel.peer_address)
            if stats.rtt_samples == 0:
                if (stats.retransmissions > prev_rtx
                        and channel.unacked_count()):
                    old = channel.rto_initial
                    new = min(old * 2.0, self._max_rto)
                    if new > old:
                        channel.set_rto(new)
                        actuations.append(Actuation(
                            now, self.name, target, "backoff_rto",
                            {"old_s": old, "new_s": new,
                             "retransmissions": stats.retransmissions}))
                continue
            if stats.rtt_samples == prev_samples:
                continue                     # no new evidence since last tick
            rto = stats.srtt + max(self._k * stats.rttvar, self._granularity)
            rto = min(max(rto, self._min_rto), self._max_rto)
            old = channel.rto_initial
            if abs(rto - old) <= self._deadband * old:
                continue
            channel.set_rto(rto)
            actuations.append(Actuation(
                now, self.name, target, "set_rto",
                {"old_s": round(old, 6), "new_s": round(rto, 6),
                 "srtt_s": round(stats.srtt, 6),
                 "rttvar_s": round(stats.rttvar, 6),
                 "samples": stats.rtt_samples}))
        self._seen = seen
        return actuations


# -- batch flush sizing ------------------------------------------------------

class FlushTarget(Protocol):
    """What the flush controller needs from a batching sender."""

    flush_limit: int | None

    def transport_stats(self) -> "ChannelStats | None": ...


class FlushController:
    """Adapt batch flush bytes to measured loss and quench pressure.

    Per target and tick, the delta of ``(sent, retransmissions)`` since
    the previous tick gives the recent loss rate of that member's hop.
    Loss above ``high_loss`` — or an active quench advisory — halves the
    flush cap (a lost fragment then costs a small retransmission, and a
    quenched member's queue stops growing in big units); loss below
    ``low_loss`` with real traffic doubles it toward ``max_bytes``,
    amortising per-payload costs on links that have earned the trust.
    Targets are re-listed every tick, so proxies created and destroyed by
    membership churn are picked up and dropped automatically.
    """

    name = "flush"

    def __init__(self, targets: Callable[[], Iterable[FlushTarget]], *,
                 quenched: Callable[[FlushTarget], bool] | None = None,
                 label: Callable[[FlushTarget], str] = lambda t: str(t),
                 min_bytes: int = 1024,
                 max_bytes: int = protocol.BATCH_FLUSH_BYTES,
                 high_loss: float = 0.05, low_loss: float = 0.01,
                 min_sent: int = 8,
                 default_limit: Callable[[FlushTarget], int] | None = None
                 ) -> None:
        if min_bytes < 1 or max_bytes < min_bytes:
            raise ConfigurationError(
                f"bad flush bounds: min={min_bytes}, max={max_bytes}")
        if not 0.0 <= low_loss <= high_loss:
            raise ConfigurationError(
                f"bad loss thresholds: low={low_loss}, high={high_loss}")
        self._targets = targets
        self._quenched = quenched
        self._label = label
        self._min_bytes = min_bytes
        self._max_bytes = max_bytes
        self._high_loss = high_loss
        self._low_loss = low_loss
        self._min_sent = min_sent
        self._default_limit = default_limit or (
            lambda t: protocol.flush_limit(t.endpoint.window))
        self._seen: dict[int, tuple[int, int]] = {}   # id -> (sent, rtx)

    def tick(self, now: float,
             registry: "MetricRegistry | None" = None) -> list[Actuation]:
        actuations: list[Actuation] = []
        seen: dict[int, tuple[int, int]] = {}
        for target in self._targets():
            stats = target.transport_stats()
            if stats is None:
                continue                       # no channel yet (or destroyed)
            key = id(target)
            base = self._seen.get(key)
            seen[key] = (stats.sent, stats.retransmissions)
            quenched = bool(self._quenched(target)) if self._quenched else False
            current = (target.flush_limit if target.flush_limit is not None
                       else self._default_limit(target))
            if base is None and not quenched:
                continue                       # first sight: baseline only
            d_sent = max(0, stats.sent - base[0]) if base else 0
            d_rtx = max(0, stats.retransmissions - base[1]) if base else 0
            loss = d_rtx / d_sent if d_sent else 0.0
            new = current
            action = None
            if quenched or (d_sent >= self._min_sent and loss > self._high_loss):
                new = max(self._min_bytes, current // 2)
                action = "shrink_flush"
            elif d_sent >= self._min_sent and loss <= self._low_loss:
                new = min(self._max_bytes, current * 2)
                action = "grow_flush"
            if action is None or new == current:
                continue
            target.flush_limit = new
            actuations.append(Actuation(
                now, self.name, self._label(target), action,
                {"old_bytes": current, "new_bytes": new,
                 "loss_rate": round(loss, 4), "sent_delta": d_sent,
                 "quenched": quenched}))
        self._seen = seen
        return actuations


# -- shard rebalancing -------------------------------------------------------

class ShardRebalancer:
    """Split a hot name class across shards by a secondary value bucket.

    Analyze: per-shard load, through one of two senses.
    ``sense="fragments"`` (default) reads the registered-fragment counts
    of :meth:`~repro.core.sharding.ShardedMatcher.shard_loads` — table
    skew, visible before a single event flows.  ``sense="events"`` reads
    the *growth* of :meth:`~repro.core.sharding.ShardedMatcher.
    shard_events` between ticks — actual match work done per shard, which
    under a :class:`~repro.core.workers.WorkerPoolExecutor` is exactly
    per-worker load (shard ownership is static), making ``split_class``
    the pool's load-levelling actuator: spreading a hot class across
    shards spreads its events across workers.  Either way the hottest
    shard must carry more than ``hot_ratio`` times the mean load to be
    worth disturbing.  Plan: among the unsplit classes homed on that
    shard with at least ``min_fragments`` fragments, pick the largest,
    and as bucket key the attribute whose equality constraints are most
    diverse (``min_buckets`` distinct operands at least — splitting on a
    single value would move the pin, not break it).  Execute:
    :meth:`~repro.core.sharding.ShardedMatcher.split_class`, one class
    per tick, so each split's effect is observed before the next.
    """

    name = "rebalance"

    def __init__(self, matcher: "ShardedMatcher", *, hot_ratio: float = 2.0,
                 min_fragments: int = 16, min_buckets: int = 2,
                 sense: str = "fragments") -> None:
        if hot_ratio < 1.0:
            raise ConfigurationError(f"hot_ratio must be >= 1, got {hot_ratio}")
        if sense not in ("fragments", "events"):
            raise ConfigurationError(
                f"sense must be 'fragments' or 'events', got {sense!r}")
        self._matcher = matcher
        self._hot_ratio = hot_ratio
        self._min_fragments = min_fragments
        self._min_buckets = min_buckets
        self._sense = sense
        self._last_events: list[int] | None = None

    def _sense_loads(self) -> list[int]:
        """Per-shard load as this controller's sense defines it."""
        if self._sense == "fragments":
            return self._matcher.shard_loads()
        events = self._matcher.shard_events()
        last, self._last_events = self._last_events, events
        if last is None:
            # First tick only observes — a delta needs two samples.
            return [0] * len(events)
        return [cur - prev for cur, prev in zip(events, last)]

    def tick(self, now: float,
             registry: "MetricRegistry | None" = None) -> list[Actuation]:
        matcher = self._matcher
        if matcher.shard_count < 2:
            return []
        loads = self._sense_loads()
        total = sum(loads)
        if not total:
            return []
        mean = total / matcher.shard_count
        hot = max(range(matcher.shard_count), key=lambda i: loads[i])
        if loads[hot] <= self._hot_ratio * max(mean, 1.0):
            return []
        best = None
        for stat in matcher.class_stats():      # sorted: biggest first
            if stat.split or stat.shard != hot:
                continue
            if stat.fragments < self._min_fragments:
                continue
            eligible = {name: diversity
                        for name, diversity in stat.eq_diversity.items()
                        if diversity >= self._min_buckets}
            if not eligible:
                continue
            bucket = max(sorted(eligible), key=lambda n: eligible[n])
            best = (stat, bucket)
            break
        if best is None:
            return []
        stat, bucket = best
        moved = matcher.split_class(stat.names, bucket)
        return [Actuation(
            now, self.name, f"shard-{hot}", "split_class",
            {"names": sorted(stat.names), "bucket_name": bucket,
             "fragments": stat.fragments, "moved": moved, "sense": self._sense,
             "loads_before": loads, "loads_after": matcher.shard_loads()})]
