"""The MAPE-K loop: one manager ticking monitor→analyze→plan→execute.

The paper positions the event service as the substrate *for autonomic
management* of a ubiquitous e-health cell; this module is the management
side using that substrate's own mechanisms as actuators.  An
:class:`AutonomicManager` owns the knowledge base (a
:class:`~repro.autonomic.telemetry.MetricRegistry` of sensors) and a set
of controllers (:mod:`repro.autonomic.controllers`), and ticks them on
the cell's scheduler:

* **monitor** — every sensor is sampled into its rolling window;
* **analyze / plan / execute** — each enabled controller inspects its
  targets (and, if it wants, the registry) and actuates;
* **knowledge** — every actuation is appended to the bounded audit log,
  so operators (and tests) can reconstruct exactly what the cell did to
  itself and why.

The manager can tick on a periodic timer (:meth:`start` — what a cell
does) or be ticked manually (what the deterministic soak tests do, so a
`run_until_idle` simulation is never kept alive by a control timer).

:func:`build_bus_manager` assembles the standard cell-side plane — RTT
control over the endpoint's channels, flush control over the member
proxies, shard rebalancing when the bus is sharded — and is what
:class:`repro.smc.cell.SelfManagedCell` instantiates when
``CellConfig.autonomic`` is set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.autonomic.controllers import (
    Actuation,
    Controller,
    FlushController,
    RttController,
    ShardRebalancer,
)
from repro.autonomic.telemetry import (
    MetricRegistry,
    register_bus_sensors,
    register_quench_sensors,
    register_shard_sensors,
    register_transport_sensors,
)
from repro.core import protocol
from repro.errors import ConfigurationError
from repro.sim.kernel import PeriodicTimer, Scheduler

if TYPE_CHECKING:                                      # pragma: no cover
    from repro.core.bus import EventBus
    from repro.transport.endpoint import PacketEndpoint


@dataclass(frozen=True)
class AutonomicConfig:
    """Everything configurable about one cell's control plane.

    The per-controller flags exist so an operator can run any subset of
    the loops; the defaults are meant to be deployment-agnostic — the
    whole point of closing the loops is that the same config self-tunes
    on a 3 ms USB cable and a 200 ms home uplink.
    """

    #: Control period.  Half a second reacts within a few RTTs of even a
    #: wide-area link without measurably loading the cell.
    tick_s: float = 0.5
    #: Per-controller enable flags.
    rtt: bool = True
    flush: bool = True
    rebalance: bool = True
    #: RTT controller bounds (see controllers.RttController).
    rtt_min_rto_s: float = 0.002
    rtt_max_rto_s: float = 60.0
    #: Flush controller bounds and loss thresholds.
    flush_min_bytes: int = 1024
    flush_max_bytes: int = protocol.BATCH_FLUSH_BYTES
    flush_high_loss: float = 0.05
    flush_low_loss: float = 0.01
    flush_min_sent: int = 8
    #: Rebalancer sensitivity.
    rebalance_hot_ratio: float = 2.0
    rebalance_min_fragments: int = 16
    #: Audit-log bound (oldest actuations are discarded beyond it).
    audit_limit: int = 1000

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise ConfigurationError(f"tick_s must be > 0, got {self.tick_s}")


class AutonomicManager:
    """Ticks a set of controllers over one knowledge base, with audit."""

    def __init__(self, scheduler: Scheduler,
                 registry: MetricRegistry | None = None,
                 controllers: Sequence[Controller] = (),
                 *, config: AutonomicConfig | None = None) -> None:
        self.scheduler = scheduler
        self.config = config if config is not None else AutonomicConfig()
        self.registry = registry if registry is not None else MetricRegistry()
        self.controllers: list[Controller] = list(controllers)
        #: Bounded audit trail of every actuation, oldest first.
        self.audit: deque[Actuation] = deque(maxlen=self.config.audit_limit)
        self.ticks = 0
        self._timer: PeriodicTimer | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin ticking periodically on the scheduler."""
        if self._timer is not None:
            raise ConfigurationError("autonomic manager already started")
        self._timer = PeriodicTimer(self.scheduler, self.config.tick_s,
                                    self.tick, ())

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def started(self) -> bool:
        return self._timer is not None

    # -- the loop ------------------------------------------------------------

    def tick(self) -> list[Actuation]:
        """One monitor→analyze→plan→execute round; returns new actuations."""
        now = self.scheduler.now()
        self.ticks += 1
        self.registry.sample(now)                      # monitor
        fresh: list[Actuation] = []
        for controller in self.controllers:            # analyze/plan/execute
            fresh.extend(controller.tick(now, self.registry))
        self.audit.extend(fresh)                       # knowledge
        return fresh

    # -- introspection ---------------------------------------------------

    def actuations(self, controller: str | None = None) -> list[Actuation]:
        """Audit entries, optionally filtered by controller name."""
        if controller is None:
            return list(self.audit)
        return [a for a in self.audit if a.controller == controller]

    def __repr__(self) -> str:
        names = ",".join(c.name for c in self.controllers)
        state = "started" if self.started else "stopped"
        return (f"<AutonomicManager [{names}] ticks={self.ticks} "
                f"actuations={len(self.audit)} {state}>")


def build_bus_manager(scheduler: Scheduler, bus: "EventBus",
                      endpoint: "PacketEndpoint",
                      config: AutonomicConfig | None = None
                      ) -> AutonomicManager:
    """Assemble the standard control plane for one bus core.

    Sensors cover the bus counters, the endpoint's channels, the shard
    table (when the bus is sharded) and quench state (when enabled);
    controllers are instantiated per the config's enable flags, wired to
    the cell's own actuators:

    * RTT — every live channel of ``endpoint`` (member links);
    * flush — every member proxy registered on ``bus`` (re-listed each
      tick, so churn is handled), with quench state as back-pressure;
    * rebalance — the bus's :class:`~repro.core.sharding.ShardedMatcher`,
      when it has more than one shard.
    """
    from repro.core.sharding import ShardedMatcher   # avoid import cycle

    config = config if config is not None else AutonomicConfig()
    registry = MetricRegistry()
    register_bus_sensors(registry, bus)
    register_transport_sensors(registry, endpoint)
    if bus.quench is not None:
        register_quench_sensors(registry, bus.quench)

    controllers: list[Controller] = []
    if config.rtt:
        controllers.append(RttController(
            endpoint.live_channels,
            min_rto_s=config.rtt_min_rto_s, max_rto_s=config.rtt_max_rto_s))
    if config.flush:
        def proxies():
            return [bus.proxy_of(member) for member in bus.members()]

        def quenched(proxy) -> bool:
            return (bus.quench is not None
                    and bus.quench.is_quenched(proxy.member_id))

        controllers.append(FlushController(
            proxies, quenched=quenched,
            label=lambda proxy: proxy.member_name,
            min_bytes=config.flush_min_bytes,
            max_bytes=config.flush_max_bytes,
            high_loss=config.flush_high_loss,
            low_loss=config.flush_low_loss,
            min_sent=config.flush_min_sent))
    matcher = bus.engine
    if (config.rebalance and isinstance(matcher, ShardedMatcher)
            and matcher.shard_count > 1):
        register_shard_sensors(registry, matcher)
        controllers.append(ShardRebalancer(
            matcher, hot_ratio=config.rebalance_hot_ratio,
            min_fragments=config.rebalance_min_fragments))
    return AutonomicManager(scheduler, registry, controllers, config=config)
