"""Sensors and rolling metric windows — the Monitor and Knowledge of MAPE-K.

The paper's thesis is that the event service exists *to support autonomic
management* of a ubiquitous e-health cell; a management loop is only as
good as what it can observe.  This module is the observation side of the
control plane: a :class:`MetricRegistry` of named sensors, each a zero-
argument callable sampled once per manager tick into a bounded
:class:`RollingWindow` — the "knowledge" the analyze/plan phases of
:class:`repro.autonomic.manager.AutonomicManager` consult and the audit
log snapshots.

Sensor builders cover the signals the three control loops need:

* :func:`register_bus_sensors` — :class:`~repro.core.bus.BusStats`
  counters (publication, match and delivery rates);
* :func:`register_shard_sensors` —
  :meth:`~repro.core.sharding.ShardedMatcher.shard_loads` and per-shard
  match-work counts (the rebalancer's imbalance signal);
* :func:`register_transport_sensors` — aggregate
  :class:`~repro.transport.reliability.ChannelStats` via
  :meth:`~repro.transport.endpoint.PacketEndpoint.channel_stats`,
  including the RFC-6298 ``srtt``/``rttvar`` estimate of the slowest
  path;
* :func:`register_quench_sensors` — how many publishers the quench
  controller currently mutes (the flush controller's back-pressure
  signal).

Sensors must never throw: a sensor returning ``None`` is simply skipped
for that tick (e.g. transport stats before any reliable traffic).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:                                     # pragma: no cover
    from repro.core.bus import EventBus
    from repro.core.quench import QuenchController
    from repro.core.sharding import ShardedMatcher
    from repro.transport.endpoint import PacketEndpoint

SensorFn = Callable[[], "float | int | None"]


class RollingWindow:
    """A bounded window of (time, value) samples with simple reductions."""

    __slots__ = ("_samples",)

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ConfigurationError(f"window capacity must be >= 1, got {capacity}")
        self._samples: deque[tuple[float, float]] = deque(maxlen=capacity)

    def append(self, time: float, value: float) -> None:
        self._samples.append((time, float(value)))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def last(self) -> float | None:
        return self._samples[-1][1] if self._samples else None

    def values(self) -> list[float]:
        return [value for _, value in self._samples]

    def mean(self) -> float | None:
        if not self._samples:
            return None
        return sum(value for _, value in self._samples) / len(self._samples)

    def delta(self) -> float:
        """Last minus first value — the growth of a counter metric over
        the window (0.0 while fewer than two samples are held)."""
        if len(self._samples) < 2:
            return 0.0
        return self._samples[-1][1] - self._samples[0][1]

    def rate(self) -> float:
        """:meth:`delta` per second of window span (0.0 if degenerate)."""
        if len(self._samples) < 2:
            return 0.0
        span = self._samples[-1][0] - self._samples[0][0]
        return self.delta() / span if span > 0 else 0.0


class MetricRegistry:
    """Named sensors, sampled together, remembered in rolling windows."""

    def __init__(self, window: int = 64) -> None:
        self._window_capacity = window
        self._sensors: dict[str, SensorFn] = {}
        self._windows: dict[str, RollingWindow] = {}
        self.samples_taken = 0

    def add(self, name: str, fn: SensorFn) -> None:
        if name in self._sensors:
            raise ConfigurationError(f"duplicate metric name: {name!r}")
        self._sensors[name] = fn
        self._windows[name] = RollingWindow(self._window_capacity)

    def names(self) -> list[str]:
        return sorted(self._sensors)

    def sample(self, now: float) -> dict[str, float]:
        """Read every sensor once; returns the snapshot that was stored.

        Sensors returning ``None`` are skipped (signal not available yet)
        rather than recorded as zero, so window means stay honest.
        """
        self.samples_taken += 1
        snapshot: dict[str, float] = {}
        for name, fn in self._sensors.items():
            value = fn()
            if value is None:
                continue
            value = float(value)
            snapshot[name] = value
            self._windows[name].append(now, value)
        return snapshot

    def window(self, name: str) -> RollingWindow:
        return self._windows[name]

    def latest(self, name: str) -> float | None:
        window = self._windows.get(name)
        return window.last if window is not None else None


# -- sensor builders ---------------------------------------------------------

def register_bus_sensors(registry: MetricRegistry, bus: "EventBus") -> None:
    """Publication/match/delivery counters of one bus core."""
    stats = bus.stats
    registry.add("bus.published", lambda: stats.published)
    registry.add("bus.matched", lambda: stats.matched)
    registry.add("bus.unmatched", lambda: stats.unmatched)
    registry.add("bus.delivered_local", lambda: stats.delivered_local)
    registry.add("bus.delivered_remote", lambda: stats.delivered_remote)
    registry.add("bus.duplicates_dropped", lambda: stats.duplicates_dropped)
    registry.add("bus.subscriptions_active", lambda: stats.subscriptions_active)
    registry.add("bus.members_active", lambda: stats.members_active)


def register_shard_sensors(registry: MetricRegistry,
                           matcher: "ShardedMatcher") -> None:
    """Per-shard fragment loads and cumulative match work."""
    for index in range(matcher.shard_count):
        registry.add(f"shard.load.{index}",
                     lambda i=index: matcher.shard_loads()[i])
        registry.add(f"shard.events.{index}",
                     lambda i=index: matcher.shard_event_counts[i])
    registry.add("shard.splits", lambda: len(matcher.splits()))


def register_transport_sensors(registry: MetricRegistry,
                               endpoint: "PacketEndpoint") -> None:
    """Aggregate reliability counters plus the slowest-path RTT estimate.

    ``channel_stats()`` walks every live channel, so the four sensors
    share one aggregation per sample pass (keyed on the registry's
    sample counter) instead of recomputing it each.
    """
    cache: dict = {"pass": None, "stats": None}

    def stats_now():
        if cache["pass"] != registry.samples_taken:
            cache["pass"] = registry.samples_taken
            cache["stats"] = endpoint.channel_stats()
        return cache["stats"]

    registry.add("chan.sent", lambda: stats_now().sent)
    registry.add("chan.retransmissions",
                 lambda: stats_now().retransmissions)
    registry.add("chan.rtt_samples", lambda: stats_now().rtt_samples)
    registry.add("chan.srtt_s",
                 lambda: stats_now().srtt if stats_now().rtt_samples else None)


def register_quench_sensors(registry: MetricRegistry,
                            quench: "QuenchController") -> None:
    """How many publishers the quench controller currently mutes."""
    registry.add("quench.currently_quenched",
                 lambda: quench.stats.currently_quenched)
    registry.add("quench.messages_sent",
                 lambda: quench.stats.quench_messages_sent)
