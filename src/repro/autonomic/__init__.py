"""The autonomic control plane: MAPE-K feedback over the event service.

The paper's motivating claim is that the event service *supports
autonomic management*; this package is that management loop, closed over
the service's own mechanisms — RTT-adaptive retransmission timeouts,
loss/quench-adaptive batch flush sizing, and live shard rebalancing of
hot name classes.  See :mod:`repro.autonomic.manager` for the loop,
:mod:`repro.autonomic.controllers` for the three controllers and
:mod:`repro.autonomic.telemetry` for the sensor layer.
"""

from repro.autonomic.controllers import (
    Actuation,
    FlushController,
    RttController,
    ShardRebalancer,
)
from repro.autonomic.manager import (
    AutonomicConfig,
    AutonomicManager,
    build_bus_manager,
)
from repro.autonomic.telemetry import MetricRegistry, RollingWindow

__all__ = [
    "Actuation",
    "AutonomicConfig",
    "AutonomicManager",
    "FlushController",
    "MetricRegistry",
    "RollingWindow",
    "RttController",
    "ShardRebalancer",
    "build_bus_manager",
]
