"""repro — reproduction of the AMUSE Self-Managed Cell event service.

An event system for autonomic management of ubiquitous e-health systems
(Strowes, Badr, Dulay, Heeps, Lupu, Sloman & Sventek, ICDCS Workshops
2006), built from scratch in Python: the event bus and its delivery
semantics, both generations of content-based matching engine, the proxy
framework, discovery and policy services, a simulated wireless testbed,
and the benchmark harness that regenerates the paper's evaluation.

Quickstart::

    from repro import Simulator, EventBus, Filter

    sim = Simulator()
    bus = EventBus(sim)
    bus.subscribe_local(Filter.where("health.hr", hr=(">", 120)),
                        lambda e: print("alarm:", dict(e.attributes)))
    nurse = bus.local_publisher("hr-monitor")
    nurse.publish("health.hr", {"hr": 135, "patient": "p-17"})
    sim.run_until_idle()

See ``examples/`` for full Self-Managed Cell scenarios.
"""

from repro.core.bus import BusStats, EventBus, LocalPublisher
from repro.core.client import BusClient
from repro.core.events import (
    NEW_MEMBER_TYPE,
    PURGE_MEMBER_TYPE,
    Event,
    decode_event,
    encode_event,
)
from repro.core.quench import QuenchController
from repro.errors import ReproError
from repro.ids import ServiceId, service_id_from_name, service_id_from_socket
from repro.matching.engine import MatchingEngine, make_engine
from repro.matching.filters import Constraint, Filter, Op, Subscription
from repro.sim.kernel import RealtimeScheduler, Simulator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ServiceId",
    "service_id_from_name",
    "service_id_from_socket",
    "Simulator",
    "RealtimeScheduler",
    "Event",
    "encode_event",
    "decode_event",
    "NEW_MEMBER_TYPE",
    "PURGE_MEMBER_TYPE",
    "EventBus",
    "BusStats",
    "LocalPublisher",
    "BusClient",
    "QuenchController",
    "Op",
    "Constraint",
    "Filter",
    "Subscription",
    "MatchingEngine",
    "make_engine",
]
