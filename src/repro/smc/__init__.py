"""Self-Managed Cell composition.

A :class:`~repro.smc.cell.SelfManagedCell` wires together everything the
paper's Figure 1 shows on the SMC core: the event bus (with a pluggable
matching engine), the proxy bootstrap, the discovery service and the
policy service, all sharing one transport endpoint on the core node
(typically the patient's PDA).

:mod:`repro.smc.federation` adds the peer-to-peer composition of cells the
paper inherits from its companion work on SMC federation (reference [2]):
a cell can import selected event streams from a peer cell by joining it as
an ordinary member, with covering-based subscription aggregation and loop
suppression.
"""

from repro.smc.cell import CellConfig, SelfManagedCell
from repro.smc.federation import FederationLink, aggregate_filters

__all__ = [
    "SelfManagedCell",
    "CellConfig",
    "FederationLink",
    "aggregate_filters",
]
