"""SMC federation: peer-to-peer composition of cells.

"Autonomous, self-managed cells must be composable to form larger cells
but also need to collaborate and integrate with each other in peer-to-peer
relationships" (Section I; elaborated in the companion paper, ref [2]).

A :class:`FederationLink` makes cell A an *importer* of selected event
streams from cell B:

* the link joins B through the ordinary discovery protocol, as a member of
  device type ``smc.peer`` — federation needs no new mechanism on the
  exporting side, just a subscriber;
* the import filter set is first reduced with covering-based aggregation
  (a filter covered by another contributes nothing but matching work);
* every imported event is republished into A with federation metadata:
  ``fed.origin``/``fed.oseq`` (the original sender and seqno, used to
  de-duplicate events arriving over multiple paths) and ``fed.path`` (the
  cells the event has visited, used to suppress forwarding loops).

Two links in opposite directions give symmetric peering; a link from a
parent cell importing ``health.*.alarm`` from each child cell gives the
hierarchical composition of the paper's motivating scenario.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.client import BusClient
from repro.core.events import Event
from repro.discovery.agent import AgentConfig, DiscoveryAgent
from repro.errors import FederationError
from repro.matching.covering import filter_covers
from repro.matching.filters import Filter
from repro.sim.kernel import Scheduler
from repro.smc.cell import SelfManagedCell
from repro.transport.base import Address
from repro.transport.endpoint import PacketEndpoint

_FED_ORIGIN = "fed.origin"
_FED_OSEQ = "fed.oseq"
_FED_PATH = "fed.path"
_PATH_SEP = ">"


def aggregate_filters(filters: list[Filter]) -> list[Filter]:
    """Drop filters covered by another filter in the list.

    The result matches exactly the same events with fewer subscriptions —
    the covering relation's classic use for federated subscription sets.
    """
    kept: list[Filter] = []
    for candidate in filters:
        if any(filter_covers(existing, candidate) for existing in kept):
            continue
        kept = [existing for existing in kept
                if not filter_covers(candidate, existing)]
        kept.append(candidate)
    return kept


@dataclass
class FederationStats:
    imported: int = 0
    suppressed_loops: int = 0
    suppressed_duplicates: int = 0
    subscriptions_aggregated_away: int = 0


class FederationLink:
    """Imports selected event streams from a peer cell into a local cell."""

    def __init__(self, cell: SelfManagedCell, peer_endpoint: PacketEndpoint,
                 scheduler: Scheduler, imports: list[Filter], *,
                 link_name: str | None = None,
                 peer_cell_name: str | None = None,
                 dedup_window: int = 4096) -> None:
        if not imports:
            raise FederationError("federation link needs at least one import")
        self.cell = cell
        self.scheduler = scheduler
        self.stats = FederationStats()
        self._dedup: OrderedDict[tuple, None] = OrderedDict()
        self._dedup_window = dedup_window

        aggregated = aggregate_filters(list(imports))
        self.stats.subscriptions_aggregated_away = len(imports) - len(aggregated)
        self._imports = aggregated

        name = link_name or f"fedlink.{cell.config.cell_name}"
        self.agent = DiscoveryAgent(peer_endpoint, scheduler, AgentConfig(
            name=name, device_type="smc.peer", target_cell=peer_cell_name))
        self.client = BusClient(peer_endpoint, scheduler, bus_address=None)
        self.agent.on_joined = self._on_joined
        self.agent.on_left = self._on_left
        self._publisher = cell.bus.local_publisher(name)
        self._subscribed = False
        self.peer_cell_name: str | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self.agent.start()

    def stop(self) -> None:
        self.agent.stop()
        self.client.bus_address = None
        self._subscribed = False

    @property
    def connected(self) -> bool:
        return self.agent.joined

    # -- join plumbing ----------------------------------------------------

    def _on_joined(self, cell_name: str, core_address: Address) -> None:
        self.peer_cell_name = cell_name
        new_session = self.agent.last_join_was_new
        if new_session:
            # Purged and re-admitted: drop stale channel state, then put
            # the import subscriptions back on the peer's fresh proxy.
            self.client.endpoint.reset_channel_to(core_address)
        self.client.bus_address = core_address
        if not self._subscribed:
            self.client.subscribe(list(self._imports), self._on_imported)
            self._subscribed = True
        elif new_session:
            self.client.resubscribe_all()

    def _on_left(self, reason: str) -> None:
        self.client.bus_address = None

    # -- import path -------------------------------------------------------

    def _on_imported(self, event: Event) -> None:
        """Republish one peer event into the local cell."""
        local_name = self.cell.config.cell_name
        path_raw = event.get(_FED_PATH, "")
        path = [p for p in str(path_raw).split(_PATH_SEP) if p]
        if local_name in path:
            self.stats.suppressed_loops += 1
            return

        origin = event.get(_FED_ORIGIN, str(event.sender))
        oseq = event.get(_FED_OSEQ, event.seqno)
        key = (origin, oseq, event.type)
        if key in self._dedup:
            self.stats.suppressed_duplicates += 1
            return
        self._dedup[key] = None
        if len(self._dedup) > self._dedup_window:
            self._dedup.popitem(last=False)

        if not path and self.peer_cell_name:
            path.append(self.peer_cell_name)
        path.append(local_name)

        attributes = {k: v for k, v in event.attributes.items()
                      if k not in (_FED_ORIGIN, _FED_OSEQ, _FED_PATH)}
        attributes[_FED_ORIGIN] = str(origin)
        attributes[_FED_OSEQ] = int(oseq)
        attributes[_FED_PATH] = _PATH_SEP.join(path)
        self._publisher.publish(event.type, attributes)
        self.stats.imported += 1
