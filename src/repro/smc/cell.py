"""The Self-Managed Cell.

One object that assembles and owns the SMC core: event bus + matching
engine, proxy bootstrap (with the standard e-health translators), quench
controller, discovery service, and the policy service with its deployer.
This is the top of the public API — the examples build everything through
it.

When the cell runs on a simulated host, the matching engine's cost meter is
wired to that host automatically, so the Siena engine's translation work is
charged to the PDA's virtual CPU exactly as DESIGN.md §3 describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autonomic.manager import (
    AutonomicConfig,
    AutonomicManager,
    build_bus_manager,
)
from repro.core.bootstrap import ProxyBootstrap
from repro.core.bus import EventBus, LocalPublisher
from repro.core.sharding import ShardedEventBus
from repro.core.correlate import EventCorrelator
from repro.core.quench import QuenchController
from repro.devices.protocols import standard_translators
from repro.discovery.auth import Authenticator
from repro.discovery.service import DiscoveryConfig, DiscoveryService
from repro.errors import ConfigurationError
from repro.matching.engine import MatchingEngine, make_engine
from repro.matching.filters import Filter
from repro.policy.deployment import PolicyDeployer
from repro.policy.engine import PolicyEngine
from repro.policy.language import parse_policies
from repro.sim.kernel import Scheduler
from repro.transport.base import Transport
from repro.transport.endpoint import PacketEndpoint
from repro.transport.reliability import DEFAULT_WINDOW
from repro.transport.simnet import SimTransport


@dataclass(frozen=True)
class CellConfig:
    """Everything configurable about one cell."""

    cell_name: str
    patient: str = "patient"
    #: Matching engine: "forwarding" (the paper's second-generation bus),
    #: "siena" (first generation, translation-costed), "typed", "brute".
    engine: str = "forwarding"
    #: Matching shards: 1 keeps the classic single bus; > 1 partitions the
    #: subscription table across that many engines by attribute-name class
    #: (see repro.core.sharding) — dispatch semantics are identical.
    shards: int = 1
    enable_quench: bool = False
    #: The autonomic control plane (MAPE-K feedback: RTT-adaptive RTOs,
    #: loss/quench-adaptive flush sizing, hot-class shard rebalancing).
    #: None leaves every mechanism statically tuned, exactly as before;
    #: an AutonomicConfig closes the loops with that tuning.
    autonomic: AutonomicConfig | None = None
    #: Reliable-channel tuning for all member links.  The default window
    #: pipelines every hop (see transport.reliability.DEFAULT_WINDOW);
    #: window=1 restores the paper's stop-and-wait measurement behaviour.
    window: int = DEFAULT_WINDOW
    rto_initial_s: float = 0.05
    rto_max_s: float = 2.0
    #: Discovery timing (see DiscoveryConfig).
    beacon_period_s: float = 1.0
    heartbeat_period_s: float = 1.0
    silent_after_s: float = 2.5
    purge_after_s: float = 10.0
    sweep_period_s: float = 0.5
    #: Lifecycle tuning: silence before DEGRADED (None = 3 x heartbeat)
    #: and the graceful-drain flush deadline (see DiscoveryConfig).
    degraded_after_s: float | None = None
    drain_deadline_s: float = 5.0
    #: Authorisation default when no auth policy applies.
    default_authorise: bool = True

    def discovery_config(self) -> DiscoveryConfig:
        return DiscoveryConfig(
            cell_name=self.cell_name,
            beacon_period_s=self.beacon_period_s,
            heartbeat_period_s=self.heartbeat_period_s,
            silent_after_s=self.silent_after_s,
            purge_after_s=self.purge_after_s,
            sweep_period_s=self.sweep_period_s,
            degraded_after_s=self.degraded_after_s,
            drain_deadline_s=self.drain_deadline_s,
        )


class SelfManagedCell:
    """The assembled SMC core."""

    def __init__(self, transport: Transport, scheduler: Scheduler,
                 config: CellConfig,
                 authenticator: Authenticator | None = None,
                 engine: MatchingEngine | None = None) -> None:
        self.config = config
        self.scheduler = scheduler
        self.transport = transport
        self.endpoint = PacketEndpoint(
            transport, scheduler, window=config.window,
            rto_initial=config.rto_initial_s, rto_max=config.rto_max_s)

        if config.shards < 1:
            raise ConfigurationError(
                f"CellConfig.shards must be >= 1, got {config.shards}")
        if config.shards > 1:
            if engine is not None:
                raise ConfigurationError(
                    "a sharded cell builds one engine per shard — configure "
                    "the engine by name via CellConfig.engine, not an "
                    "engine instance")
            self.bus = ShardedEventBus(scheduler, config.shards,
                                       config.engine,
                                       name=f"bus.{config.cell_name}")
            engine = self.bus.engine
        else:
            if engine is None:
                engine = make_engine(config.engine)
            self.bus = EventBus(scheduler, engine,
                                name=f"bus.{config.cell_name}")
        self.engine = engine
        self._wire_cost_meter(transport, engine)

        if isinstance(transport, SimTransport):
            self.bus.meter = transport.host
        self.bootstrap = ProxyBootstrap(self.bus, self.endpoint)
        for translator in standard_translators(config.patient):
            self.bootstrap.register_translator(translator)

        self.quench: QuenchController | None = None
        if config.enable_quench:
            self.quench = QuenchController(self.bus)

        self.discovery = DiscoveryService(self.bus, self.endpoint, scheduler,
                                          config.discovery_config(),
                                          authenticator)
        self.policy = PolicyEngine(self.bus,
                                   default_authorise=config.default_authorise)
        self.deployer = PolicyDeployer(self.policy, self.bus)
        #: Window-based event correlation (composite events for policies).
        self.correlator = EventCorrelator(self.bus, scheduler)

        #: The autonomic control plane, ticking with the cell when
        #: configured (CellConfig.autonomic).
        self.autonomic: AutonomicManager | None = None
        if config.autonomic is not None:
            self.autonomic = build_bus_manager(scheduler, self.bus,
                                               self.endpoint,
                                               config.autonomic)

        #: Cell-level journal fed by the built-in ``log`` action handler.
        self.log: list[tuple[float, str, dict]] = []
        self.policy.executor.register_handler("log", self._log_handler)
        self._started = False

    @staticmethod
    def _wire_cost_meter(transport: Transport, engine: MatchingEngine) -> None:
        set_meter = getattr(engine, "set_meter", None)
        if set_meter is not None and isinstance(transport, SimTransport):
            set_meter(transport.host)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin beaconing; the cell is open for members."""
        if self._started:
            raise ConfigurationError("cell already started")
        self._started = True
        self.discovery.start()
        if self.autonomic is not None:
            self.autonomic.start()

    def stop(self) -> None:
        if self._started:
            self._started = False
            self.discovery.stop()
            if self.autonomic is not None:
                self.autonomic.stop()

    @property
    def started(self) -> bool:
        return self._started

    # -- conveniences ---------------------------------------------------------

    def load_policies(self, source: str) -> None:
        """Parse and load Ponder-lite policy text into this cell."""
        self.policy.load(parse_policies(source))

    def subscribe(self, filters: Filter | list[Filter], callback) -> int:
        """Subscribe an in-cell callback (monitoring UIs, tests)."""
        return self.bus.subscribe_local(filters, callback)

    def publisher(self, name: str) -> LocalPublisher:
        """A publishing handle for an in-cell service."""
        return self.bus.local_publisher(name)

    def member_names(self) -> list[str]:
        return self.discovery.member_names()

    def _log_handler(self, target: str, params: dict) -> None:
        self.log.append((self.scheduler.now(), target, dict(params)))

    def __repr__(self) -> str:
        state = "started" if self._started else "stopped"
        return (f"<SelfManagedCell {self.config.cell_name!r} "
                f"engine={self.engine.name} members={len(self.bus.members())} "
                f"{state}>")
