"""Packet demultiplexing for one SMC node.

A :class:`PacketEndpoint` owns a transport and splits incoming datagrams
into two planes, mirroring the paper's separation of concerns between the
discovery protocol and the event bus:

* **control plane** — discovery packet types (BEACON, ANNOUNCE, JOIN_*,
  HEARTBEAT, LEAVE) are handed, unsequenced, to a registered control
  handler.  The discovery protocol "does not use the event bus" and
  tolerates datagram loss by design.
* **data plane** — DATA/ACK/RAW packets are routed to the per-peer
  :class:`~repro.transport.reliability.ReliableChannel`, created on demand,
  which delivers ordered, duplicate-free payloads upward.

The endpoint also learns the address of every service id it hears from, so
upper layers can address peers by id alone.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import AddressError, PacketError
from repro.ids import ServiceId
from repro.sim.kernel import Scheduler
from repro.transport.base import Address, Transport
from repro.transport.packets import Packet, PacketType
from repro.transport.reliability import DEFAULT_WINDOW, ChannelStats, ReliableChannel

ControlHandler = Callable[[Packet, Address], None]
PayloadHandler = Callable[[ServiceId, bytes], None]

_CONTROL_TYPES = frozenset({
    PacketType.BEACON, PacketType.ANNOUNCE, PacketType.JOIN_REQ,
    PacketType.JOIN_ACK, PacketType.JOIN_NAK, PacketType.HEARTBEAT,
    PacketType.LEAVE, PacketType.LEAVE_INTENT,
})


class PacketEndpoint:
    """Demultiplexes one transport into control and reliable-data planes."""

    def __init__(self, transport: Transport, scheduler: Scheduler,
                 *, window: int = DEFAULT_WINDOW, rto_initial: float = 0.05,
                 rto_max: float = 2.0, max_retries: int | None = None) -> None:
        self.transport = transport
        self.scheduler = scheduler
        self._window = window
        self._rto_initial = rto_initial
        self._rto_max = rto_max
        self._max_retries = max_retries
        self._channels: dict[Address, ReliableChannel] = {}
        self._peer_addresses: dict[ServiceId, Address] = {}
        # Reverse of _peer_addresses, kept for *every* address a peer has
        # used since it was last forgotten — a roamed peer owns several
        # entries at once.  Gives O(1) give-up attribution, and teardown
        # of a roamed peer's whole channel set derives from it.
        self._address_peers: dict[Address, ServiceId] = {}
        self._control_handler: ControlHandler | None = None
        self._payload_handler: PayloadHandler | None = None
        self._give_up_handler: Callable[[ServiceId | None, bytes], None] | None = None
        self.decode_errors = 0
        transport.set_receiver(self._on_datagram)

    # -- identity ------------------------------------------------------------

    @property
    def service_id(self) -> ServiceId:
        return self.transport.service_id

    @property
    def local_address(self) -> Address:
        return self.transport.local_address

    @property
    def window(self) -> int:
        """Send window every channel of this endpoint is created with.

        Upper layers use it to pick a batch flush size: a stop-and-wait
        hop wants one big payload per flush, a pipelined hop wants
        MTU-sized payloads that stream concurrently.
        """
        return self._window

    # -- wiring ------------------------------------------------------------

    def set_control_handler(self, handler: ControlHandler | None) -> None:
        """Register the discovery-plane packet handler."""
        self._control_handler = handler

    def set_payload_handler(self, handler: PayloadHandler | None) -> None:
        """Register the ordered-payload upcall: ``handler(peer_id, bytes)``."""
        self._payload_handler = handler

    def set_give_up_handler(
            self, handler: Callable[[ServiceId | None, bytes], None] | None) -> None:
        """Register the callback for payloads abandoned after max retries."""
        self._give_up_handler = handler

    # -- sending --------------------------------------------------------------

    def send_reliable(self, dest: Address, payload: bytes) -> None:
        """Send ``payload`` with ack/retransmit/ordering to ``dest``."""
        self._channel(dest).send(payload)

    def send_raw(self, dest: Address, payload: bytes) -> None:
        """Send ``payload`` once, unsequenced and unacknowledged."""
        self._channel(dest).send(payload, unreliable=True)

    def send_control(self, dest: Address, ptype: PacketType,
                     payload: bytes = b"") -> None:
        """Send a discovery-plane packet to one peer."""
        self._check_control(ptype)
        packet = Packet(type=ptype, sender=self.service_id, payload=payload)
        self.transport.send(dest, packet.encode())

    def broadcast_control(self, ptype: PacketType, payload: bytes = b"") -> None:
        """Broadcast a discovery-plane packet to the whole domain."""
        self._check_control(ptype)
        packet = Packet(type=ptype, sender=self.service_id, payload=payload)
        self.transport.broadcast(packet.encode())

    # -- peer bookkeeping -------------------------------------------------

    def address_of(self, peer: ServiceId) -> Address:
        """Last known transport address for ``peer``."""
        try:
            return self._peer_addresses[peer]
        except KeyError:
            raise AddressError(f"no known address for {peer}") from None

    def knows_peer(self, peer: ServiceId) -> bool:
        return peer in self._peer_addresses

    def learn_peer(self, peer: ServiceId, address: Address) -> None:
        """Record ``peer``'s address without waiting to hear a packet.

        Used when another subsystem (e.g. a New Member event) already knows
        where the peer lives.  Re-learning a peer at a new address (the
        peer *roamed*) keeps any channel state at its previous addresses
        attributed to it, so :meth:`close_channel` tears down the whole
        set when the member is purged.
        """
        previous_owner = self._address_peers.get(address)
        if previous_owner is not None and previous_owner != peer:
            # The address changed hands (e.g. a NAT rebind).  Channel
            # state there belongs to the previous peer's dead session:
            # its queued payloads must not surface at the new occupant,
            # and the new peer's sequence space is unrelated — so the
            # channel resets now, and the previous peer's stale forward
            # mapping goes with it.
            self.reset_channel_to(address)
            if self._peer_addresses.get(previous_owner) == address:
                del self._peer_addresses[previous_owner]
        self._peer_addresses[peer] = address
        self._address_peers[address] = peer

    def channel_for(self, peer: ServiceId) -> ReliableChannel:
        """The reliable channel to ``peer`` (created if absent)."""
        return self._channel(self.address_of(peer))

    def channel_to(self, address: Address) -> ReliableChannel:
        """The reliable channel to ``address`` (created if absent)."""
        return self._channel(address)

    def existing_channel(self, address: Address) -> ReliableChannel | None:
        """The live channel to ``address``, or None — never creates one.

        The observability accessor: reading stats must not instantiate
        channel state toward a purged or never-contacted peer.
        """
        channel = self._channels.get(address)
        if channel is None or channel.closed:
            return None
        return channel

    def channel_stats(self) -> ChannelStats:
        """Aggregate reliability counters over every live channel.

        Counters sum; the RTT estimator fields (``srtt``/``rttvar``) are
        per-path quantities, so the aggregate carries the *slowest* path —
        the one any endpoint-wide timeout decision must respect.
        """
        total = ChannelStats()
        for channel in self._channels.values():
            for field in dataclasses.fields(ChannelStats):
                setattr(total, field.name,
                        getattr(total, field.name)
                        + getattr(channel.stats, field.name))
        paths = [c.stats for c in self._channels.values() if c.stats.rtt_samples]
        total.srtt = max((s.srtt for s in paths), default=0.0)
        total.rttvar = max((s.rttvar for s in paths), default=0.0)
        return total

    def live_channels(self) -> list[ReliableChannel]:
        """Every open channel of this endpoint, any peer, any address.

        The autonomic control plane iterates these to read RTT estimates
        and actuate per-channel RTOs; observability code uses it to list
        per-peer counters without creating channel state.
        """
        return [channel for channel in self._channels.values()
                if not channel.closed]

    def channel_addresses(self, peer: ServiceId) -> set[Address]:
        """Addresses at which ``peer`` currently has live channel state.

        One entry for a settled peer; several while it has roamed and the
        superseded channels have not yet been torn down.
        """
        return {address for address, owner in self._address_peers.items()
                if owner == peer and address in self._channels}

    def close_channel(self, peer: ServiceId) -> int:
        """Destroy every channel to ``peer``, dropping any queued payloads.

        Covers the peer's current address *and* any address it roamed
        away from, so a purged member's queue at an old address dies with
        its proxy instead of leaking (and retransmitting) forever.
        Returns the number of undelivered payloads discarded.
        """
        dropped = 0
        for address in self.channel_addresses(peer):
            dropped += self.reset_channel_to(address)
        return dropped

    def reset_channel_to(self, address: Address) -> int:
        """Destroy any channel state for ``address``; next send starts
        fresh at sequence 1.

        Both ends of a membership session must reset together: a device
        calls this when a JOIN_ACK announces a new session, mirroring the
        fresh channel the cell created with its new proxy.  Returns the
        number of queued payloads discarded.
        """
        channel = self._channels.pop(address, None)
        if channel is None:
            return 0
        dropped = channel.unacked_count()
        channel.close()
        return dropped

    def move_peer(self, peer: ServiceId, new_address: Address) -> int:
        """Migrate ``peer``'s channel state to ``new_address`` (it roamed).

        Every channel at a superseded address is drained and torn down;
        its undelivered payloads are requeued, oldest first, on a channel
        to the new address — so a roamed member's queued deliveries follow
        it instead of retransmitting to the stale address until purge.
        The forward and reverse maps are updated through
        :meth:`learn_peer`, which also handles the new address having
        changed hands.  Returns the number of payloads requeued.
        """
        old_addresses = [address for address in self.channel_addresses(peer)
                         if address != new_address]
        payloads: list[bytes] = []
        for address in old_addresses:
            channel = self._channels.pop(address)
            payloads.extend(channel.drain_undelivered())
            # The superseded address hosts no state now; dropping its
            # reverse entry keeps the map from growing with every roam.
            if self._address_peers.get(address) == peer:
                del self._address_peers[address]
        self.learn_peer(peer, new_address)
        if payloads:
            channel = self._channel(new_address)
            for payload in payloads:
                channel.send(payload)
        return len(payloads)

    def forget_peer(self, peer: ServiceId) -> None:
        """Drop every channel and every learned address for ``peer``."""
        self.close_channel(peer)
        self._peer_addresses.pop(peer, None)
        stale = [address for address, owner in self._address_peers.items()
                 if owner == peer]
        for address in stale:
            del self._address_peers[address]

    def close(self) -> None:
        for channel in self._channels.values():
            channel.close()
        self._channels.clear()
        self._peer_addresses.clear()
        self._address_peers.clear()
        self.transport.close()

    # -- internals -----------------------------------------------------------

    def _check_control(self, ptype: PacketType) -> None:
        if ptype not in _CONTROL_TYPES:
            raise PacketError(f"{ptype.name} is not a control packet type")

    def _channel(self, address: Address) -> ReliableChannel:
        channel = self._channels.get(address)
        if channel is None or channel.closed:
            channel = ReliableChannel(
                self.transport, self.scheduler, address,
                self._on_channel_deliver, window=self._window,
                rto_initial=self._rto_initial, rto_max=self._rto_max,
                max_retries=self._max_retries,
                on_give_up=lambda payload, a=address: self._on_give_up(a, payload))
            self._channels[address] = channel
        return channel

    def _on_channel_deliver(self, peer: ServiceId, payload: bytes) -> None:
        if self._payload_handler is not None:
            self._payload_handler(peer, payload)

    def _on_give_up(self, address: Address, payload: bytes) -> None:
        if self._give_up_handler is None:
            return
        # The reverse map remembers roamed-away addresses too, so a
        # payload abandoned on a superseded channel is still attributed
        # to its peer (the old linear scan over current addresses missed
        # those, and cost O(peers) per abandoned payload).
        self._give_up_handler(self._address_peers.get(address), payload)

    def _on_datagram(self, src: Address, datagram: bytes) -> None:
        try:
            packet = Packet.decode(datagram)
        except PacketError:
            self.decode_errors += 1
            return
        if packet.sender == self.service_id:
            return          # broadcast echo of our own traffic
        self.learn_peer(packet.sender, src)
        if packet.type in _CONTROL_TYPES:
            if self._control_handler is not None:
                self._control_handler(packet, src)
            return
        self._channel(src).handle_packet(packet)
