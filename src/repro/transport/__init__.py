"""The generic transport layer (paper Section III-D).

Components in the core of an SMC "use a generic transport layer to
communicate with each other, which decouples higher level components from
the actual network layer beneath".  The abstract interface exchanges raw
byte arrays — deliberately *not* language-level serialised objects — so SMC
services can be written in any language (the paper's motivation for avoiding
Java serialisation).

Three concrete transports are provided:

* :class:`~repro.transport.inmem.InMemoryTransport` — zero-cost hub for
  unit tests;
* :class:`~repro.transport.simnet.SimTransport` — rides the simulated
  network (latency, loss, fragmentation, range, host CPU costs);
* :class:`~repro.transport.udp.UdpTransport` — real UDP datagram sockets,
  equivalent to the paper's prototype transport.

Above the datagram layer, :mod:`repro.transport.packets` defines the framing
(48-bit sender ids, sequence numbers, CRC-32) and
:mod:`repro.transport.reliability` implements the acknowledged, ordered,
duplicate-suppressed channel the event bus semantics are built on.
"""

from repro.transport.base import Transport, TransportStats
from repro.transport.endpoint import PacketEndpoint
from repro.transport.inmem import InMemoryHub, InMemoryTransport
from repro.transport.packets import Packet, PacketFlags, PacketType
from repro.transport.reliability import ChannelStats, ReliableChannel
from repro.transport.simnet import SimTransport
from repro.transport.udp import UdpTransport

__all__ = [
    "Transport",
    "TransportStats",
    "InMemoryHub",
    "InMemoryTransport",
    "SimTransport",
    "UdpTransport",
    "Packet",
    "PacketType",
    "PacketFlags",
    "ReliableChannel",
    "ChannelStats",
    "PacketEndpoint",
]
