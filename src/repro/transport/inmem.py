"""In-memory transport for unit tests.

An :class:`InMemoryHub` connects any number of named transports.  Datagrams
are delivered through the scheduler (``call_soon`` by default, or after a
fixed delay), never synchronously from inside ``send`` — keeping the
callback ordering identical to the real transports so tests exercise the
same re-entrancy behaviour the deployed system has.

The hub can drop or delay traffic on demand, which the delivery-semantics
tests use to force retransmissions without a full network simulation.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AddressError, ConfigurationError
from repro.ids import ServiceId, service_id_from_name
from repro.sim.kernel import Scheduler
from repro.transport.base import Transport


class InMemoryHub:
    """Connects in-memory transports by node name."""

    def __init__(self, scheduler: Scheduler, delay_s: float = 0.0) -> None:
        if delay_s < 0:
            raise ConfigurationError(f"negative delay: {delay_s}")
        self.scheduler = scheduler
        self.delay_s = delay_s
        self._transports: dict[str, InMemoryTransport] = {}
        #: Optional filter invoked per datagram; returning False drops it.
        self.drop_filter: Callable[[str, str, bytes], bool] | None = None
        self.datagrams_dropped = 0

    def create(self, name: str) -> "InMemoryTransport":
        """Create and register a transport for node ``name``."""
        if name in self._transports:
            raise ConfigurationError(f"duplicate node name: {name}")
        transport = InMemoryTransport(self, name)
        self._transports[name] = transport
        return transport

    def names(self) -> list[str]:
        return sorted(self._transports)

    def _route(self, src: str, dest: str, payload: bytes) -> None:
        if dest not in self._transports:
            raise AddressError(f"unknown destination: {dest!r}")
        self._schedule(src, dest, payload)

    def _route_broadcast(self, src: str, payload: bytes) -> None:
        for name in sorted(self._transports):
            if name != src:
                self._schedule(src, name, payload)

    def _schedule(self, src: str, dest: str, payload: bytes) -> None:
        if self.drop_filter is not None and not self.drop_filter(src, dest, payload):
            self.datagrams_dropped += 1
            return
        if self.delay_s:
            self.scheduler.call_later(self.delay_s, self._deliver, src, dest, payload)
        else:
            self.scheduler.call_soon(self._deliver, src, dest, payload)

    def _deliver(self, src: str, dest: str, payload: bytes) -> None:
        transport = self._transports.get(dest)
        if transport is not None and not transport.closed:
            transport._deliver(src, payload)

    def inject(self, src: str, dest: str, payload: bytes) -> None:
        """Deliver a datagram *bypassing* the drop filter.

        The fault harness's re-injection seam: a filter that decided to
        delay, duplicate or corrupt a datagram consumes the original and
        schedules the mutated copy through here — without the bypass the
        copy would hit the same filter again.
        """
        self.scheduler.call_soon(self._deliver, src, dest, payload)


class InMemoryTransport(Transport):
    """A hub-attached transport addressed by node name."""

    def __init__(self, hub: InMemoryHub, name: str) -> None:
        super().__init__(service_id=service_id_from_name(name),
                         local_address=name)
        self._hub = hub

    def _send_datagram(self, dest, payload: bytes) -> None:
        if not isinstance(dest, str):
            raise AddressError(f"in-memory addresses are names, got {dest!r}")
        self._hub._route(self.local_address, dest, payload)

    def _broadcast_datagram(self, payload: bytes) -> None:
        self._hub._route_broadcast(self.local_address, payload)


def make_service_id(name: str) -> ServiceId:
    """Convenience re-export so tests can predict in-memory ids."""
    return service_id_from_name(name)
