"""Transport riding the simulated network.

``SimTransport`` is the byte-array transport interface bound to one node of
a :class:`~repro.sim.radio.SimNetwork`.  All link behaviour — latency,
serialisation, loss, fragmentation, radio range, and host CPU charging —
lives in the network model; this class only adapts the interfaces.
"""

from __future__ import annotations

from repro.errors import AddressError
from repro.ids import service_id_from_name
from repro.sim.hosts import SimHost
from repro.sim.radio import SimNetwork
from repro.transport.base import Transport


class SimTransport(Transport):
    """A node's endpoint on the simulated network."""

    def __init__(self, network: SimNetwork, name: str) -> None:
        super().__init__(service_id=service_id_from_name(name),
                         local_address=name)
        self._network = network
        network.set_receiver(name, self._deliver)

    @property
    def host(self) -> SimHost:
        """The simulated host this transport runs on."""
        return self._network.host_of(self.local_address)

    def _send_datagram(self, dest, payload: bytes) -> None:
        if not isinstance(dest, str):
            raise AddressError(f"sim addresses are node names, got {dest!r}")
        self._network.send(self.local_address, dest, payload)

    def _broadcast_datagram(self, payload: bytes) -> None:
        self._network.broadcast(self.local_address, payload)
