"""Binary value codec shared by packets, events, filters and policies.

This is a small hand-rolled TLV (tag-length-value) format.  The paper makes
a point of keeping byte arrays at the transport boundary so that nothing
depends on Java serialisation; in the same spirit nothing here depends on
``pickle`` — every value that crosses a network path is encoded explicitly.

Supported value types mirror what sensors and management components need:
``bool``, ``int`` (arbitrary precision via zig-zag varint), ``float``
(IEEE-754 double), ``str`` (UTF-8) and ``bytes``.

All multi-byte fixed-width fields are big-endian ("network order").

Wire format reference (shared by the packet, bus-protocol and event
layers)::

    varint        LEB128: 7 value bits per byte, LSB group first, high bit
                  set on every byte except the last.
    string        varint byte-length, then UTF-8 bytes (no tag).
    value         1-byte tag, then a tag-specific body:
                    tag 1  bool    1 byte (0 or 1)
                    tag 2  int     varint of the zig-zag mapped value
                    tag 3  float   8 bytes, IEEE-754 double, big-endian
                    tag 4  str     varint length + UTF-8 bytes
                    tag 5  bytes   varint length + raw bytes
    attr map      varint entry count, then per entry: string name + value,
                  names sorted bytewise (canonical — encoding a map twice
                  yields identical bytes).
    frame list    varint frame count, then per frame: varint length + the
                  opaque frame bytes (the BATCH body).

Zero-copy discipline: every ``encode_*`` function has a ``write_*``
sibling that appends chunks to a caller-supplied list instead of
returning joined bytes, so multi-layer encoders (event -> frame -> batch
-> packet) can delay the single ``b"".join`` to the reliable-payload
boundary.  Every ``decode_*`` function accepts any object supporting the
buffer protocol (``bytes``, ``bytearray``, ``memoryview``) and slices
without materialising intermediate copies; the only copies taken are for
values that escape into long-lived objects (``bytes`` attribute values).
"""

from __future__ import annotations

import struct

from typing import Mapping, Sequence

from repro.errors import CodecError

Value = bool | int | float | str | bytes
#: Anything the decode entry points accept.
Buffer = bytes | bytearray | memoryview


def as_bytes(buf: Buffer) -> bytes:
    """Materialise a decoded buffer slice into real ``bytes``.

    The boundary rule for the zero-copy path: a body that escapes the
    decode layer (device byte-protocols, user callbacks) must not alias
    the datagram buffer and must support the full bytes API.
    """
    # repro-lint: ignore[RL003] this IS the documented escape boundary
    return buf if type(buf) is bytes else bytes(buf)

_TAG_BOOL = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_BYTES = 5

_MAX_BLOB = 0xFFFF          # single string/bytes value cap (64 KiB)
_MAX_ATTRS = 0xFFFF
#: Cap on frames in one batch (same field width as the attribute count).
MAX_FRAMES = _MAX_ATTRS

# Pre-built single-byte chunks so the scatter-gather writers never
# allocate for fixed fields.
_BOOL_CHUNKS = (bytes((_TAG_BOOL, 0)), bytes((_TAG_BOOL, 1)))
_INT_TAG = bytes((_TAG_INT,))
_STR_TAG = bytes((_TAG_STR,))
_BYTES_TAG = bytes((_TAG_BYTES,))
_FLOAT_STRUCT = struct.Struct("!Bd")
_FLOAT_BODY = struct.Struct("!d")
#: One-byte varints (values 0..127) are by far the most common on this
#: wire (attribute counts, frame counts, small lengths); interning them
#: keeps the writers allocation-free on the hot path.
_VARINT_1 = tuple(bytes((b,)) for b in range(0x80))

#: Interned wire bytes -> attribute name (see decode_attr_map).
_NAME_CACHE: dict[bytes, str] = {}
_NAME_CACHE_MAX = 4096


def encode_varint(value: int) -> bytes:
    """Encode an unsigned integer as LEB128."""
    if 0 <= value < 0x80:
        return _VARINT_1[value]
    if value < 0:
        raise CodecError(f"varint requires a non-negative int, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def write_varint(out: list[bytes], value: int) -> None:
    """Append a LEB128 unsigned integer's chunk to ``out`` (no joining)."""
    out.append(encode_varint(value))


def decode_varint(buf: Buffer, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 unsigned integer; returns (value, new offset)."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise CodecError("truncated varint")
        if shift > 70:
            raise CodecError("varint too long")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map a signed int onto an unsigned one (small magnitudes stay small)."""
    return (value << 1) ^ (value >> (value.bit_length() + 1)) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def write_value(out: list[bytes], value: Value) -> None:
    """Append one tagged value's chunks to ``out`` (no joining)."""
    # bool must be tested before int: bool is an int subclass.
    if isinstance(value, bool):
        out.append(_BOOL_CHUNKS[1 if value else 0])
    elif isinstance(value, int):
        out.append(_INT_TAG)
        out.append(encode_varint(zigzag_encode(value)))
    elif isinstance(value, float):
        out.append(_FLOAT_STRUCT.pack(_TAG_FLOAT, value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        if len(raw) > _MAX_BLOB:
            raise CodecError(f"string too long for wire: {len(raw)} bytes")
        out.append(_STR_TAG)
        out.append(encode_varint(len(raw)))
        out.append(raw)
    elif isinstance(value, bytes):
        if len(value) > _MAX_BLOB:
            raise CodecError(f"bytes too long for wire: {len(value)} bytes")
        out.append(_BYTES_TAG)
        out.append(encode_varint(len(value)))
        out.append(value)
    else:
        raise CodecError(f"unsupported value type: {type(value).__name__}")


def encode_value(value: Value) -> bytes:
    """Encode one tagged value."""
    out: list[bytes] = []
    write_value(out, value)
    return out[0] if len(out) == 1 else b"".join(out)


def decode_value(buf: Buffer, offset: int = 0) -> tuple[Value, int]:
    """Decode one tagged value; returns (value, new offset)."""
    if offset >= len(buf):
        raise CodecError("truncated value: missing tag")
    tag = buf[offset]
    pos = offset + 1
    if tag == _TAG_BOOL:
        if pos >= len(buf):
            raise CodecError("truncated bool")
        raw = buf[pos]
        if raw not in (0, 1):
            raise CodecError(f"invalid bool byte: {raw}")
        return bool(raw), pos + 1
    # One-byte varints cover almost every length/int on this wire; the
    # inline fast path skips a function call per value on the hot path.
    if tag == _TAG_INT:
        if pos < len(buf) and buf[pos] < 0x80:
            encoded = buf[pos]
            pos += 1
        else:
            encoded, pos = decode_varint(buf, pos)
        return (encoded >> 1) ^ -(encoded & 1), pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(buf):
            raise CodecError("truncated float")
        (value,) = _FLOAT_BODY.unpack_from(buf, pos)
        return value, pos + 8
    if tag == _TAG_STR:
        if pos < len(buf) and buf[pos] < 0x80:
            length = buf[pos]
            pos += 1
        else:
            length, pos = decode_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated string")
        try:
            return str(buf[pos:pos + length], "utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string value: {exc}") from exc
    if tag == _TAG_BYTES:
        if pos < len(buf) and buf[pos] < 0x80:
            length = buf[pos]
            pos += 1
        else:
            length, pos = decode_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated bytes")
        # The one deliberate copy: bytes values escape into long-lived
        # Event objects, so they must not alias the datagram buffer.
        # repro-lint: ignore[RL003] value escapes the decode layer
        return bytes(buf[pos:pos + length]), pos + length
    raise CodecError(f"unknown value tag: {tag}")


def write_str(out: list[bytes], text: str) -> None:
    """Append a bare length-prefixed UTF-8 string's chunks (no tag)."""
    raw = text.encode("utf-8")
    if len(raw) > _MAX_BLOB:
        raise CodecError(f"string too long for wire: {len(raw)} bytes")
    out.append(encode_varint(len(raw)))
    out.append(raw)


def encode_str(text: str) -> bytes:
    """Encode a bare length-prefixed UTF-8 string (no tag)."""
    out: list[bytes] = []
    write_str(out, text)
    return b"".join(out)


def decode_str(buf: Buffer, offset: int = 0) -> tuple[str, int]:
    if offset < len(buf) and buf[offset] < 0x80:   # one-byte length fast path
        length = buf[offset]
        pos = offset + 1
    else:
        length, pos = decode_varint(buf, offset)
    if pos + length > len(buf):
        raise CodecError("truncated string")
    try:
        return str(buf[pos:pos + length], "utf-8"), pos + length
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8: {exc}") from exc


def write_frames(out: list[bytes], frames: Sequence[Buffer]) -> None:
    """Append a frame list's chunks to ``out`` without joining.

    The frames themselves are appended as-is (callers own their
    lifetime); only the count and length prefixes are fresh chunks.
    """
    if len(frames) > MAX_FRAMES:
        raise CodecError(f"too many frames in batch: {len(frames)}")
    out.append(encode_varint(len(frames)))
    for frame in frames:
        out.append(encode_varint(len(frame)))
        out.append(frame)


def encode_frames(frames: Sequence[Buffer]) -> bytes:
    """Encode a list of opaque byte frames (batch framing).

    The batch publish pipeline coalesces many bus payloads into one
    reliable payload: a varint frame count followed by varint-length-
    prefixed frames.  The frames themselves are opaque here — the bus
    protocol layer decides what they mean.
    """
    out: list[bytes] = []
    write_frames(out, frames)
    return b"".join(out)


def decode_frames(buf: Buffer, offset: int = 0) -> tuple[list[Buffer], int]:
    """Decode a batch of frames; returns (frames, new offset).

    Frames are slices of ``buf`` — zero-copy ``memoryview`` slices when
    the caller passes a ``memoryview`` — and must be copied by the caller
    if they outlive the underlying buffer.
    """
    count, pos = decode_varint(buf, offset)
    if count > MAX_FRAMES:
        raise CodecError(f"frame count too large: {count}")
    frames: list[Buffer] = []
    for _ in range(count):
        length, pos = decode_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated frame in batch")
        frames.append(buf[pos:pos + length])
        pos += length
    return frames, pos


def write_attr_map(out: list[bytes], attributes: Mapping[str, Value]) -> None:
    """Append an attribute map's chunks with a stable (sorted) key order."""
    if len(attributes) > _MAX_ATTRS:
        raise CodecError(f"too many attributes: {len(attributes)}")
    out.append(encode_varint(len(attributes)))
    for name in sorted(attributes):
        if not name:
            raise CodecError("attribute names must be non-empty")
        write_str(out, name)
        write_value(out, attributes[name])


def encode_attr_map(attributes: Mapping[str, Value]) -> bytes:
    """Encode an attribute dictionary with a stable (sorted) key order."""
    out: list[bytes] = []
    write_attr_map(out, attributes)
    return b"".join(out)


def decode_attr_map(buf: Buffer, offset: int = 0) -> tuple[dict[str, Value], int]:
    """Decode an attribute map.

    Enforces the canonical-form constraints the encoder guarantees
    (non-empty names, no duplicates), so decoded maps can back an event
    without re-validation.
    """
    count, pos = decode_varint(buf, offset)
    if count > _MAX_ATTRS:
        raise CodecError(f"attribute count too large: {count}")
    attributes: dict[str, Value] = {}
    size = len(buf)
    for _ in range(count):
        # Inlined decode_str: one short name per attribute is the hottest
        # token on the whole decode path.
        if pos < size and buf[pos] < 0x80:
            length = buf[pos]
            pos += 1
        else:
            length, pos = decode_varint(buf, pos)
        end = pos + length
        if end > size:
            raise CodecError("truncated string")
        # Interned names: a deployment's attribute vocabulary is small
        # and every event repeats it, so the cache skips the UTF-8
        # decode and validation, and identity-equal names make the
        # matching tables' dict lookups cheap.  Cached names are never
        # empty; bounded so name churn cannot grow it without limit.
        raw_name = buf[pos:end]
        if type(raw_name) is not bytes:
            # repro-lint: ignore[RL003] intern-cache keys must be real bytes
            raw_name = bytes(raw_name)
        name = _NAME_CACHE.get(raw_name)
        if name is None:
            try:
                name = str(raw_name, "utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError(f"invalid UTF-8: {exc}") from exc
            if not name:
                raise CodecError("empty attribute name on wire")
            if len(_NAME_CACHE) >= _NAME_CACHE_MAX:
                _NAME_CACHE.clear()
            _NAME_CACHE[raw_name] = name
        # Fully inlined decode_value dispatch (the differential suite in
        # tests/transport/test_zero_copy.py pins equivalence with
        # decode_value); the per-value call overhead is the
        # second-hottest token on the event decode path.
        pos = end
        if pos >= size:
            raise CodecError("truncated value: missing tag")
        tag = buf[pos]
        pos += 1
        if tag == _TAG_INT:
            if pos < size and buf[pos] < 0x80:
                encoded = buf[pos]
                pos += 1
            else:
                encoded, pos = decode_varint(buf, pos)
            value: Value = (encoded >> 1) ^ -(encoded & 1)
        elif tag == _TAG_FLOAT:
            if pos + 8 > size:
                raise CodecError("truncated float")
            value = _FLOAT_BODY.unpack_from(buf, pos)[0]
            pos += 8
        elif tag == _TAG_STR:
            if pos < size and buf[pos] < 0x80:
                vlen = buf[pos]
                pos += 1
            else:
                vlen, pos = decode_varint(buf, pos)
            if pos + vlen > size:
                raise CodecError("truncated string")
            try:
                value = str(buf[pos:pos + vlen], "utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError(
                    f"invalid UTF-8 in string value: {exc}") from exc
            pos += vlen
        elif tag == _TAG_BYTES:
            if pos < size and buf[pos] < 0x80:
                vlen = buf[pos]
                pos += 1
            else:
                vlen, pos = decode_varint(buf, pos)
            if pos + vlen > size:
                raise CodecError("truncated bytes")
            # repro-lint: ignore[RL003] value escapes the decode layer
            value = bytes(buf[pos:pos + vlen])
            pos += vlen
        elif tag == _TAG_BOOL:
            if pos >= size:
                raise CodecError("truncated bool")
            raw = buf[pos]
            if raw not in (0, 1):
                raise CodecError(f"invalid bool byte: {raw}")
            value = raw == 1
            pos += 1
        else:
            raise CodecError(f"unknown value tag: {tag}")
        if name in attributes:
            raise CodecError(f"duplicate attribute on wire: {name!r}")
        attributes[name] = value
    return attributes, pos
