"""Binary value codec shared by packets, events, filters and policies.

This is a small hand-rolled TLV (tag-length-value) format.  The paper makes
a point of keeping byte arrays at the transport boundary so that nothing
depends on Java serialisation; in the same spirit nothing here depends on
``pickle`` — every value that crosses a network path is encoded explicitly.

Supported value types mirror what sensors and management components need:
``bool``, ``int`` (arbitrary precision via zig-zag varint), ``float``
(IEEE-754 double), ``str`` (UTF-8) and ``bytes``.

All multi-byte fixed-width fields are big-endian ("network order").
"""

from __future__ import annotations

import struct

from repro.errors import CodecError

Value = bool | int | float | str | bytes

_TAG_BOOL = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_BYTES = 5

_MAX_BLOB = 0xFFFF          # single string/bytes value cap (64 KiB)
_MAX_ATTRS = 0xFFFF


def encode_varint(value: int) -> bytes:
    """Encode an unsigned integer as LEB128."""
    if value < 0:
        raise CodecError(f"varint requires a non-negative int, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 unsigned integer; returns (value, new offset)."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise CodecError("truncated varint")
        if shift > 70:
            raise CodecError("varint too long")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map a signed int onto an unsigned one (small magnitudes stay small)."""
    return (value << 1) ^ (value >> (value.bit_length() + 1)) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def encode_value(value: Value) -> bytes:
    """Encode one tagged value."""
    # bool must be tested before int: bool is an int subclass.
    if isinstance(value, bool):
        return bytes((_TAG_BOOL, 1 if value else 0))
    if isinstance(value, int):
        return bytes((_TAG_INT,)) + encode_varint(zigzag_encode(value))
    if isinstance(value, float):
        return bytes((_TAG_FLOAT,)) + struct.pack("!d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        if len(raw) > _MAX_BLOB:
            raise CodecError(f"string too long for wire: {len(raw)} bytes")
        return bytes((_TAG_STR,)) + encode_varint(len(raw)) + raw
    if isinstance(value, bytes):
        if len(value) > _MAX_BLOB:
            raise CodecError(f"bytes too long for wire: {len(value)} bytes")
        return bytes((_TAG_BYTES,)) + encode_varint(len(value)) + value
    raise CodecError(f"unsupported value type: {type(value).__name__}")


def decode_value(buf: bytes, offset: int = 0) -> tuple[Value, int]:
    """Decode one tagged value; returns (value, new offset)."""
    if offset >= len(buf):
        raise CodecError("truncated value: missing tag")
    tag = buf[offset]
    pos = offset + 1
    if tag == _TAG_BOOL:
        if pos >= len(buf):
            raise CodecError("truncated bool")
        raw = buf[pos]
        if raw not in (0, 1):
            raise CodecError(f"invalid bool byte: {raw}")
        return bool(raw), pos + 1
    if tag == _TAG_INT:
        encoded, pos = decode_varint(buf, pos)
        return zigzag_decode(encoded), pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(buf):
            raise CodecError("truncated float")
        (value,) = struct.unpack_from("!d", buf, pos)
        return value, pos + 8
    if tag == _TAG_STR:
        length, pos = decode_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated string")
        try:
            return buf[pos:pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string value: {exc}") from exc
    if tag == _TAG_BYTES:
        length, pos = decode_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated bytes")
        return bytes(buf[pos:pos + length]), pos + length
    raise CodecError(f"unknown value tag: {tag}")


def encode_str(text: str) -> bytes:
    """Encode a bare length-prefixed UTF-8 string (no tag)."""
    raw = text.encode("utf-8")
    if len(raw) > _MAX_BLOB:
        raise CodecError(f"string too long for wire: {len(raw)} bytes")
    return encode_varint(len(raw)) + raw


def decode_str(buf: bytes, offset: int = 0) -> tuple[str, int]:
    length, pos = decode_varint(buf, offset)
    if pos + length > len(buf):
        raise CodecError("truncated string")
    try:
        return buf[pos:pos + length].decode("utf-8"), pos + length
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8: {exc}") from exc


def encode_frames(frames: list[bytes]) -> bytes:
    """Encode a list of opaque byte frames (batch framing).

    The batch publish pipeline coalesces many bus payloads into one
    reliable payload: a varint frame count followed by varint-length-
    prefixed frames.  The frames themselves are opaque here — the bus
    protocol layer decides what they mean.
    """
    if len(frames) > _MAX_ATTRS:
        raise CodecError(f"too many frames in batch: {len(frames)}")
    parts = [encode_varint(len(frames))]
    for frame in frames:
        parts.append(encode_varint(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def decode_frames(buf: bytes, offset: int = 0) -> tuple[list[bytes], int]:
    """Decode a batch of frames; returns (frames, new offset)."""
    count, pos = decode_varint(buf, offset)
    if count > _MAX_ATTRS:
        raise CodecError(f"frame count too large: {count}")
    frames: list[bytes] = []
    for _ in range(count):
        length, pos = decode_varint(buf, pos)
        if pos + length > len(buf):
            raise CodecError("truncated frame in batch")
        frames.append(bytes(buf[pos:pos + length]))
        pos += length
    return frames, pos


def encode_attr_map(attributes: dict[str, Value]) -> bytes:
    """Encode an attribute dictionary with a stable (sorted) key order."""
    if len(attributes) > _MAX_ATTRS:
        raise CodecError(f"too many attributes: {len(attributes)}")
    parts = [encode_varint(len(attributes))]
    for name in sorted(attributes):
        if not name:
            raise CodecError("attribute names must be non-empty")
        parts.append(encode_str(name))
        parts.append(encode_value(attributes[name]))
    return b"".join(parts)


def decode_attr_map(buf: bytes, offset: int = 0) -> tuple[dict[str, Value], int]:
    count, pos = decode_varint(buf, offset)
    if count > _MAX_ATTRS:
        raise CodecError(f"attribute count too large: {count}")
    attributes: dict[str, Value] = {}
    for _ in range(count):
        name, pos = decode_str(buf, pos)
        value, pos = decode_value(buf, pos)
        if name in attributes:
            raise CodecError(f"duplicate attribute on wire: {name!r}")
        attributes[name] = value
    return attributes, pos
