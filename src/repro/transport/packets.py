"""Datagram framing.

Every datagram the SMC exchanges is one :class:`Packet`: a fixed 25-byte
header followed by an opaque payload.  The header carries the 48-bit sender
service id (paper Section IV), a sequence number and a cumulative
acknowledgement for the reliability layer, and a CRC-32 over the whole
packet so corrupted datagrams are dropped rather than misparsed.

Layout (big-endian)::

    0        2     3     4      5          11       15       19         21      25
    | magic  | ver | typ | flag | sender6  | seq4   | ack4   | paylen2  | crc4  | payload...
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import PacketError
from repro.ids import ServiceId

MAGIC = b"\xa5\x5e"
VERSION = 1

_HEADER = struct.Struct("!2sBBB6sIIHI")
HEADER_SIZE = _HEADER.size            # 25 bytes
MAX_PAYLOAD = 0xFFFF


class PacketType(enum.IntEnum):
    """Kinds of datagram the SMC exchanges."""

    DATA = 1        # reliable, sequenced payload (bus protocol inside)
    ACK = 2         # cumulative acknowledgement, no payload
    RAW = 3         # fire-and-forget payload (unacknowledged sensors)
    BEACON = 4      # discovery: periodic presence broadcast by the SMC core
    ANNOUNCE = 5    # discovery: device advertising itself
    JOIN_REQ = 6    # discovery: device requesting admission
    JOIN_ACK = 7    # discovery: admission granted
    JOIN_NAK = 8    # discovery: admission refused (auth failure)
    HEARTBEAT = 9   # discovery: member liveness refresh
    LEAVE = 10      # discovery: polite departure


class PacketFlags(enum.IntFlag):
    """Header flag bits."""

    NONE = 0
    #: Payload is a fragment of a larger message (reserved; the simulated
    #: network models IP-level fragmentation itself).
    FRAGMENT = 1
    #: Receiver should not acknowledge (paper: a temperature sensor "may
    #: periodically transmit data and not require any acknowledgement").
    NO_ACK = 2


@dataclass(frozen=True)
class Packet:
    """One parsed datagram."""

    type: PacketType
    sender: ServiceId
    seq: int = 0
    ack: int = 0
    payload: bytes = b""
    flags: PacketFlags = PacketFlags.NONE
    version: int = field(default=VERSION, compare=False)

    def __post_init__(self) -> None:
        if len(self.payload) > MAX_PAYLOAD:
            raise PacketError(f"payload too large: {len(self.payload)} bytes")
        if not 0 <= self.seq <= 0xFFFFFFFF:
            raise PacketError(f"seq out of range: {self.seq}")
        if not 0 <= self.ack <= 0xFFFFFFFF:
            raise PacketError(f"ack out of range: {self.ack}")

    def encode(self) -> bytes:
        """Serialise to wire bytes, computing the checksum."""
        header_no_crc = _HEADER.pack(
            MAGIC, self.version, int(self.type), int(self.flags),
            self.sender.to_bytes48(), self.seq, self.ack,
            len(self.payload), 0)
        crc = zlib.crc32(header_no_crc + self.payload) & 0xFFFFFFFF
        header = _HEADER.pack(
            MAGIC, self.version, int(self.type), int(self.flags),
            self.sender.to_bytes48(), self.seq, self.ack,
            len(self.payload), crc)
        return header + self.payload

    @classmethod
    def decode(cls, datagram: bytes) -> "Packet":
        """Parse wire bytes, verifying magic, length and checksum."""
        if len(datagram) < HEADER_SIZE:
            raise PacketError(f"datagram shorter than header: {len(datagram)}")
        (magic, version, ptype, flags, sender6, seq, ack,
         paylen, crc) = _HEADER.unpack_from(datagram)
        if magic != MAGIC:
            raise PacketError(f"bad magic: {magic!r}")
        if version != VERSION:
            raise PacketError(f"unsupported packet version: {version}")
        if len(datagram) != HEADER_SIZE + paylen:
            raise PacketError(
                f"length mismatch: header says {paylen}, "
                f"datagram carries {len(datagram) - HEADER_SIZE}")
        payload = datagram[HEADER_SIZE:]
        header_no_crc = _HEADER.pack(magic, version, ptype, flags, sender6,
                                     seq, ack, paylen, 0)
        expected = zlib.crc32(header_no_crc + payload) & 0xFFFFFFFF
        if crc != expected:
            raise PacketError(f"checksum mismatch: {crc:#010x} != {expected:#010x}")
        try:
            packet_type = PacketType(ptype)
        except ValueError:
            raise PacketError(f"unknown packet type: {ptype}") from None
        return cls(type=packet_type, sender=ServiceId.from_bytes48(sender6),
                   seq=seq, ack=ack, payload=payload,
                   flags=PacketFlags(flags), version=version)

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + len(self.payload)

    def __repr__(self) -> str:
        return (f"<Packet {self.type.name} from={self.sender} seq={self.seq} "
                f"ack={self.ack} len={len(self.payload)}>")
