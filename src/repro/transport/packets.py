"""Datagram framing.

Every datagram the SMC exchanges is one :class:`Packet`: a fixed 25-byte
header followed by an opaque payload.  The header carries the 48-bit sender
service id (paper Section IV), a sequence number and a cumulative
acknowledgement for the reliability layer, and a CRC-32 over the whole
packet so corrupted datagrams are dropped rather than misparsed.

Layout (big-endian)::

    0        2     3     4      5          11       15       19         21      25
    | magic  | ver | typ | flag | sender6  | seq4   | ack4   | paylen2  | crc4  | payload...

Packet types (the ``typ`` byte)::

    DATA       reliable, sequenced payload (bus protocol inside)
    ACK        cumulative acknowledgement, no payload (SACK block optional)
    RAW        fire-and-forget payload (unacknowledged sensors)
    BEACON     discovery: periodic presence broadcast by the SMC core
    ANNOUNCE   discovery: device advertising itself
    JOIN_REQ   discovery: device requesting admission
    JOIN_ACK   discovery: admission granted
    JOIN_NAK   discovery: admission refused (auth failure / at capacity)
    HEARTBEAT  discovery: member liveness refresh
    LEAVE      discovery: polite departure
    LEAVE_INTENT  discovery: departure announced ahead of time (drain)

When the ``SACK`` flag is set, the payload begins with a selective-ack
block — ``u8 count`` followed by ``count`` inclusive ``(start, end)``
``u32`` sequence ranges the receiver holds beyond its cumulative ack —
and the opaque payload follows the block.  Decoders that predate the flag
parse the same bytes as an ordinary packet whose payload happens to start
with the block, and the reliability layer ignores ACK payloads, so the
extension is wire-compatible in both directions (same magic, same
version, same header).
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import PacketError
from repro.ids import ServiceId

MAGIC = b"\xa5\x5e"
VERSION = 1

_HEADER = struct.Struct("!2sBBB6sIIHI")
HEADER_SIZE = _HEADER.size            # 25 bytes
_CRC_FIELD = struct.Struct("!I")      # trailing header field, patched in
MAX_PAYLOAD = 0xFFFF

_SACK_RANGE = struct.Struct("!II")
#: Hard cap on SACK ranges per packet (the count is a single byte).
MAX_SACK_RANGES = 255


def _encode_sack(sack: tuple[tuple[int, int], ...]) -> bytes:
    parts = [bytes((len(sack),))]
    parts.extend(_SACK_RANGE.pack(start, end) for start, end in sack)
    return b"".join(parts)


def _sack_wire_size(sack: tuple[tuple[int, int], ...]) -> int:
    return 1 + _SACK_RANGE.size * len(sack) if sack else 0


def _decode_sack(payload: bytes) -> tuple[tuple[tuple[int, int], ...], bytes]:
    """Split a SACK-flagged payload into (ranges, remaining payload)."""
    if not payload:
        raise PacketError("SACK flag set but payload is empty")
    count = payload[0]
    end = 1 + _SACK_RANGE.size * count
    if len(payload) < end:
        raise PacketError(
            f"SACK block truncated: {count} ranges need {end} bytes, "
            f"payload carries {len(payload)}")
    ranges = tuple(_SACK_RANGE.unpack_from(payload, 1 + _SACK_RANGE.size * i)
                   for i in range(count))
    return ranges, payload[end:]


class PacketType(enum.IntEnum):
    """Kinds of datagram the SMC exchanges."""

    DATA = 1        # reliable, sequenced payload (bus protocol inside)
    ACK = 2         # cumulative acknowledgement, no payload
    RAW = 3         # fire-and-forget payload (unacknowledged sensors)
    BEACON = 4      # discovery: periodic presence broadcast by the SMC core
    ANNOUNCE = 5    # discovery: device advertising itself
    JOIN_REQ = 6    # discovery: device requesting admission
    JOIN_ACK = 7    # discovery: admission granted
    JOIN_NAK = 8    # discovery: admission refused (auth failure)
    HEARTBEAT = 9   # discovery: member liveness refresh
    LEAVE = 10      # discovery: polite departure
    LEAVE_INTENT = 11  # discovery: departure announced ahead of time (drain)


#: Wire byte -> packet type, so decode skips enum construction per datagram.
_TYPE_FROM_BYTE = {int(ptype): ptype for ptype in PacketType}


class PacketFlags(enum.IntFlag):
    """Header flag bits."""

    NONE = 0
    #: Payload is a fragment of a larger message (reserved; the simulated
    #: network models IP-level fragmentation itself).
    FRAGMENT = 1
    #: Receiver should not acknowledge (paper: a temperature sensor "may
    #: periodically transmit data and not require any acknowledgement").
    NO_ACK = 2
    #: Payload starts with a selective-acknowledgement block (see module
    #: docstring).  Set/cleared automatically from :attr:`Packet.sack`.
    SACK = 4


@dataclass(frozen=True)
class Packet:
    """One parsed datagram."""

    type: PacketType
    sender: ServiceId
    seq: int = 0
    ack: int = 0
    #: Sent packets carry ``bytes``; decoded packets carry a zero-copy
    #: ``memoryview`` slice of the datagram (content-compares equal).
    payload: "bytes | memoryview" = b""
    flags: PacketFlags = PacketFlags.NONE
    #: Selective-ack ranges: inclusive (start, end) sequence pairs the
    #: receiver holds beyond its cumulative ack.  Ranges may wrap the
    #: 32-bit sequence space (start serially <= end).
    sack: tuple[tuple[int, int], ...] = ()
    version: int = field(default=VERSION, compare=False)

    def __post_init__(self) -> None:
        if len(self.sack) > MAX_SACK_RANGES:
            raise PacketError(f"too many SACK ranges: {len(self.sack)}")
        for start, end in self.sack:
            if not 0 < start <= 0xFFFFFFFF or not 0 < end <= 0xFFFFFFFF:
                raise PacketError(f"SACK range out of range: {start}-{end}")
        if len(self.payload) + _sack_wire_size(self.sack) > MAX_PAYLOAD:
            raise PacketError(
                f"payload too large: {len(self.payload)} bytes"
                + (f" + {_sack_wire_size(self.sack)}-byte SACK block"
                   if self.sack else ""))
        if not 0 <= self.seq <= 0xFFFFFFFF:
            raise PacketError(f"seq out of range: {self.seq}")
        if not 0 <= self.ack <= 0xFFFFFFFF:
            raise PacketError(f"ack out of range: {self.ack}")
        # The flag bit mirrors the field, whichever way the packet was built.
        flags = PacketFlags(self.flags)
        flags = flags | PacketFlags.SACK if self.sack else flags & ~PacketFlags.SACK
        object.__setattr__(self, "flags", flags)

    def encode(self) -> bytes:
        """Serialise to wire bytes, computing the checksum.

        Scatter-gather: the checksum streams over (header, SACK block,
        payload) without concatenating them first, and the datagram is
        joined exactly once — the old double header pack plus
        header+payload concatenation copied the payload twice per send.
        """
        sack_block = _encode_sack(self.sack) if self.sack else b""
        header = bytearray(_HEADER.pack(
            MAGIC, self.version, int(self.type), int(self.flags),
            self.sender.to_bytes48(), self.seq, self.ack,
            len(sack_block) + len(self.payload), 0))
        crc = zlib.crc32(header)
        if sack_block:
            crc = zlib.crc32(sack_block, crc)
        crc = zlib.crc32(self.payload, crc) & 0xFFFFFFFF
        _CRC_FIELD.pack_into(header, HEADER_SIZE - 4, crc)
        return b"".join((header, sack_block, self.payload))

    @classmethod
    def decode(cls, datagram: "bytes | bytearray | memoryview") -> "Packet":
        """Parse wire bytes, verifying magic, length and checksum.

        Accepts any buffer.  The decoded packet's payload is a zero-copy
        ``memoryview`` slice of ``datagram`` (which stays alive through
        the view); downstream decoders slice it further without copying.
        """
        if len(datagram) < HEADER_SIZE:
            raise PacketError(f"datagram shorter than header: {len(datagram)}")
        (magic, version, ptype, flags, sender6, seq, ack,
         paylen, crc) = _HEADER.unpack_from(datagram)
        if magic != MAGIC:
            raise PacketError(f"bad magic: {magic!r}")
        if version != VERSION:
            raise PacketError(f"unsupported packet version: {version}")
        if len(datagram) != HEADER_SIZE + paylen:
            raise PacketError(
                f"length mismatch: header says {paylen}, "
                f"datagram carries {len(datagram) - HEADER_SIZE}")
        payload: "bytes | memoryview" = memoryview(datagram)[HEADER_SIZE:]
        if not payload.readonly:
            # Zero-copy slicing is only safe over an immutable backing
            # buffer; writable input (bytearray) is copied once here.
            # repro-lint: ignore[RL003] mutable backing buffer: must copy
            payload = bytes(payload)
        header_no_crc = _HEADER.pack(magic, version, ptype, flags, sender6,
                                     seq, ack, paylen, 0)
        expected = zlib.crc32(payload, zlib.crc32(header_no_crc)) & 0xFFFFFFFF
        if crc != expected:
            raise PacketError(f"checksum mismatch: {crc:#010x} != {expected:#010x}")
        packet_type = _TYPE_FROM_BYTE.get(ptype)
        if packet_type is None:
            raise PacketError(f"unknown packet type: {ptype}")
        sack: tuple[tuple[int, int], ...] = ()
        if flags & PacketFlags.SACK:
            sack, payload = _decode_sack(payload)
        return cls(type=packet_type, sender=ServiceId.from_bytes48(sender6),
                   seq=seq, ack=ack, payload=payload, sack=sack,
                   flags=PacketFlags(flags) & ~PacketFlags.SACK,
                   version=version)

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + _sack_wire_size(self.sack) + len(self.payload)

    def __repr__(self) -> str:
        return (f"<Packet {self.type.name} from={self.sender} seq={self.seq} "
                f"ack={self.ack} len={len(self.payload)}>")
