"""Abstract transport interface (paper Section III-D).

"This transport layer presents recv() and send() calls to objects which
make use of it.  Respectively, the layer returns and accepts arrays of
bytes."  We keep that byte-array contract, and add an optional push-style
receiver callback because the reactor-driven stack above is callback based;
``recv()`` remains available for poll-style use (and mirrors the paper's
API exactly).

Concrete transports differ only in construction — "much of the complexity
of the underlying transport can be hidden within the constructor of a
concrete transport class" — and in their address type:

=====================  =========================
transport              address
=====================  =========================
InMemoryTransport      node name (str)
SimTransport           node name (str)
UdpTransport           (host, port) tuple
=====================  =========================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.errors import TransportClosedError
from repro.ids import ServiceId

Address = Hashable
ReceiveCallback = Callable[[Address, bytes], None]


@dataclass
class TransportStats:
    """Counters every transport maintains."""

    datagrams_sent: int = 0
    datagrams_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    broadcasts_sent: int = 0
    receive_queue_high_water: int = field(default=0, repr=False)


class Transport:
    """Base class for datagram transports.

    Subclasses implement :meth:`_send_datagram` and
    :meth:`_broadcast_datagram` and call :meth:`_deliver` when a datagram
    arrives.  Delivery goes to the registered callback when one is set,
    otherwise datagrams queue for :meth:`recv`.
    """

    def __init__(self, service_id: ServiceId, local_address: Address) -> None:
        self._service_id = service_id
        self._local_address = local_address
        self._receiver: ReceiveCallback | None = None
        self._inbox: deque[tuple[Address, bytes]] = deque()
        self._closed = False
        self.stats = TransportStats()

    # -- identity --------------------------------------------------------

    @property
    def service_id(self) -> ServiceId:
        """48-bit id derived from this transport's address (Section IV)."""
        return self._service_id

    @property
    def local_address(self) -> Address:
        return self._local_address

    @property
    def closed(self) -> bool:
        return self._closed

    # -- sending -----------------------------------------------------------

    def send(self, dest: Address, payload: bytes) -> None:
        """Send ``payload`` to ``dest`` (best-effort datagram)."""
        self._check_open()
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += len(payload)
        self._send_datagram(dest, payload)

    def broadcast(self, payload: bytes) -> None:
        """Send ``payload`` to every reachable peer (discovery traffic)."""
        self._check_open()
        self.stats.broadcasts_sent += 1
        self.stats.bytes_sent += len(payload)
        self._broadcast_datagram(payload)

    # -- receiving -----------------------------------------------------------

    def set_receiver(self, callback: ReceiveCallback | None) -> None:
        """Register (or clear) the push-style receive callback.

        Registering a callback flushes any datagrams already queued, in
        arrival order, so no data is lost if traffic arrives before the
        upper layer finishes wiring itself.
        """
        self._receiver = callback
        if callback is not None:
            while self._inbox:
                src, payload = self._inbox.popleft()
                callback(src, payload)

    def recv(self) -> tuple[Address, bytes] | None:
        """Pull one queued datagram, or None (the paper's poll-style API)."""
        self._check_open()
        if self._inbox:
            return self._inbox.popleft()
        return None

    def pending(self) -> int:
        """Datagrams waiting in the pull queue."""
        return len(self._inbox)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release resources.  Idempotent; further sends raise."""
        self._closed = True

    # -- subclass hooks ---------------------------------------------------

    def _send_datagram(self, dest: Address, payload: bytes) -> None:
        raise NotImplementedError

    def _broadcast_datagram(self, payload: bytes) -> None:
        raise NotImplementedError

    def _deliver(self, src: Address, payload: bytes) -> None:
        """Called by subclasses when a datagram arrives."""
        if self._closed:
            return
        self.stats.datagrams_received += 1
        self.stats.bytes_received += len(payload)
        if self._receiver is not None:
            self._receiver(src, payload)
            return
        self._inbox.append((src, payload))
        if len(self._inbox) > self.stats.receive_queue_high_water:
            self.stats.receive_queue_high_water = len(self._inbox)

    def _check_open(self) -> None:
        if self._closed:
            raise TransportClosedError(
                f"transport {self._local_address!r} is closed")

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<{type(self).__name__} addr={self._local_address!r} "
                f"id={self._service_id} {state}>")
