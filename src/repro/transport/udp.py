"""Real UDP datagram transport.

This is the transport the paper's prototype used: "Sockets are opened
within the Transport constructor, and subsequent send() and recv() calls
are wrappers around send and receive calls over these sockets."

As in the prototype, the socket is *not* bound to a fixed port — "the
operating system is free to choose the port number", and the 48-bit service
id is derived from the resulting address+port.  Broadcast traffic for
discovery is sent to a well-known port; on loopback test networks (where
real broadcast is unavailable) a peer list stands in for the broadcast
domain.

The transport is non-blocking and integrates with
:class:`~repro.sim.kernel.RealtimeScheduler` as a pollable; it can also be
driven manually with :meth:`poll` for single-threaded integration tests.
"""

from __future__ import annotations

import errno
import socket

from repro.errors import AddressError, TransportError
from repro.ids import service_id_from_socket
from repro.transport.base import Transport

#: "Broadcast traffic ... is delivered on an arbitrarily chosen port number
#: known by services" (Section IV).
DEFAULT_DISCOVERY_PORT = 41200

_RECV_BUFFER = 65535


class UdpTransport(Transport):
    """Datagram transport over a real UDP socket."""

    def __init__(self, bind_host: str = "127.0.0.1", bind_port: int = 0,
                 discovery_port: int = DEFAULT_DISCOVERY_PORT,
                 listen_for_broadcast: bool = False) -> None:
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.setblocking(False)
        try:
            self._socket.bind((bind_host, bind_port))
        except OSError as exc:
            self._socket.close()
            raise TransportError(f"cannot bind {bind_host}:{bind_port}: {exc}") from exc
        host, port = self._socket.getsockname()
        super().__init__(service_id=service_id_from_socket(host, port),
                         local_address=(host, port))
        self._discovery_port = discovery_port
        self._broadcast_peers: list[tuple[str, int]] = []
        self._broadcast_socket: socket.socket | None = None
        if listen_for_broadcast:
            self._broadcast_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            self._broadcast_socket.setblocking(False)
            self._broadcast_socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                self._broadcast_socket.bind((bind_host, discovery_port))
            except OSError as exc:
                self._broadcast_socket.close()
                self._socket.close()
                raise TransportError(
                    f"cannot bind discovery port {discovery_port}: {exc}") from exc

    # -- broadcast domain ---------------------------------------------------

    def set_broadcast_peers(self, peers: list[tuple[str, int]]) -> None:
        """Configure the stand-in broadcast domain (loopback networks)."""
        self._broadcast_peers = list(peers)

    @property
    def discovery_port(self) -> int:
        return self._discovery_port

    # -- Transport hooks -------------------------------------------------

    def _send_datagram(self, dest, payload: bytes) -> None:
        if not (isinstance(dest, tuple) and len(dest) == 2):
            raise AddressError(f"UDP addresses are (host, port), got {dest!r}")
        try:
            self._socket.sendto(payload, dest)
        except OSError as exc:
            # Datagram semantics: full buffers mean silent loss, like a
            # congested link; anything else is a real error.
            if exc.errno not in (errno.EAGAIN, errno.EWOULDBLOCK, errno.ENOBUFS):
                raise TransportError(f"sendto {dest} failed: {exc}") from exc

    def _broadcast_datagram(self, payload: bytes) -> None:
        if self._broadcast_peers:
            for peer in self._broadcast_peers:
                self._send_datagram(peer, payload)
            return
        try:
            self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_BROADCAST, 1)
            self._socket.sendto(payload, ("<broadcast>", self._discovery_port))
        except OSError as exc:
            raise TransportError(f"broadcast failed: {exc}") from exc

    # -- polling --------------------------------------------------------

    def fileno(self) -> int:
        """Unicast socket fd (RealtimeScheduler pollable protocol)."""
        return self._socket.fileno()

    def on_readable(self) -> None:
        """Drain the unicast socket (RealtimeScheduler pollable protocol)."""
        self._drain(self._socket)

    def poll(self) -> int:
        """Drain both sockets; returns the number of datagrams delivered.

        For single-threaded tests that drive the transport without a
        scheduler loop.
        """
        count = self._drain(self._socket)
        if self._broadcast_socket is not None:
            count += self._drain(self._broadcast_socket)
        return count

    def _drain(self, sock: socket.socket) -> int:
        count = 0
        while True:
            try:
                payload, src = sock.recvfrom(_RECV_BUFFER)
            except BlockingIOError:
                return count
            except OSError as exc:
                if exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK):
                    return count
                raise TransportError(f"recvfrom failed: {exc}") from exc
            self._deliver(src, payload)
            count += 1

    def close(self) -> None:
        if not self.closed:
            self._socket.close()
            if self._broadcast_socket is not None:
                self._broadcast_socket.close()
        super().close()
