"""Real UDP datagram transport.

This is the transport the paper's prototype used: "Sockets are opened
within the Transport constructor, and subsequent send() and recv() calls
are wrappers around send and receive calls over these sockets."

As in the prototype, the socket is *not* bound to a fixed port — "the
operating system is free to choose the port number", and the 48-bit service
id is derived from the resulting address+port.  Broadcast traffic for
discovery is sent to a well-known port; on loopback test networks (where
real broadcast is unavailable) a peer list stands in for the broadcast
domain.

The transport is non-blocking and integrates with
:class:`~repro.sim.kernel.RealtimeScheduler` as a pollable; it can also be
driven manually with :meth:`poll` for single-threaded integration tests.
"""

from __future__ import annotations

import errno
import socket

from repro.errors import AddressError, TransportError
from repro.ids import service_id_from_socket
from repro.transport.base import Transport

#: "Broadcast traffic ... is delivered on an arbitrarily chosen port number
#: known by services" (Section IV).
DEFAULT_DISCOVERY_PORT = 41200

_RECV_BUFFER = 65535


class _SocketPollable:
    """Adapter exposing one extra socket as a RealtimeScheduler pollable.

    The transport itself is the pollable for its unicast socket; the
    broadcast/discovery socket needs its own fd registration or BEACON and
    ANNOUNCE traffic is never drained by the scheduler loop (it used to be
    reachable only through the test-only :meth:`UdpTransport.poll`).
    """

    __slots__ = ("_sock", "_drain")

    def __init__(self, sock: socket.socket, drain) -> None:
        self._sock = sock
        self._drain = drain

    def fileno(self) -> int:
        return self._sock.fileno()

    def on_readable(self) -> None:
        self._drain(self._sock)


class UdpTransport(Transport):
    """Datagram transport over a real UDP socket."""

    def __init__(self, bind_host: str = "127.0.0.1", bind_port: int = 0,
                 discovery_port: int = DEFAULT_DISCOVERY_PORT,
                 listen_for_broadcast: bool = False,
                 directed_only: bool = False) -> None:
        #: When True, broadcast reaches only the configured peer list and
        #: an empty list is a silent no-op — never the real broadcast
        #: address.  Deployment mode uses this on broadcast-free networks
        #: (loopback, cloud fabrics), where a fallback sendto to
        #: 255.255.255.255 from a loopback-bound socket would raise.
        self._directed_only = directed_only
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.setblocking(False)
        # Fork-safety: match workers (and any other child) must never
        # inherit the cell's sockets — PEP 446 makes this the default,
        # but the guarantee is load-bearing here, so state it.
        self._socket.set_inheritable(False)
        try:
            self._socket.bind((bind_host, bind_port))
        except OSError as exc:
            self._socket.close()
            raise TransportError(f"cannot bind {bind_host}:{bind_port}: {exc}") from exc
        host, port = self._socket.getsockname()
        super().__init__(service_id=service_id_from_socket(host, port),
                         local_address=(host, port))
        self._discovery_port = discovery_port
        self._broadcast_peers: list[tuple[str, int]] = []
        self._broadcast_socket: socket.socket | None = None
        self._broadcast_pollable: _SocketPollable | None = None
        if listen_for_broadcast:
            self._broadcast_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            self._broadcast_socket.setblocking(False)
            self._broadcast_socket.set_inheritable(False)
            self._broadcast_socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                self._broadcast_socket.bind((bind_host, discovery_port))
            except OSError as exc:
                self._broadcast_socket.close()
                self._socket.close()
                raise TransportError(
                    f"cannot bind discovery port {discovery_port}: {exc}") from exc
            if discovery_port == 0:
                # Tests bind an OS-chosen discovery port to avoid
                # collisions; record the real one so peers can be told.
                self._discovery_port = self._broadcast_socket.getsockname()[1]
            self._broadcast_pollable = _SocketPollable(self._broadcast_socket,
                                                       self._drain)

    # -- broadcast domain ---------------------------------------------------

    def set_broadcast_peers(self, peers: list[tuple[str, int]]) -> None:
        """Configure the stand-in broadcast domain (loopback networks)."""
        self._broadcast_peers = list(peers)

    @property
    def discovery_port(self) -> int:
        return self._discovery_port

    # -- Transport hooks -------------------------------------------------

    def _send_datagram(self, dest, payload: bytes) -> None:
        if not (isinstance(dest, tuple) and len(dest) == 2):
            raise AddressError(f"UDP addresses are (host, port), got {dest!r}")
        try:
            self._socket.sendto(payload, dest)
        except OSError as exc:
            # Datagram semantics: full buffers mean silent loss, like a
            # congested link; anything else is a real error.
            if exc.errno not in (errno.EAGAIN, errno.EWOULDBLOCK, errno.ENOBUFS):
                raise TransportError(f"sendto {dest} failed: {exc}") from exc

    def _broadcast_datagram(self, payload: bytes) -> None:
        if self._broadcast_peers:
            for peer in self._broadcast_peers:
                self._send_datagram(peer, payload)
            return
        if self._directed_only:
            return
        try:
            self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_BROADCAST, 1)
            self._socket.sendto(payload, ("<broadcast>", self._discovery_port))
        except OSError as exc:
            raise TransportError(f"broadcast failed: {exc}") from exc

    # -- polling --------------------------------------------------------

    def fileno(self) -> int:
        """Unicast socket fd (RealtimeScheduler pollable protocol)."""
        return self._socket.fileno()

    def on_readable(self) -> None:
        """Drain the unicast socket (RealtimeScheduler pollable protocol)."""
        self._drain(self._socket)

    def pollables(self) -> list:
        """Every fd source this transport reads: register all of them.

        The transport itself covers the unicast socket; when a broadcast
        listener is bound, a second pollable covers it — without it the
        discovery plane (BEACON/ANNOUNCE) is deaf under a scheduler-driven
        deployment, because only :meth:`poll` ever drained that socket.
        """
        polls: list = [self]
        if self._broadcast_pollable is not None:
            polls.append(self._broadcast_pollable)
        return polls

    def poll(self) -> int:
        """Drain both sockets; returns the number of datagrams delivered.

        For single-threaded tests that drive the transport without a
        scheduler loop.
        """
        count = self._drain(self._socket)
        if self._broadcast_socket is not None:
            count += self._drain(self._broadcast_socket)
        return count

    def _drain(self, sock: socket.socket) -> int:
        count = 0
        while True:
            try:
                payload, src = sock.recvfrom(_RECV_BUFFER)
            except BlockingIOError:
                return count
            except OSError as exc:
                if exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK):
                    return count
                raise TransportError(f"recvfrom failed: {exc}") from exc
            self._deliver(src, payload)
            count += 1

    def close(self) -> None:
        # Close each socket unconditionally: ``socket.close`` is itself
        # idempotent, whereas gating on ``self.closed`` leaked the
        # broadcast socket whenever the closed flag was already set by the
        # base-class path (e.g. a concurrent close on another thread).
        self._socket.close()
        if self._broadcast_socket is not None:
            self._broadcast_socket.close()
        super().close()
