"""Pipelined, selectively-acknowledged channel over datagrams.

The paper's delivery semantics (Section II-C) require that management
events are delivered to each interested member *exactly once while it
remains a member*, and *in per-sender order*.  Datagrams give neither, so
each hop (publisher→bus, bus→subscriber) runs one :class:`ReliableChannel`.
The original implementation was stop-and-wait — one packet per round trip
per hop — which capped every hop far below the link rate; this module is
the windowed redesign the ROADMAP's async-transport step called for.

Protocol
========

*Sliding window.*  Up to ``window`` DATA packets may be in flight at once;
further sends queue.  Every DATA packet carries a 32-bit sequence number
(1..2^32-1, zero is reserved for "nothing acknowledged", and the space
wraps back to 1) and a piggy-backed cumulative acknowledgement.

*Selective acknowledgements.*  The receiver delivers in sequence order,
buffering out-of-order arrivals, and answers every DATA packet with an ACK
carrying its cumulative ack (the last in-order sequence delivered) plus
SACK ranges — the inclusive ``(start, end)`` runs it holds beyond the
cumulative point (:mod:`repro.transport.packets` encodes them in a flagged
payload prefix).  The sender marks SACKed packets and never retransmits
them; only genuine holes are resent.

*Retransmit policy.*  Each in-flight packet keeps its **own** retransmit
deadline and backoff: the retransmit timer is armed for the earliest
outstanding deadline and is never reset by new transmissions (a steady
send stream must not starve the oldest unacked packet — the go-back-N
stall the stop-and-wait code had latent).  When the timer fires, only
packets whose deadline has passed and that are not SACKed are resent,
each doubling its private RTO up to ``rto_max``.  Additionally, three
duplicate cumulative ACKs trigger one fast retransmit of the oldest
unSACKed packet per loss episode, recovering a single loss in roughly one
round trip instead of one RTO.

*Sequence arithmetic.*  All seq/ack comparisons use RFC-1982-style serial
arithmetic (:func:`serial_lt`), so the protocol survives the wrap at
2^32 — raw integer comparisons misclassify every packet that spans it.

*RTT measurement.*  Every acknowledgement — cumulative or SACK — of a
packet that was transmitted exactly once yields a round-trip sample;
packets that were ever retransmitted are never sampled (Karn's algorithm:
their ack is ambiguous between transmissions).  Samples feed an RFC-6298
smoothed estimator surfaced as :attr:`ChannelStats.srtt` /
:attr:`ChannelStats.rttvar` / :attr:`ChannelStats.rtt_samples`.  The
channel only *measures*: deciding what RTO the measurements justify is
the job of the autonomic control plane
(:class:`repro.autonomic.controllers.RttController`), which actuates
:meth:`ReliableChannel.set_rto` — so a channel without a controller
behaves exactly as configured.

*Exactly-once, in-order.*  Duplicates (retransmissions the ack for which
was lost, or datagrams the network duplicated) are suppressed and
re-acknowledged.  The reorder buffer is sized at least as large as the
window, so a full window of out-of-order arrivals is never dropped; if an
over-windowed peer still overruns it, drops are counted in
:attr:`ChannelStats.reorder_drops` and recovered by the peer's RTO.

By default the channel retries forever: the paper queues events for
unavailable members "which have not yet been declared to have left the
SMC"; abandoning the queue is the proxy's job, on a Purge Member event,
via :meth:`ReliableChannel.close`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError, PacketError
from repro.ids import ServiceId
from repro.sim.kernel import Scheduler, Timer
from repro.transport.base import Address, Transport
from repro.transport.packets import MAX_SACK_RANGES, Packet, PacketFlags, PacketType

DeliverCallback = Callable[[ServiceId, bytes], None]

_SEQ_MOD = 1 << 32
_SEQ_HALF = 1 << 31

#: Default send window for every hop.  32 packets keeps a 20 ms-RTT link
#: busy at the payload sizes the bus moves, while the window-sized reorder
#: buffer it implies stays tiny.  Stop-and-wait (window=1) remains
#: available for paper-faithful measurements.
DEFAULT_WINDOW = 32

#: Duplicate cumulative acks that trigger a fast retransmit.
FAST_RETRANSMIT_DUPS = 3


def serial_lt(a: int, b: int) -> bool:
    """RFC-1982 serial ``a < b`` in the 32-bit sequence space.

    Correct across the wrap at 2^32 for any two values less than half the
    space apart — raw integer comparison is wrong for every pair that
    spans the wrap.
    """
    return a != b and ((b - a) % _SEQ_MOD) < _SEQ_HALF


def serial_leq(a: int, b: int) -> bool:
    """RFC-1982 serial ``a <= b``."""
    return a == b or serial_lt(a, b)


def serial_succ(seq: int) -> int:
    """The next sequence number, skipping the reserved 0."""
    return (seq + 1) % _SEQ_MOD or 1


@dataclass
class ChannelStats:
    """Per-channel counters."""

    sent: int = 0
    delivered: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    duplicates: int = 0
    out_of_order: int = 0
    reorder_drops: int = 0
    acks_sent: int = 0
    give_ups: int = 0
    #: Untransmitted payloads dropped by edge backpressure
    #: (:meth:`ReliableChannel.shed_backlog`).
    backlog_shed: int = 0
    #: RFC-6298 estimator state, fed by acks of never-retransmitted
    #: packets (Karn).  ``srtt``/``rttvar`` are 0.0 until the first
    #: sample; ``rtt_samples`` counts how many have been folded in.
    rtt_samples: int = 0
    srtt: float = 0.0
    rttvar: float = 0.0


@dataclass(slots=True)
class _InFlight:
    """Send-side state for one unacknowledged packet."""

    payload: bytes
    rto: float           # private backoff, doubled on each timeout resend
    deadline: float      # absolute time of the next retransmission
    sent_at: float = 0.0  # first-transmission instant (RTT sampling)
    retries: int = 0     # timeout retransmissions so far
    sacked: bool = False  # receiver holds it; never retransmit
    resent: bool = False  # ever retransmitted; Karn: never RTT-sample it


class ReliableChannel:
    """One direction-pair of the reliable protocol with a single peer."""

    def __init__(self, transport: Transport, scheduler: Scheduler,
                 peer_address: Address, deliver: DeliverCallback,
                 *, window: int = DEFAULT_WINDOW, rto_initial: float = 0.05,
                 rto_max: float = 2.0, max_retries: int | None = None,
                 reorder_buffer: int = 64,
                 on_give_up: Callable[[bytes], None] | None = None,
                 initial_seq: int = 1) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if rto_initial <= 0 or rto_max < rto_initial:
            raise ConfigurationError(
                f"bad RTO bounds: initial={rto_initial}, max={rto_max}")
        if not 0 < initial_seq < _SEQ_MOD:
            raise ConfigurationError(f"initial_seq out of range: {initial_seq}")
        self._transport = transport
        self._scheduler = scheduler
        self._peer_address = peer_address
        self._deliver = deliver
        self._window = window
        self._rto_initial = rto_initial
        self._rto_max = rto_max
        self._max_retries = max_retries
        # A window of out-of-order arrivals must always fit, or a sender
        # outrunning the buffer would retransmit into the same full buffer
        # forever (the silent-drop stall the stop-and-wait code had latent).
        self._reorder_limit = max(reorder_buffer, window)
        self._on_give_up = on_give_up

        # Send side.  ``initial_seq`` exists for wraparound tests and
        # session-resumption experiments; both ends must agree on it.
        self._next_seq = initial_seq
        self._pending: deque[bytes] = deque()          # not yet transmitted
        self._in_flight: dict[int, _InFlight] = {}     # seq -> state
        self._retransmit_timer: Timer | None = None
        self._timer_deadline = math.inf
        self._last_cum_ack = 0                         # highest cumulative seen
        self._dup_acks = 0
        self._fast_rtx_seq: int | None = None          # one fast rtx per episode

        # Receive side.
        self._expected_seq = initial_seq
        self._last_delivered = 0                       # 0 = nothing yet
        self._reorder: dict[int, bytes] = {}
        self._peer_id: ServiceId | None = None

        self._closed = False
        self.stats = ChannelStats()

    # -- public API -----------------------------------------------------

    @property
    def peer_address(self) -> Address:
        return self._peer_address

    @property
    def peer_id(self) -> ServiceId | None:
        """The peer's service id, learned from its first packet."""
        return self._peer_id

    @property
    def window(self) -> int:
        return self._window

    @property
    def rto_initial(self) -> float:
        """Base RTO every newly sent packet starts from."""
        return self._rto_initial

    @property
    def rto_max(self) -> float:
        return self._rto_max

    def set_rto(self, rto_initial: float, rto_max: float | None = None) -> None:
        """Actuator hook: retune the base RTO (and optionally its cap).

        Called by the autonomic control plane's RTT controller with an
        RFC-6298 estimate; packets already in flight keep their private
        backoff, new transmissions use the new base.  The cap is raised
        automatically if the new base would exceed it.
        """
        if rto_initial <= 0:
            raise ConfigurationError(f"rto_initial must be > 0, got {rto_initial}")
        if rto_max is not None:
            if rto_max < rto_initial:
                raise ConfigurationError(
                    f"bad RTO bounds: initial={rto_initial}, max={rto_max}")
            self._rto_max = rto_max
        elif self._rto_max < rto_initial:
            self._rto_max = rto_initial
        self._rto_initial = rto_initial

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, payload: bytes, *, unreliable: bool = False) -> None:
        """Queue ``payload`` for ordered, acknowledged delivery.

        With ``unreliable=True`` the payload is sent once as a RAW packet
        with no sequencing — the mode a fire-and-forget sensor uses.
        """
        if self._closed:
            return
        if unreliable:
            packet = Packet(type=PacketType.RAW,
                            sender=self._transport.service_id,
                            ack=self._last_delivered,
                            flags=PacketFlags.NO_ACK, payload=payload)
            self._transport.send(self._peer_address, packet.encode())
            return
        self._pending.append(payload)
        self._pump()

    def unacked_count(self) -> int:
        """Messages queued or in flight, awaiting acknowledgement."""
        return len(self._pending) + len(self._in_flight)

    def pending_count(self) -> int:
        """Messages queued but not yet transmitted (the sheddable backlog)."""
        return len(self._pending)

    def drain_undelivered(self) -> list[bytes]:
        """Remove and return every unacknowledged payload, oldest first,
        then close the channel.

        Used when the peer roams: the endpoint migrates the drained
        payloads onto a fresh channel at the peer's new address instead of
        retransmitting into the void at the old one.  Payloads the peer
        already received but whose ack was lost may be re-sent — the
        bus-level per-sender watermark absorbs those duplicates.
        """
        payloads = [self._in_flight[seq].payload
                    for seq in self._oldest_first()]
        payloads.extend(self._pending)
        self.close()
        return payloads

    def shed_backlog(self, max_pending: int) -> int:
        """Drop the oldest untransmitted payloads beyond ``max_pending``.

        The edge backpressure actuator: a member that stops acking grows
        an unbounded pending queue; shedding bounds per-peer memory while
        keeping the newest (most clinically relevant) events.  Returns the
        number dropped; they are also counted in
        :attr:`ChannelStats.backlog_shed`.
        """
        if max_pending < 0:
            raise ConfigurationError(
                f"max_pending must be >= 0, got {max_pending}")
        dropped = 0
        while len(self._pending) > max_pending:
            self._pending.popleft()
            dropped += 1
        self.stats.backlog_shed += dropped
        return dropped

    def handle_packet(self, packet: Packet) -> None:
        """Process an incoming DATA/ACK/RAW packet from this channel's peer."""
        if self._closed:
            return
        self._peer_id = packet.sender
        # Every packet type may carry a piggy-backed cumulative ack; pure
        # ACKs also carry SACK ranges and feed duplicate-ack detection.
        self._process_ack(packet.ack, packet.sack,
                          pure_ack=packet.type == PacketType.ACK)
        if packet.type == PacketType.ACK:
            return
        if packet.type == PacketType.RAW:
            self._deliver(packet.sender, packet.payload)
            return
        if packet.type == PacketType.DATA:
            self._process_data(packet)
            return
        raise PacketError(f"channel cannot handle packet type {packet.type.name}")

    def close(self) -> None:
        """Drop all queued state.  Used when the peer is purged from the SMC."""
        self._closed = True
        self._pending.clear()
        self._in_flight.clear()
        self._reorder.clear()
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None
        self._timer_deadline = math.inf

    # -- send machinery ----------------------------------------------------

    def _oldest_first(self) -> list[int]:
        """In-flight sequence numbers, oldest first, wrap-safe."""
        base = self._next_seq
        return sorted(self._in_flight, key=lambda s: (s - base) % _SEQ_MOD)

    def _pump(self) -> None:
        now = self._scheduler.now()
        while self._pending and len(self._in_flight) < self._window:
            payload = self._pending.popleft()
            seq = self._next_seq
            self._next_seq = serial_succ(seq)
            self._in_flight[seq] = _InFlight(
                payload=payload, rto=self._rto_initial,
                deadline=now + self._rto_initial, sent_at=now)
            self._transmit(seq, payload)
        self._ensure_timer()

    def _transmit(self, seq: int, payload: bytes) -> None:
        packet = Packet(type=PacketType.DATA,
                        sender=self._transport.service_id,
                        seq=seq, ack=self._last_delivered, payload=payload)
        self._transport.send(self._peer_address, packet.encode())
        self.stats.sent += 1

    def _ensure_timer(self) -> None:
        """Arm the retransmit timer for the earliest outstanding deadline.

        Never *postpones* an armed timer: new transmissions carry later
        deadlines, and resetting the timer on every send would perpetually
        starve the oldest unacked packet's retransmission under a steady
        send stream.  A timer left early by an acked packet fires
        spuriously and re-arms — harmless.
        """
        deadline = min((entry.deadline
                        for entry in self._in_flight.values()
                        if not entry.sacked), default=None)
        if deadline is None:
            if self._retransmit_timer is not None:
                self._retransmit_timer.cancel()
                self._retransmit_timer = None
            self._timer_deadline = math.inf
            return
        if self._retransmit_timer is not None:
            if self._timer_deadline <= deadline + 1e-12:
                return
            self._retransmit_timer.cancel()
        self._timer_deadline = deadline
        self._retransmit_timer = self._scheduler.call_at(
            deadline, self._on_retransmit_timeout)

    def _on_retransmit_timeout(self) -> None:
        self._retransmit_timer = None
        self._timer_deadline = math.inf
        if self._closed or not self._in_flight:
            return
        now = self._scheduler.now()
        for seq in self._oldest_first():
            entry = self._in_flight[seq]
            if entry.sacked or entry.deadline > now + 1e-12:
                continue
            entry.retries += 1
            if self._max_retries is not None and entry.retries > self._max_retries:
                # Skipping one message would permanently stall the peer's
                # in-order delivery, so exhausting retries means the peer is
                # unreachable: surrender every queued payload and close.
                self._give_up()
                return
            entry.rto = min(entry.rto * 2.0, self._rto_max)
            entry.deadline = now + entry.rto
            entry.resent = True
            self._transmit(seq, entry.payload)
            self.stats.retransmissions += 1
        self._ensure_timer()

    def _give_up(self) -> None:
        undelivered = [self._in_flight[seq].payload
                       for seq in self._oldest_first()]
        undelivered.extend(self._pending)
        self.stats.give_ups += len(undelivered)
        self.close()
        if self._on_give_up is not None:
            for payload in undelivered:
                self._on_give_up(payload)

    def _process_ack(self, ack: int, sack: tuple[tuple[int, int], ...],
                     *, pure_ack: bool) -> None:
        now = self._scheduler.now()
        for start, end in sack:
            for seq in list(self._in_flight):
                if serial_leq(start, seq) and serial_leq(seq, end):
                    entry = self._in_flight[seq]
                    if not entry.sacked:
                        entry.sacked = True
                        if not entry.resent:
                            self._record_rtt(now - entry.sent_at)
        acked = [seq for seq in self._in_flight
                 if serial_leq(seq, ack)] if ack else []
        if acked:
            for seq in acked:
                entry = self._in_flight.pop(seq)
                # SACKed entries were sampled when the SACK arrived.
                if not entry.resent and not entry.sacked:
                    self._record_rtt(now - entry.sent_at)
            self._last_cum_ack = ack
            self._dup_acks = 0
            self._fast_rtx_seq = None
            self._pump()                    # refills the window, re-arms timer
        elif pure_ack and ack == self._last_cum_ack and self._in_flight:
            # A duplicate cumulative ack: the receiver got something beyond
            # a hole.  Three in a row fast-retransmit the hole.
            self._dup_acks += 1
            if self._dup_acks >= FAST_RETRANSMIT_DUPS:
                self._dup_acks = 0
                self._fast_retransmit()
        if sack:
            self._ensure_timer()            # SACKed packets leave the deadline set

    def _fast_retransmit(self) -> None:
        """Resend the oldest unSACKed packet, once per loss episode."""
        for seq in self._oldest_first():
            entry = self._in_flight[seq]
            if entry.sacked:
                continue
            if seq == self._fast_rtx_seq:
                return                      # already resent this hole
            self._fast_rtx_seq = seq
            # Push the timeout out one private RTO, but no backoff: a fast
            # retransmit is evidence the path works, not that it is slow.
            entry.deadline = self._scheduler.now() + entry.rto
            entry.resent = True
            self._transmit(seq, entry.payload)
            self.stats.retransmissions += 1
            self.stats.fast_retransmits += 1
            self._ensure_timer()
            return

    def _record_rtt(self, sample: float) -> None:
        """Fold one round-trip sample into the RFC-6298 estimator.

        First sample initialises ``srtt = R`` and ``rttvar = R/2``;
        thereafter the standard EWMA update (alpha 1/8, beta 1/4).  The
        estimator lives in :attr:`stats` so observers — and the autonomic
        RTT controller — read it without touching channel internals.
        """
        if sample < 0.0:
            return
        stats = self.stats
        if stats.rtt_samples == 0:
            stats.srtt = sample
            stats.rttvar = sample / 2.0
        else:
            stats.rttvar = 0.75 * stats.rttvar + 0.25 * abs(stats.srtt - sample)
            stats.srtt = 0.875 * stats.srtt + 0.125 * sample
        stats.rtt_samples += 1

    # -- receive machinery ---------------------------------------------------

    def _process_data(self, packet: Packet) -> None:
        seq = packet.seq
        if seq == self._expected_seq:
            self._deliver_in_order(packet.sender, packet.payload)
            while self._expected_seq in self._reorder:
                self._deliver_in_order(packet.sender,
                                       self._reorder.pop(self._expected_seq))
            self._send_ack()
            return
        if serial_lt(seq, self._expected_seq) or seq in self._reorder:
            self.stats.duplicates += 1
            self._send_ack()
            return
        self.stats.out_of_order += 1
        if len(self._reorder) < self._reorder_limit:
            self._reorder[seq] = packet.payload
        else:
            # Counted, not silent: the SACK we answer with excludes this
            # seq, so the sender keeps it outstanding and the RTO recovers
            # it once the buffer drains.
            self.stats.reorder_drops += 1
        self._send_ack()

    def _deliver_in_order(self, sender: ServiceId, payload: bytes) -> None:
        seq = self._expected_seq
        self._expected_seq = serial_succ(seq)
        self._last_delivered = seq
        self.stats.delivered += 1
        self._deliver(sender, payload)

    def _sack_ranges(self) -> tuple[tuple[int, int], ...]:
        """Contiguous runs held in the reorder buffer, oldest first."""
        if not self._reorder:
            return ()
        base = self._expected_seq
        keys = sorted(self._reorder, key=lambda s: (s - base) % _SEQ_MOD)
        ranges: list[tuple[int, int]] = []
        start = prev = keys[0]
        for seq in keys[1:]:
            if seq == serial_succ(prev):
                prev = seq
                continue
            ranges.append((start, prev))
            start = prev = seq
        ranges.append((start, prev))
        return tuple(ranges[:MAX_SACK_RANGES])

    def _send_ack(self) -> None:
        packet = Packet(type=PacketType.ACK,
                        sender=self._transport.service_id,
                        ack=self._last_delivered, sack=self._sack_ranges())
        self._transport.send(self._peer_address, packet.encode())
        self.stats.acks_sent += 1

    def __repr__(self) -> str:
        return (f"<ReliableChannel peer={self._peer_address!r} "
                f"window={self._window} in_flight={len(self._in_flight)} "
                f"pending={len(self._pending)} expected={self._expected_seq}>")
