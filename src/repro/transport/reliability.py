"""Acknowledged, ordered, duplicate-free channel over datagrams.

The paper's delivery semantics (Section II-C) require that management
events are delivered to each interested member *exactly once while it
remains a member*, and *in per-sender order*.  Datagrams give neither, so
each hop (publisher→bus, bus→subscriber) runs one :class:`ReliableChannel`:

* every DATA packet carries a sequence number and is retransmitted with
  exponential backoff until acknowledged ("events are always acknowledged
  when passing from publisher to event bus, and from the event bus to each
  subscriber, so that events cannot be lost in transit");
* the receiver delivers in sequence order, buffering out-of-order arrivals
  and re-acknowledging duplicates, so the upper layer sees an in-order,
  duplicate-free byte-message stream;
* acknowledgements are cumulative and also piggy-backed on reverse DATA
  traffic.

By default the channel retries forever: the paper queues events for
unavailable members "which have not yet been declared to have left the
SMC"; abandoning the queue is the proxy's job, on a Purge Member event,
via :meth:`close`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError, PacketError
from repro.ids import ServiceId
from repro.sim.kernel import Scheduler, Timer
from repro.transport.base import Address, Transport
from repro.transport.packets import Packet, PacketFlags, PacketType

DeliverCallback = Callable[[ServiceId, bytes], None]

_SEQ_MOD = 1 << 32


@dataclass
class ChannelStats:
    """Per-channel counters."""

    sent: int = 0
    delivered: int = 0
    retransmissions: int = 0
    duplicates: int = 0
    out_of_order: int = 0
    acks_sent: int = 0
    give_ups: int = 0


class ReliableChannel:
    """One direction-pair of the reliable protocol with a single peer."""

    def __init__(self, transport: Transport, scheduler: Scheduler,
                 peer_address: Address, deliver: DeliverCallback,
                 *, window: int = 1, rto_initial: float = 0.05,
                 rto_max: float = 2.0, max_retries: int | None = None,
                 reorder_buffer: int = 64,
                 on_give_up: Callable[[bytes], None] | None = None) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if rto_initial <= 0 or rto_max < rto_initial:
            raise ConfigurationError(
                f"bad RTO bounds: initial={rto_initial}, max={rto_max}")
        self._transport = transport
        self._scheduler = scheduler
        self._peer_address = peer_address
        self._deliver = deliver
        self._window = window
        self._rto_initial = rto_initial
        self._rto_max = rto_max
        self._max_retries = max_retries
        self._reorder_limit = reorder_buffer
        self._on_give_up = on_give_up

        # Send side.
        self._next_seq = 1
        self._pending: deque[bytes] = deque()          # not yet transmitted
        self._in_flight: dict[int, bytes] = {}         # seq -> payload
        self._retries: dict[int, int] = {}
        self._retransmit_timer: Timer | None = None
        self._rto = rto_initial

        # Receive side.
        self._expected_seq = 1
        self._reorder: dict[int, bytes] = {}
        self._peer_id: ServiceId | None = None

        self._closed = False
        self.stats = ChannelStats()

    # -- public API -----------------------------------------------------

    @property
    def peer_address(self) -> Address:
        return self._peer_address

    @property
    def peer_id(self) -> ServiceId | None:
        """The peer's service id, learned from its first packet."""
        return self._peer_id

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, payload: bytes, *, unreliable: bool = False) -> None:
        """Queue ``payload`` for ordered, acknowledged delivery.

        With ``unreliable=True`` the payload is sent once as a RAW packet
        with no sequencing — the mode a fire-and-forget sensor uses.
        """
        if self._closed:
            return
        if unreliable:
            packet = Packet(type=PacketType.RAW,
                            sender=self._transport.service_id,
                            ack=self._last_in_order(),
                            flags=PacketFlags.NO_ACK, payload=payload)
            self._transport.send(self._peer_address, packet.encode())
            return
        self._pending.append(payload)
        self._pump()

    def unacked_count(self) -> int:
        """Messages queued or in flight, awaiting acknowledgement."""
        return len(self._pending) + len(self._in_flight)

    def handle_packet(self, packet: Packet) -> None:
        """Process an incoming DATA/ACK/RAW packet from this channel's peer."""
        if self._closed:
            return
        self._peer_id = packet.sender
        # Every packet type may carry a piggy-backed cumulative ack.
        self._process_ack(packet.ack)
        if packet.type == PacketType.ACK:
            return
        if packet.type == PacketType.RAW:
            self._deliver(packet.sender, packet.payload)
            return
        if packet.type == PacketType.DATA:
            self._process_data(packet)
            return
        raise PacketError(f"channel cannot handle packet type {packet.type.name}")

    def close(self) -> None:
        """Drop all queued state.  Used when the peer is purged from the SMC."""
        self._closed = True
        self._pending.clear()
        self._in_flight.clear()
        self._retries.clear()
        self._reorder.clear()
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None

    # -- send machinery ----------------------------------------------------

    def _pump(self) -> None:
        while self._pending and len(self._in_flight) < self._window:
            payload = self._pending.popleft()
            seq = self._next_seq
            self._next_seq = (self._next_seq + 1) % _SEQ_MOD or 1
            self._in_flight[seq] = payload
            self._retries[seq] = 0
            self._transmit(seq, payload)
        self._arm_retransmit()

    def _transmit(self, seq: int, payload: bytes) -> None:
        packet = Packet(type=PacketType.DATA,
                        sender=self._transport.service_id,
                        seq=seq, ack=self._last_in_order(), payload=payload)
        self._transport.send(self._peer_address, packet.encode())
        self.stats.sent += 1

    def _arm_retransmit(self) -> None:
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None
        if self._in_flight:
            self._retransmit_timer = self._scheduler.call_later(
                self._rto, self._on_retransmit_timeout)

    def _on_retransmit_timeout(self) -> None:
        self._retransmit_timer = None
        if self._closed or not self._in_flight:
            return
        self._rto = min(self._rto * 2.0, self._rto_max)
        for seq in sorted(self._in_flight):
            self._retries[seq] += 1
            if self._max_retries is not None and self._retries[seq] > self._max_retries:
                # Skipping one message would permanently stall the peer's
                # in-order delivery, so exhausting retries means the peer is
                # unreachable: surrender every queued payload and close.
                self._give_up()
                return
            self._transmit(seq, self._in_flight[seq])
            self.stats.retransmissions += 1
        self._pump()

    def _give_up(self) -> None:
        undelivered = [self._in_flight[seq] for seq in sorted(self._in_flight)]
        undelivered.extend(self._pending)
        self.stats.give_ups += len(undelivered)
        self.close()
        if self._on_give_up is not None:
            for payload in undelivered:
                self._on_give_up(payload)

    def _process_ack(self, ack: int) -> None:
        if ack == 0:
            return
        advanced = False
        for seq in list(self._in_flight):
            if seq <= ack:
                del self._in_flight[seq]
                self._retries.pop(seq, None)
                advanced = True
        if advanced:
            self._rto = self._rto_initial
            self._pump()

    # -- receive machinery ---------------------------------------------------

    def _process_data(self, packet: Packet) -> None:
        seq = packet.seq
        if seq < self._expected_seq:
            self.stats.duplicates += 1
            self._send_ack()
            return
        if seq > self._expected_seq:
            self.stats.out_of_order += 1
            if len(self._reorder) < self._reorder_limit:
                self._reorder[seq] = packet.payload
            self._send_ack()
            return
        self._deliver_in_order(packet.sender, packet.payload)
        while self._expected_seq in self._reorder:
            self._deliver_in_order(packet.sender,
                                   self._reorder.pop(self._expected_seq))
        self._send_ack()

    def _deliver_in_order(self, sender: ServiceId, payload: bytes) -> None:
        self._expected_seq = (self._expected_seq + 1) % _SEQ_MOD or 1
        self.stats.delivered += 1
        self._deliver(sender, payload)

    def _send_ack(self) -> None:
        packet = Packet(type=PacketType.ACK,
                        sender=self._transport.service_id,
                        ack=self._last_in_order())
        self._transport.send(self._peer_address, packet.encode())
        self.stats.acks_sent += 1

    def _last_in_order(self) -> int:
        return (self._expected_seq - 1) % _SEQ_MOD

    def __repr__(self) -> str:
        return (f"<ReliableChannel peer={self._peer_address!r} "
                f"in_flight={len(self._in_flight)} pending={len(self._pending)} "
                f"expected={self._expected_seq}>")
