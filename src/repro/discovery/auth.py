"""Admission authentication.

The discovery service "handles the detection and admission of new services
to the SMC when they enter communication range (employing authentication
specific to the application)".  The mechanism is pluggable:
:class:`Authenticator` is the interface, and three application-flavoured
implementations are provided.  Medical deployments would slot in something
stronger behind the same interface.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Protocol

from repro.discovery.messages import AnnounceBody
from repro.ids import ServiceId


class Authenticator(Protocol):
    """Decides whether an announcing device may join the cell."""

    def authenticate(self, member_id: ServiceId,
                     announce: AnnounceBody) -> tuple[bool, str]:
        """Return ``(admitted, reason)``; reason is reported on refusal."""
        ...


class AllowAllAuthenticator:
    """Admit everything — development and benchmark cells."""

    def authenticate(self, member_id: ServiceId,
                     announce: AnnounceBody) -> tuple[bool, str]:
        return True, "open cell"


class SharedSecretAuthenticator:
    """Admit devices presenting an HMAC of their identity under the cell key.

    The credential is ``HMAC-SHA256(secret, name || device_type)`` — enough
    to keep a neighbouring patient's sensors out of this patient's cell
    without a PKI, which is the right weight for a body-area network.
    """

    def __init__(self, secret: bytes) -> None:
        self._secret = bytes(secret)

    def credential_for(self, name: str, device_type: str) -> bytes:
        """Compute the credential a legitimate device should present."""
        message = name.encode("utf-8") + b"\x00" + device_type.encode("utf-8")
        return hmac.new(self._secret, message, hashlib.sha256).digest()

    def authenticate(self, member_id: ServiceId,
                     announce: AnnounceBody) -> tuple[bool, str]:
        expected = self.credential_for(announce.name, announce.device_type)
        if hmac.compare_digest(expected, announce.credentials):
            return True, "credential accepted"
        return False, "bad credential"


class DeviceTypeAllowList:
    """Admit only known device types (e.g. this patient's prescribed kit)."""

    def __init__(self, allowed_types: set[str] | list[str]) -> None:
        self._allowed = set(allowed_types)

    def authenticate(self, member_id: ServiceId,
                     announce: AnnounceBody) -> tuple[bool, str]:
        if announce.device_type in self._allowed:
            return True, "device type allowed"
        return False, f"device type {announce.device_type!r} not allowed"


class CompositeAuthenticator:
    """All inner authenticators must admit (e.g. allow-list AND secret)."""

    def __init__(self, inner: list[Authenticator]) -> None:
        self._inner = list(inner)

    def authenticate(self, member_id: ServiceId,
                     announce: AnnounceBody) -> tuple[bool, str]:
        for authenticator in self._inner:
            admitted, reason = authenticator.authenticate(member_id, announce)
            if not admitted:
                return False, reason
        return True, "all checks passed"
