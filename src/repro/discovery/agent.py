"""The device-side discovery agent.

Every device (sensor, actuator, PDA application) runs one agent.  The agent
listens for cell BEACONs, announces the device with its credentials,
heartbeats while joined, and detects falling out of range (beacon silence)
so the device can stop transmitting and re-join when the cell is heard
again — the mobile side of the paper's join/leave dynamics.

State machine::

    SEARCHING --beacon--> ANNOUNCING --JOIN_ACK--> JOINED --leave_gracefully--> DRAINING
        ^                     |  ^                   |
        |                JOIN_NAK  beacon          beacon silence
        +--- REJECTED <-------+   (re-announce)      |
        ^                                            v
        +------------------- beacon silence ---- SEARCHING

Announce retries and post-rejection retries use jittered exponential
backoff: when a cell at capacity NAKs a ward full of devices, fixed
delays would re-synchronise every one of them into lockstep announce
storms; the jitter (deterministic per device name) spreads them out.
"""

from __future__ import annotations

import enum
import random
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.discovery.messages import (
    AnnounceBody,
    BeaconBody,
    HeartbeatBody,
    JoinAckBody,
    JoinNakBody,
    LeaveBody,
    LeaveIntentBody,
)
from repro.errors import CodecError, ConfigurationError, TransportClosedError
from repro.sim.kernel import Scheduler
from repro.transport.base import Address
from repro.transport.endpoint import PacketEndpoint
from repro.transport.packets import Packet, PacketType


class AgentState(enum.Enum):
    SEARCHING = "searching"
    ANNOUNCING = "announcing"
    JOINED = "joined"
    DRAINING = "draining"
    REJECTED = "rejected"
    STOPPED = "stopped"


@dataclass(frozen=True)
class AgentConfig:
    """Identity and timing of one device's agent."""

    name: str
    device_type: str
    credentials: bytes = b""
    #: Only join a cell with this name (None = first cell heard).
    target_cell: str | None = None
    #: Declare the cell out of range after this much beacon silence.
    beacon_timeout_s: float = 3.5
    #: Base re-announce delay while waiting for a JOIN_ACK; doubles per
    #: unanswered announce (with jitter) up to ``announce_backoff_cap_s``.
    announce_retry_s: float = 1.0
    #: Cap on the exponential announce-retry backoff.
    announce_backoff_cap_s: float = 8.0
    #: Base delay a REJECTED agent waits before trying again; doubles per
    #: consecutive rejection (with jitter) up to ``rejection_backoff_cap_s``.
    rejection_backoff_s: float = 30.0
    #: Cap on the exponential rejection backoff.
    rejection_backoff_cap_s: float = 120.0
    #: Declared inbound event capacity (0 = undeclared), carried on
    #: announces and heartbeats for the cell's backpressure controllers.
    capacity: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.device_type:
            raise ConfigurationError("agent needs a name and a device_type")
        for field_name in ("beacon_timeout_s", "announce_retry_s",
                           "announce_backoff_cap_s", "rejection_backoff_s",
                           "rejection_backoff_cap_s"):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{field_name} must be > 0")
        if self.capacity < 0:
            raise ConfigurationError("capacity must be >= 0")


@dataclass
class AgentStats:
    beacons_heard: int = 0
    announces_sent: int = 0
    joins: int = 0
    rejections: int = 0
    losses: int = 0           # times the cell went out of range
    heartbeats_sent: int = 0


class DiscoveryAgent:
    """Finds a cell, joins it, keeps the membership alive."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 config: AgentConfig) -> None:
        self.endpoint = endpoint
        self.scheduler = scheduler
        self.config = config
        self.state = AgentState.STOPPED
        self.stats = AgentStats()
        self.cell_name: str | None = None
        self.core_address: Address | None = None
        #: Invoked as ``on_joined(cell_name, core_address)``.
        self.on_joined: Callable[[str, Address], None] | None = None
        #: True when the most recent JOIN_ACK opened a *new* membership
        #: session (see JoinAckBody.new_session); read it in on_joined.
        self.last_join_was_new = True
        #: Invoked as ``on_left(reason)`` when membership is lost.
        self.on_left: Callable[[str], None] | None = None
        #: Invoked as ``on_rejected(reason)``.
        self.on_rejected: Callable[[str], None] | None = None

        self._heartbeat_timer = None
        self._announce_timer = None
        self._watchdog_timer = None
        self._rejection_timer = None
        self._last_beacon_at: float | None = None
        self._heartbeat_period_s: float | None = None
        self._announce_attempts = 0
        self._rejection_streak = 0
        self._frozen = False
        # Deterministic per-device jitter stream: reproducible in the
        # simulator, yet different devices desynchronise from each other.
        self._rng = random.Random(zlib.crc32(config.name.encode("utf-8")))
        endpoint.set_control_handler(self._on_control)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin searching for a cell."""
        if self.state != AgentState.STOPPED:
            return
        self._enter_searching()

    def announce_to(self, core_address: Address,
                    cell_name: str | None = None) -> None:
        """Join via a known rendezvous address instead of awaiting a beacon.

        Deployments on networks without a broadcast domain (loopback, most
        cloud fabrics) learn the cell's address out of band — this is the
        unicast bootstrap the deployment mode's client harness uses.  The
        agent enters ANNOUNCING immediately; the rest of the state machine
        (JOIN_ACK/NAK, heartbeats, beacon watchdog once directed beacons
        start arriving) is unchanged.  A no-op while already joined.
        """
        if self.state == AgentState.JOINED:
            return
        self._cancel_timers()
        self.state = AgentState.SEARCHING
        self.cell_name = cell_name
        self.core_address = core_address
        self._enter_announcing()

    def stop(self) -> None:
        """Politely leave (if joined) and stop all timers.  Idempotent:
        a second stop finds state STOPPED and every timer handle None, so
        nothing is sent and nothing is cancelled twice."""
        if self.state == AgentState.JOINED and self.core_address is not None:
            try:
                self.endpoint.send_control(self.core_address, PacketType.LEAVE,
                                           LeaveBody("leave").encode())
            except TransportClosedError:
                # The socket died first (crash-style shutdown): the polite
                # LEAVE is best-effort, the cell's lease reaps us anyway.
                pass
        self._cancel_timers()
        self.state = AgentState.STOPPED
        self.cell_name = None
        self.core_address = None
        self._frozen = False

    def leave_gracefully(self, reason: str = "drain") -> None:
        """Announce departure and keep heartbeating while the cell drains.

        Sends LEAVE_INTENT and enters DRAINING: the cell flushes our
        queued deliveries before purging us, so a planned departure loses
        no matched events.  The caller decides when to actually call
        :meth:`stop` (e.g. on the purge notification, or after the drain
        deadline).  A no-op unless currently JOINED.
        """
        if self.state != AgentState.JOINED or self.core_address is None:
            return
        self.endpoint.send_control(self.core_address, PacketType.LEAVE_INTENT,
                                   LeaveIntentBody(reason).encode())
        self.state = AgentState.DRAINING

    def freeze(self) -> None:
        """Simulate a process stall: stop all timers but keep state.

        Fault-injection hook (the deploy harness pairs it with dropping
        the transport's reads).  A frozen agent sends no heartbeats and
        processes no control packets until :meth:`thaw`.
        """
        if self._frozen or self.state == AgentState.STOPPED:
            return
        self._frozen = True
        self._cancel_timers()

    def thaw(self) -> None:
        """Resume after :meth:`freeze`, restarting the timers the current
        state needs.  The membership itself may have been purged while
        frozen — the next heartbeat or announce sorts that out."""
        if not self._frozen:
            return
        self._frozen = False
        if self.state in (AgentState.JOINED, AgentState.DRAINING):
            if self._heartbeat_period_s is not None:
                self._start_heartbeats(self._heartbeat_period_s)
            self._start_watchdog()
        elif self.state == AgentState.ANNOUNCING:
            self._announce_attempts = 0
            self._send_announce()
            self._schedule_announce_retry()
            self._start_watchdog()

    @property
    def joined(self) -> bool:
        return self.state == AgentState.JOINED

    # -- control-plane dispatch ----------------------------------------------

    def _on_control(self, packet: Packet, src: Address) -> None:
        if self.state == AgentState.STOPPED or self._frozen:
            return
        try:
            if packet.type == PacketType.BEACON:
                self._on_beacon(BeaconBody.decode(packet.payload), src)
            elif packet.type == PacketType.JOIN_ACK:
                self._on_join_ack(JoinAckBody.decode(packet.payload), src)
            elif packet.type == PacketType.JOIN_NAK:
                self._on_join_nak(JoinNakBody.decode(packet.payload))
        except CodecError:
            return

    def _on_beacon(self, beacon: BeaconBody, src: Address) -> None:
        if (self.config.target_cell is not None
                and beacon.cell_name != self.config.target_cell):
            return
        self.stats.beacons_heard += 1
        self._last_beacon_at = self.scheduler.now()
        if self.state == AgentState.SEARCHING:
            self.cell_name = beacon.cell_name
            self.core_address = src
            self._enter_announcing()

    def _on_join_ack(self, ack: JoinAckBody, src: Address) -> None:
        if self.state not in (AgentState.ANNOUNCING, AgentState.JOINED):
            return
        first_join = self.state is AgentState.ANNOUNCING
        self.state = AgentState.JOINED
        self.cell_name = ack.cell_name
        self.core_address = src
        self._cancel_announce()
        self.last_join_was_new = ack.new_session
        self._rejection_streak = 0
        if first_join:
            self.stats.joins += 1
            self._start_heartbeats(ack.heartbeat_period_s)
            if self.on_joined is not None:
                self.on_joined(ack.cell_name, src)

    def _on_join_nak(self, nak: JoinNakBody) -> None:
        if self.state != AgentState.ANNOUNCING:
            return
        self.state = AgentState.REJECTED
        self.stats.rejections += 1
        self._rejection_streak += 1
        self._cancel_announce()
        self._rejection_timer = self.scheduler.call_later(
            self._backoff(self.config.rejection_backoff_s,
                          self._rejection_streak - 1,
                          self.config.rejection_backoff_cap_s),
            self._retry_after_rejection)
        if self.on_rejected is not None:
            self.on_rejected(nak.reason)

    def _retry_after_rejection(self) -> None:
        self._rejection_timer = None
        if self.state == AgentState.REJECTED:
            self._enter_searching()

    def _backoff(self, base_s: float, attempt: int, cap_s: float) -> float:
        """Jittered exponential backoff: ``min(cap, base * 2^attempt)``
        scaled by a uniform factor in [0.5, 1.5)."""
        delay = min(cap_s, base_s * (2.0 ** attempt))
        return delay * (0.5 + self._rng.random())

    # -- states --------------------------------------------------------------

    def _enter_searching(self) -> None:
        self._cancel_timers()
        self.state = AgentState.SEARCHING
        self.cell_name = None
        self.core_address = None
        self._last_beacon_at = None

    def _enter_announcing(self) -> None:
        self.state = AgentState.ANNOUNCING
        self._announce_attempts = 0
        self._send_announce()
        self._schedule_announce_retry()
        self._start_watchdog()

    def _schedule_announce_retry(self) -> None:
        self._announce_timer = self.scheduler.call_later(
            self._backoff(self.config.announce_retry_s,
                          self._announce_attempts,
                          self.config.announce_backoff_cap_s),
            self._announce_retry)

    def _announce_retry(self) -> None:
        self._announce_timer = None
        if self.state != AgentState.ANNOUNCING:
            return
        self._announce_attempts += 1
        self._send_announce()
        self._schedule_announce_retry()

    def _send_announce(self) -> None:
        if self.core_address is None:
            return
        body = AnnounceBody(self.config.name, self.config.device_type,
                            self.config.credentials, self.config.capacity)
        self.endpoint.send_control(self.core_address, PacketType.ANNOUNCE,
                                   body.encode())
        self.stats.announces_sent += 1

    def _start_heartbeats(self, period_s: float) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        self._heartbeat_period_s = period_s
        self._heartbeat_timer = self.scheduler.every(period_s,
                                                     self._send_heartbeat)

    def _send_heartbeat(self) -> None:
        # DRAINING members keep heartbeating: the cell must be able to
        # tell "draining, alive" from "crashed mid-drain".
        if (self.state in (AgentState.JOINED, AgentState.DRAINING)
                and self.core_address is not None):
            payload = (HeartbeatBody(self.config.capacity).encode()
                       if self.config.capacity else b"")
            self.endpoint.send_control(self.core_address,
                                       PacketType.HEARTBEAT, payload)
            self.stats.heartbeats_sent += 1

    # -- out-of-range watchdog ----------------------------------------------

    def _start_watchdog(self) -> None:
        if self._watchdog_timer is None:
            self._watchdog_timer = self.scheduler.every(
                self.config.beacon_timeout_s / 2.0, self._check_beacons)

    def _check_beacons(self) -> None:
        if self.state not in (AgentState.JOINED, AgentState.ANNOUNCING):
            return
        if self._last_beacon_at is None:
            return
        silence = self.scheduler.now() - self._last_beacon_at
        if silence > self.config.beacon_timeout_s:
            was_joined = self.state == AgentState.JOINED
            self.stats.losses += 1
            self._enter_searching()
            self._start_watchdog_noop()
            if was_joined and self.on_left is not None:
                self.on_left("beacon silence")

    def _start_watchdog_noop(self) -> None:
        # _enter_searching cancelled every timer including the watchdog;
        # searching needs no watchdog (the next beacon restarts the cycle).
        pass

    # -- internals ---------------------------------------------------------

    def _cancel_announce(self) -> None:
        if self._announce_timer is not None:
            self._announce_timer.cancel()
            self._announce_timer = None

    def _cancel_timers(self) -> None:
        self._cancel_announce()
        for timer in (self._heartbeat_timer, self._watchdog_timer,
                      self._rejection_timer):
            if timer is not None:
                timer.cancel()
        self._heartbeat_timer = None
        self._watchdog_timer = None
        self._rejection_timer = None
