"""The SMC discovery service (paper Section II-B).

"An SMC includes a discovery service, which implements a protocol to search
for new devices to integrate into the cell, and maintains connectivity to
those devices while they are within range.  The discovery service is
responsible for managing group membership."

Deliberately, "the discovery protocol does not use the event bus for
monitoring group membership" — it runs on the unsequenced control plane of
the packet endpoint (beacons, announcements, heartbeats survive loss by
repetition, not retransmission).  Its *outputs*, though, are bus events:
"the discovery service informs the SMC of the arrival or departure of
devices via 'New Member' and 'Purge Member' events".

The protocol masks transient disconnections: a member that falls silent is
marked SILENT (and masked) until the purge timeout expires — "a nurse
leaves the room for a short period of time before returning" must not
destroy her proxy and its queued events.
"""

from repro.discovery.agent import AgentConfig, AgentState, DiscoveryAgent
from repro.discovery.auth import (
    AllowAllAuthenticator,
    Authenticator,
    DeviceTypeAllowList,
    SharedSecretAuthenticator,
)
from repro.discovery.membership import MemberRecord, MembershipTable, MemberState
from repro.discovery.service import DiscoveryConfig, DiscoveryService

__all__ = [
    "DiscoveryService",
    "DiscoveryConfig",
    "DiscoveryAgent",
    "AgentConfig",
    "AgentState",
    "MembershipTable",
    "MemberRecord",
    "MemberState",
    "Authenticator",
    "AllowAllAuthenticator",
    "SharedSecretAuthenticator",
    "DeviceTypeAllowList",
]
