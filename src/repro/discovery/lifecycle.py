"""Member health lifecycle.

Layered *over* the ACTIVE/SILENT masking machine in
:mod:`repro.discovery.membership`: masking answers "is the member's state
still valid?" (the paper's transient-disconnection guarantee), while the
lifecycle answers "how healthy is this member, operationally?"::

    JOINING --first heartbeat--> HEALTHY <--heard again-- DEGRADED
       |                            |  \\                    ^ |
       |                            |   +-- missed 3 x hb --+ |
       +------- LEAVE_INTENT -------+------------------------ | --+
       |                                                      |   v
       +--------------------> GONE <----- purge/deadline -- DRAINING

* ``JOINING``   — admitted, but no heartbeat seen yet.
* ``HEALTHY``   — heartbeating within its contract.
* ``DEGRADED``  — missed roughly three heartbeat intervals.  Jitter
  tolerant: a single late heartbeat does not degrade, and the member
  recovers the moment it is heard again.  A crashed ("ghost") member is
  flagged here long before the masking purge fires.
* ``DRAINING``  — announced its departure (LEAVE_INTENT); the cell is
  flushing its queued deliveries before tearing the channel down.
* ``GONE``      — purged.  Terminal.

The transition table is enforced: an illegal transition is a bug in the
discovery service, not a recoverable protocol event, so ``advance``
raises :class:`~repro.errors.DiscoveryError`.
"""

from __future__ import annotations

import enum

from repro.errors import DiscoveryError


class LifecycleState(enum.Enum):
    JOINING = "joining"
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DRAINING = "draining"
    GONE = "gone"


#: Allowed transitions.  DRAINING only ends in GONE (a draining member
#: heard again stays draining — it told us it is leaving); GONE is terminal.
_ALLOWED: dict[LifecycleState, frozenset[LifecycleState]] = {
    LifecycleState.JOINING: frozenset({
        LifecycleState.HEALTHY, LifecycleState.DEGRADED,
        LifecycleState.DRAINING, LifecycleState.GONE}),
    LifecycleState.HEALTHY: frozenset({
        LifecycleState.DEGRADED, LifecycleState.DRAINING,
        LifecycleState.GONE}),
    LifecycleState.DEGRADED: frozenset({
        LifecycleState.HEALTHY, LifecycleState.DRAINING,
        LifecycleState.GONE}),
    LifecycleState.DRAINING: frozenset({LifecycleState.GONE}),
    LifecycleState.GONE: frozenset(),
}


def can_advance(current: LifecycleState, target: LifecycleState) -> bool:
    return target in _ALLOWED[current]


def advance(current: LifecycleState, target: LifecycleState) -> LifecycleState:
    """Validate and return the new state; raise on an illegal transition."""
    if target not in _ALLOWED[current]:
        raise DiscoveryError(
            f"illegal lifecycle transition {current.value} -> {target.value}")
    return target


def degraded_threshold(heartbeat_period_s: float,
                       degraded_after_s: float | None = None) -> float:
    """Silence beyond which a member is DEGRADED.

    Defaults to three heartbeat intervals — two in a row may be jitter or
    a single lost datagram, three is a pattern (the kiboserve exemplar's
    miss threshold, and the bound the chaos soak asserts against).
    """
    if degraded_after_s is not None:
        return degraded_after_s
    return 3.0 * heartbeat_period_s
