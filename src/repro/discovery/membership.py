"""Group membership table.

Tracks every admitted member's lifecycle::

    ACTIVE --silence > silent_after--> SILENT --silence > purge_after--> PURGED
      ^                                  |
      +------- heard from again ---------+

SILENT is the masking state the paper requires: the member is still part of
the SMC (its proxy and queued events survive), but the cell knows it has
not been heard from.  Only the purge transition is irreversible.

Orthogonally, each record carries a *health lifecycle*
(:class:`~repro.discovery.lifecycle.LifecycleState`): JOINING → HEALTHY →
DEGRADED → DRAINING → GONE.  Masking decides when state is discarded;
the lifecycle is the operational health signal (healthz, backpressure,
graceful drain) and is reported on the bus as ``smc.member.state``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.discovery.lifecycle import LifecycleState, advance
from repro.errors import DiscoveryError
from repro.ids import ServiceId
from repro.transport.base import Address


class MemberState(enum.Enum):
    ACTIVE = "active"
    SILENT = "silent"
    PURGED = "purged"


@dataclass
class MemberRecord:
    """Everything the cell knows about one member."""

    member_id: ServiceId
    name: str
    device_type: str
    address: Address
    admitted_at: float
    last_heard: float
    state: MemberState = MemberState.ACTIVE
    silent_since: float | None = field(default=None)
    #: Health lifecycle, orthogonal to the masking state above.
    lifecycle: LifecycleState = LifecycleState.JOINING
    #: Declared inbound event capacity (0 = undeclared); carried on
    #: ANNOUNCE/HEARTBEAT and honoured by backpressure and flushing.
    capacity: int = 0
    #: When the member entered DEGRADED (None while healthy).
    degraded_since: float | None = field(default=None)
    #: When the member sent LEAVE_INTENT (None unless DRAINING).
    drain_started: float | None = field(default=None)

    def heard(self, now: float) -> bool:
        """Record liveness; returns True if this recovered a SILENT member."""
        self.last_heard = now
        if self.state == MemberState.SILENT:
            self.state = MemberState.ACTIVE
            self.silent_since = None
            return True
        return False

    def silence(self, now: float) -> float:
        """Seconds since the member was last heard from."""
        return now - self.last_heard

    def advance_lifecycle(self, target: LifecycleState) -> LifecycleState:
        """Move to ``target``, enforcing the transition table."""
        self.lifecycle = advance(self.lifecycle, target)
        return self.lifecycle


class MembershipTable:
    """Registry of admitted members, keyed by service id."""

    def __init__(self) -> None:
        self._records: dict[ServiceId, MemberRecord] = {}

    def admit(self, record: MemberRecord) -> None:
        if record.member_id in self._records:
            raise DiscoveryError(f"member {record.member_id} already admitted")
        self._records[record.member_id] = record

    def get(self, member_id: ServiceId) -> MemberRecord | None:
        return self._records.get(member_id)

    def remove(self, member_id: ServiceId) -> MemberRecord:
        try:
            record = self._records.pop(member_id)
        except KeyError:
            raise DiscoveryError(f"member {member_id} not admitted") from None
        record.state = MemberState.PURGED
        record.lifecycle = LifecycleState.GONE
        return record

    def members(self) -> list[MemberRecord]:
        """All records, ordered by member id for determinism."""
        return [self._records[k] for k in sorted(self._records)]

    def in_state(self, state: MemberState) -> list[MemberRecord]:
        return [r for r in self.members() if r.state == state]

    def in_lifecycle(self, state: LifecycleState) -> list[MemberRecord]:
        return [r for r in self.members() if r.lifecycle == state]

    def lifecycle_counts(self) -> dict[str, int]:
        """Member count per lifecycle state (healthz's summary line)."""
        counts = {state.value: 0 for state in LifecycleState
                  if state is not LifecycleState.GONE}
        for record in self._records.values():
            counts[record.lifecycle.value] = counts.get(
                record.lifecycle.value, 0) + 1
        return counts

    def by_name(self, name: str) -> MemberRecord | None:
        for record in self._records.values():
            if record.name == name:
                return record
        return None

    def __contains__(self, member_id: ServiceId) -> bool:
        return member_id in self._records

    def __len__(self) -> int:
        return len(self._records)
