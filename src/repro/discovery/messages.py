"""Wire bodies for the discovery control plane.

Control packets are unsequenced datagrams (loss is tolerated by periodic
repetition), so each body is a small, self-contained TLV structure.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CodecError
from repro.transport import wire


@dataclass(frozen=True)
class BeaconBody:
    """Periodic presence broadcast from the SMC core."""

    cell_name: str
    core_address: str          # textual, parsed by agents on the same medium

    def encode(self) -> bytes:
        return wire.encode_str(self.cell_name) + wire.encode_str(self.core_address)

    @classmethod
    def decode(cls, buf: bytes) -> "BeaconBody":
        cell_name, pos = wire.decode_str(buf)
        core_address, pos = wire.decode_str(buf, pos)
        _expect_end(buf, pos, "beacon")
        return cls(cell_name, core_address)


@dataclass(frozen=True)
class AnnounceBody:
    """A device introducing itself to a cell it heard beaconing.

    ``capacity`` declares the device's inbound event buffer depth (0 =
    undeclared).  It is appended as a trailing varint so bodies from
    pre-capacity senders (which simply end after the credentials) still
    decode — a PDA running last year's firmware can join today's cell.
    """

    name: str
    device_type: str
    credentials: bytes = b""
    capacity: int = 0

    def encode(self) -> bytes:
        return (wire.encode_str(self.name) + wire.encode_str(self.device_type)
                + wire.encode_varint(len(self.credentials)) + self.credentials
                + wire.encode_varint(self.capacity))

    @classmethod
    def decode(cls, buf: bytes) -> "AnnounceBody":
        name, pos = wire.decode_str(buf)
        device_type, pos = wire.decode_str(buf, pos)
        cred_len, pos = wire.decode_varint(buf, pos)
        if pos + cred_len > len(buf):
            raise CodecError("truncated announce credentials")
        credentials = bytes(buf[pos:pos + cred_len])
        pos += cred_len
        capacity = 0
        if pos < len(buf):               # pre-capacity bodies end here
            capacity, pos = wire.decode_varint(buf, pos)
        _expect_end(buf, pos, "announce")
        return cls(name, device_type, credentials, capacity)


@dataclass(frozen=True)
class JoinAckBody:
    """Admission granted: cell identity plus the member's timing contract.

    ``new_session`` distinguishes a *fresh admission* (the cell created a
    new membership record — any previous channel/subscription state the
    device holds is stale and must be reset) from a re-acknowledgement of
    an existing membership (a masked transient disconnection: all state is
    still valid).  The paper's delivery guarantee is scoped to one
    membership session, and this flag is how the device learns where the
    session boundary fell.
    """

    cell_name: str
    heartbeat_period_s: float
    lease_s: float             # silence tolerated before the purge fires
    new_session: bool = True

    def encode(self) -> bytes:
        return (wire.encode_str(self.cell_name)
                + struct.pack("!dd?", self.heartbeat_period_s, self.lease_s,
                              self.new_session))

    @classmethod
    def decode(cls, buf: bytes) -> "JoinAckBody":
        cell_name, pos = wire.decode_str(buf)
        if pos + 17 > len(buf):
            raise CodecError("truncated join-ack timing")
        heartbeat, lease, new_session = struct.unpack_from("!dd?", buf, pos)
        _expect_end(buf, pos + 17, "join-ack")
        return cls(cell_name, heartbeat, lease, new_session)


@dataclass(frozen=True)
class JoinNakBody:
    """Admission refused."""

    reason: str

    def encode(self) -> bytes:
        return wire.encode_str(self.reason)

    @classmethod
    def decode(cls, buf: bytes) -> "JoinNakBody":
        reason, pos = wire.decode_str(buf)
        _expect_end(buf, pos, "join-nak")
        return cls(reason)


@dataclass(frozen=True)
class HeartbeatBody:
    """Optional heartbeat payload: a refreshed capacity declaration.

    Heartbeats historically carry no payload; an empty payload still means
    "alive, nothing declared", so old devices interoperate unchanged.
    """

    capacity: int = 0

    def encode(self) -> bytes:
        return wire.encode_varint(self.capacity)

    @classmethod
    def decode(cls, buf: bytes) -> "HeartbeatBody":
        if not len(buf):
            return cls(0)
        capacity, pos = wire.decode_varint(buf)
        _expect_end(buf, pos, "heartbeat")
        return cls(capacity)


@dataclass(frozen=True)
class LeaveBody:
    """Polite departure."""

    reason: str = "leave"

    def encode(self) -> bytes:
        return wire.encode_str(self.reason)

    @classmethod
    def decode(cls, buf: bytes) -> "LeaveBody":
        reason, pos = wire.decode_str(buf)
        _expect_end(buf, pos, "leave")
        return cls(reason)


@dataclass(frozen=True)
class LeaveIntentBody:
    """Departure announced ahead of time: please drain me first.

    Unlike LEAVE (immediate purge), LEAVE_INTENT starts the graceful-drain
    arc: the cell withdraws the member's subscriptions, flushes its queued
    deliveries, and only then purges.  The member keeps heartbeating while
    it drains so the cell can tell "draining" from "crashed mid-drain".
    """

    reason: str = "drain"

    def encode(self) -> bytes:
        return wire.encode_str(self.reason)

    @classmethod
    def decode(cls, buf: bytes) -> "LeaveIntentBody":
        reason, pos = wire.decode_str(buf)
        _expect_end(buf, pos, "leave-intent")
        return cls(reason)


def _expect_end(buf: bytes, pos: int, what: str) -> None:
    if pos != len(buf):
        raise CodecError(f"trailing bytes after {what} body")
