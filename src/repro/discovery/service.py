"""The cell-side discovery service.

Runs on the SMC core next to the event bus.  Broadcasts periodic BEACONs so
devices can find the cell; admits devices that ANNOUNCE themselves (after
authentication); tracks member liveness through HEARTBEATs; and drives the
masking state machine (ACTIVE → SILENT → purge) with a periodic sweep.

Membership *changes* are reported onto the event bus as ``smc.member.*``
events — that is the entire coupling between discovery and the bus, exactly
as the paper separates the two concerns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bootstrap import format_address
from repro.core.bus import EventBus
from repro.core.events import (
    MEMBER_MOVED_TYPE,
    MEMBER_RECOVERED_TYPE,
    MEMBER_SILENT_TYPE,
    MEMBER_STATE_TYPE,
    NEW_MEMBER_TYPE,
    PURGE_MEMBER_TYPE,
)
from repro.discovery.auth import AllowAllAuthenticator, Authenticator
from repro.discovery.lifecycle import LifecycleState, degraded_threshold
from repro.discovery.membership import MembershipTable, MemberRecord, MemberState
from repro.discovery.messages import (
    AnnounceBody,
    BeaconBody,
    HeartbeatBody,
    JoinAckBody,
    JoinNakBody,
    LeaveBody,
    LeaveIntentBody,
)
from repro.errors import CodecError, ConfigurationError
from repro.ids import ServiceId
from repro.sim.kernel import Scheduler
from repro.transport.base import Address
from repro.transport.endpoint import PacketEndpoint
from repro.transport.packets import Packet, PacketType


@dataclass(frozen=True)
class DiscoveryConfig:
    """Timing and identity of one cell's discovery protocol.

    ``silent_after`` and ``purge_after`` realise the paper's masking of
    transient disconnections: a device may be silent for up to
    ``purge_after`` seconds (nurse out of the room) before the cell gives
    up on it and launches a Purge Member event (Section VI names exactly
    this timeout as a tuning scenario).
    """

    cell_name: str
    beacon_period_s: float = 1.0
    heartbeat_period_s: float = 1.0
    silent_after_s: float = 2.5
    purge_after_s: float = 10.0
    sweep_period_s: float = 0.5
    #: Silence beyond which a member's lifecycle is DEGRADED.  None means
    #: the jitter-tolerant default of three heartbeat intervals.
    degraded_after_s: float | None = None
    #: How long a DRAINING member gets to flush its queued deliveries
    #: before drain degrades to the ordinary purge path.
    drain_deadline_s: float = 5.0

    def __post_init__(self) -> None:
        if not self.cell_name:
            raise ConfigurationError("cell_name must be non-empty")
        for name in ("beacon_period_s", "heartbeat_period_s",
                     "silent_after_s", "purge_after_s", "sweep_period_s",
                     "drain_deadline_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0")
        if self.degraded_after_s is not None and self.degraded_after_s <= 0:
            raise ConfigurationError("degraded_after_s must be > 0")
        if self.purge_after_s <= self.silent_after_s:
            raise ConfigurationError(
                "purge_after_s must exceed silent_after_s "
                "(SILENT is the masking state before a purge)")

    @property
    def degraded_threshold_s(self) -> float:
        return degraded_threshold(self.heartbeat_period_s,
                                  self.degraded_after_s)


@dataclass
class DiscoveryStats:
    beacons_sent: int = 0
    announces_seen: int = 0
    admissions: int = 0
    rejections: int = 0
    heartbeats_seen: int = 0
    recoveries: int = 0
    roams: int = 0
    silences: int = 0
    purges: int = 0
    leaves: int = 0
    degradations: int = 0
    drains: int = 0
    drains_completed: int = 0
    drain_timeouts: int = 0


class DiscoveryService:
    """Beacons, admission, leases and the purge state machine."""

    def __init__(self, bus: EventBus, endpoint: PacketEndpoint,
                 scheduler: Scheduler, config: DiscoveryConfig,
                 authenticator: Authenticator | None = None) -> None:
        self.bus = bus
        self.endpoint = endpoint
        self.scheduler = scheduler
        self.config = config
        self.authenticator = (authenticator if authenticator is not None
                              else AllowAllAuthenticator())
        self.table = MembershipTable()
        self.stats = DiscoveryStats()
        #: Observed silence at each DEGRADED transition — the measured
        #: ghost-detection latencies the ROADMAP and bench gate report.
        self.degraded_latencies: list[float] = []
        self._publisher = bus.local_publisher(f"discovery.{config.cell_name}")
        self._beacon_timer = None
        self._sweep_timer = None
        self._running = False
        endpoint.set_control_handler(self._on_control)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin beaconing and liveness sweeps."""
        if self._running:
            return
        self._running = True
        self._beacon_timer = self.scheduler.every(self.config.beacon_period_s,
                                                  self._send_beacon)
        self._sweep_timer = self.scheduler.every(self.config.sweep_period_s,
                                                 self._sweep)
        self._send_beacon()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._beacon_timer is not None:
            self._beacon_timer.cancel()
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()

    @property
    def running(self) -> bool:
        return self._running

    # -- beaconing ----------------------------------------------------------

    def _send_beacon(self) -> None:
        body = BeaconBody(self.config.cell_name,
                          format_address(self.endpoint.local_address))
        self.endpoint.broadcast_control(PacketType.BEACON, body.encode())
        self.stats.beacons_sent += 1

    # -- control-plane dispatch ----------------------------------------------

    def _on_control(self, packet: Packet, src: Address) -> None:
        if not self._running:
            return
        try:
            if packet.type == PacketType.ANNOUNCE:
                self._on_announce(packet.sender, AnnounceBody.decode(packet.payload), src)
            elif packet.type == PacketType.HEARTBEAT:
                self._on_heartbeat(packet.sender,
                                   HeartbeatBody.decode(packet.payload), src)
            elif packet.type == PacketType.LEAVE:
                self._on_leave(packet.sender, LeaveBody.decode(packet.payload))
            elif packet.type == PacketType.LEAVE_INTENT:
                self._on_leave_intent(
                    packet.sender, LeaveIntentBody.decode(packet.payload))
            # BEACON/JOIN_* from other cells are ignored by the service side.
        except CodecError:
            return

    # -- admission ----------------------------------------------------------

    def _on_announce(self, member_id: ServiceId, announce: AnnounceBody,
                     src: Address) -> None:
        self.stats.announces_seen += 1
        record = self.table.get(member_id)
        if record is not None:
            # Known member re-announcing (e.g. it missed our ack, or it was
            # out of range): treat as liveness, re-ack idempotently.  The
            # membership session continues, so new_session=False.  An
            # announce from a *new* address is a roam: without the handover
            # the record keeps the stale address and the member's queued
            # deliveries retransmit there until purge.
            if src != record.address:
                self._handle_roam(record, src)
            self._update_capacity(record, announce.capacity)
            self._mark_heard(record)
            self._send_join_ack(src, new_session=False)
            return

        admitted, reason = self.authenticator.authenticate(member_id, announce)
        if not admitted:
            self.stats.rejections += 1
            self.endpoint.send_control(src, PacketType.JOIN_NAK,
                                       JoinNakBody(reason).encode())
            return

        now = self.scheduler.now()
        record = MemberRecord(member_id=member_id, name=announce.name,
                              device_type=announce.device_type, address=src,
                              admitted_at=now, last_heard=now,
                              capacity=announce.capacity)
        self.table.admit(record)
        self.stats.admissions += 1
        self.endpoint.learn_peer(member_id, src)
        self._send_join_ack(src, new_session=True)
        # "This is triggered by a discovery event": the New Member event is
        # what makes the rest of the cell (bootstrap, policy) react.
        self._publisher.publish(NEW_MEMBER_TYPE, {
            "member": int(member_id),
            "name": announce.name,
            "device_type": announce.device_type,
            "address": format_address(src),
            "capacity": announce.capacity,
        })

    def _send_join_ack(self, src: Address, *, new_session: bool) -> None:
        ack = JoinAckBody(self.config.cell_name,
                          self.config.heartbeat_period_s,
                          self.config.purge_after_s, new_session)
        self.endpoint.send_control(src, PacketType.JOIN_ACK, ack.encode())

    def _handle_roam(self, record: MemberRecord, src: Address) -> None:
        """Hand the member's transport state over to its new address.

        The endpoint migrates queued deliveries from every superseded
        channel (the PR 3 reverse-map machinery) and re-learns the
        forward mapping; the record follows, and a Member Moved event
        tells the rest of the cell (e.g. a directed-beacon domain).
        """
        old_address = record.address
        requeued = self.endpoint.move_peer(record.member_id, src)
        record.address = src
        self.stats.roams += 1
        self._publisher.publish(MEMBER_MOVED_TYPE, {
            "member": int(record.member_id), "name": record.name,
            "address": format_address(src),
            "old_address": format_address(old_address),
            "requeued": requeued,
        })

    # -- liveness ------------------------------------------------------------

    def _on_heartbeat(self, member_id: ServiceId, heartbeat: HeartbeatBody,
                      src: Address) -> None:
        record = self.table.get(member_id)
        if record is None:
            return            # heartbeat from a purged/unknown device
        self.stats.heartbeats_seen += 1
        if src != record.address:
            # A heartbeat can be the first packet heard after a roam
            # (announce lost, or the device never re-announced): the same
            # handover applies.
            self._handle_roam(record, src)
        if heartbeat.capacity:
            self._update_capacity(record, heartbeat.capacity)
        self._mark_heard(record)

    def _mark_heard(self, record: MemberRecord) -> None:
        recovered = record.heard(self.scheduler.now())
        if recovered:
            self.stats.recoveries += 1
            self._publisher.publish(MEMBER_RECOVERED_TYPE, {
                "member": int(record.member_id), "name": record.name,
            })
        if record.lifecycle in (LifecycleState.JOINING,
                                LifecycleState.DEGRADED):
            # First heartbeat, or a ghost come back to life.  DRAINING is
            # deliberately excluded: heartbeats while draining only prove
            # the member survived long enough to be flushed.
            record.degraded_since = None
            self._set_lifecycle(record, LifecycleState.HEALTHY)

    def _update_capacity(self, record: MemberRecord, capacity: int) -> None:
        """Refresh a member's declared capacity, announcing the change."""
        if capacity == record.capacity:
            return
        record.capacity = capacity
        self._publish_state(record, previous=record.lifecycle)

    def _on_leave(self, member_id: ServiceId, leave: LeaveBody) -> None:
        record = self.table.get(member_id)
        if record is None:
            return
        self.stats.leaves += 1
        self._purge(record, reason=leave.reason)

    # -- graceful drain -------------------------------------------------------

    def _on_leave_intent(self, member_id: ServiceId,
                         intent: LeaveIntentBody) -> None:
        """Begin draining: flush the member's queue, then purge.

        Consolidates any roamed-channel remnants onto the member's live
        address (the PR 3 reverse-map machinery) so *every* queued
        delivery is on the channel the sweep watches, and reports the
        DRAINING transition — the member's proxy reacts by withdrawing
        its subscriptions and quenching its publishers, so the backlog
        only shrinks from here.  Idempotent: LEAVE_INTENT is a datagram
        and may be repeated.
        """
        record = self.table.get(member_id)
        if record is None or record.lifecycle is LifecycleState.DRAINING:
            return
        self.stats.drains += 1
        record.drain_started = self.scheduler.now()
        self.endpoint.move_peer(member_id, record.address)
        self._set_lifecycle(record, LifecycleState.DRAINING,
                            reason=intent.reason)

    def _drain_backlog(self, record: MemberRecord) -> int:
        """Undelivered payloads still queued for a draining member."""
        backlog = 0
        for address in self.endpoint.channel_addresses(record.member_id):
            channel = self.endpoint.existing_channel(address)
            if channel is not None:
                backlog += channel.unacked_count()
        return backlog

    # -- the masking state machine ------------------------------------------

    def _sweep(self) -> None:
        now = self.scheduler.now()
        for record in self.table.members():
            if record.lifecycle is LifecycleState.DRAINING:
                self._sweep_draining(record, now)
                continue
            silence = record.silence(now)
            if (record.lifecycle is not LifecycleState.DEGRADED
                    and silence > self.config.degraded_threshold_s):
                record.degraded_since = now
                self.stats.degradations += 1
                self.degraded_latencies.append(silence)
                self._set_lifecycle(record, LifecycleState.DEGRADED)
            if (record.state == MemberState.ACTIVE
                    and silence > self.config.silent_after_s):
                record.state = MemberState.SILENT
                record.silent_since = now
                self.stats.silences += 1
                self._publisher.publish(MEMBER_SILENT_TYPE, {
                    "member": int(record.member_id), "name": record.name,
                })
            if (record.state == MemberState.SILENT
                    and silence > self.config.purge_after_s):
                self._purge(record, reason="timeout")

    def _sweep_draining(self, record: MemberRecord, now: float) -> None:
        """Draining members purge on empty backlog — or on the deadline.

        While DRAINING the masking timers are suspended: the member told
        us it is leaving, so silence is expected, and the only questions
        left are "is the queue flushed?" and "has it taken too long?".
        """
        assert record.drain_started is not None
        if self._drain_backlog(record) == 0:
            self.stats.drains_completed += 1
            self._purge(record, reason="drain")
        elif now - record.drain_started > self.config.drain_deadline_s:
            self.stats.drain_timeouts += 1
            self._purge(record, reason="drain-deadline")

    def _purge(self, record: MemberRecord, reason: str) -> None:
        """Remove a member and launch the Purge Member event.

        The event is what triggers the member's proxy to destroy itself
        and its queued events; discovery itself only maintains the table.
        """
        previous = record.lifecycle
        self.table.remove(record.member_id)   # also sets lifecycle GONE
        self.stats.purges += 1
        self._publish_state(record, previous=previous, reason=reason)
        self._publisher.publish(PURGE_MEMBER_TYPE, {
            "member": int(record.member_id), "name": record.name,
            "reason": reason,
        })

    # -- lifecycle reporting -------------------------------------------------

    def _set_lifecycle(self, record: MemberRecord, target: LifecycleState,
                       *, reason: str | None = None) -> None:
        previous = record.lifecycle
        if previous is target:
            return
        record.advance_lifecycle(target)
        self._publish_state(record, previous=previous, reason=reason)

    def _publish_state(self, record: MemberRecord, *,
                       previous: LifecycleState,
                       reason: str | None = None) -> None:
        attrs = {
            "member": int(record.member_id), "name": record.name,
            "state": record.lifecycle.value, "previous": previous.value,
            "capacity": record.capacity,
        }
        if reason is not None:
            attrs["reason"] = reason
        self._publisher.publish(MEMBER_STATE_TYPE, attrs)

    # -- queries ------------------------------------------------------------

    def member_names(self) -> list[str]:
        return [record.name for record in self.table.members()]

    def is_member(self, member_id: ServiceId) -> bool:
        return member_id in self.table

    def capacity_of(self, member_id: ServiceId) -> int:
        """Declared inbound capacity of a member (0 = undeclared/unknown)."""
        record = self.table.get(member_id)
        return record.capacity if record is not None else 0
