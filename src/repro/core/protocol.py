"""Opcodes the bus speaks inside reliable payloads.

The reliability layer (:mod:`repro.transport.reliability`) gives each hop
an ordered, acknowledged byte-message stream; this module defines what
those messages *are*.  Every payload starts with a one-byte opcode followed
by an opcode-specific body:

===============  =======================================================
opcode           body
===============  =======================================================
PUBLISH          encoded event (service → its proxy → bus)
SUBSCRIBE        encoded subscription (service → bus)
UNSUBSCRIBE      varint subscription id
DELIVER          encoded event (bus → subscriber, via its proxy)
DEVICE_DATA      raw device protocol bytes (simple sensor → its proxy)
DEVICE_CMD       raw device protocol bytes (proxy → simple device)
ADVERTISE        encoded filter describing what a publisher emits
QUENCH           1 byte: 1 = stop publishing (nobody subscribed), 0 = go
BATCH            length-prefixed list of framed payloads (batch pipeline)
===============  =======================================================

A BATCH payload amortises per-packet overhead: a publisher coalesces many
PUBLISH frames into one reliable payload, and a proxy flushes one DELIVER
batch per scheduling round instead of one packet per event.  Batches never
nest — a BATCH frame inside a BATCH body is malformed.
"""

from __future__ import annotations

import enum

from repro.errors import CodecError
from repro.transport import wire


class BusOp(enum.IntEnum):
    PUBLISH = 1
    SUBSCRIBE = 2
    UNSUBSCRIBE = 3
    DELIVER = 4
    DEVICE_DATA = 5
    DEVICE_CMD = 6
    ADVERTISE = 7
    QUENCH = 8
    BATCH = 9


def frame(op: BusOp, body: bytes = b"") -> bytes:
    """Prepend the opcode byte to a body."""
    return bytes((int(op),)) + body


def unframe(payload: bytes) -> tuple[BusOp, bytes]:
    """Split a payload into (opcode, body)."""
    if not payload:
        raise CodecError("empty bus payload")
    try:
        op = BusOp(payload[0])
    except ValueError:
        raise CodecError(f"unknown bus opcode: {payload[0]}") from None
    return op, payload[1:]


def frame_unsubscribe(sub_id: int) -> bytes:
    return frame(BusOp.UNSUBSCRIBE, wire.encode_varint(sub_id))


def parse_unsubscribe(body: bytes) -> int:
    sub_id, pos = wire.decode_varint(body)
    if pos != len(body):
        raise CodecError("trailing bytes after unsubscribe id")
    return sub_id


#: Soft cap on one batch payload.  Packets carry at most 64 KiB; the
#: simulated media fragment anything over their MTU, so a batch flush stays
#: comfortably under the hard packet limit while still amortising per-event
#: overhead across dozens of typical events.
BATCH_FLUSH_BYTES = 32 * 1024

#: Flush cap for hops whose reliable channel is pipelined (window > 1):
#: roughly three link MTUs, so a flush becomes several payloads that
#: stream concurrently in the window, and one lost fragment costs a
#: small retransmission instead of the whole flush.
STREAM_FLUSH_BYTES = 4 * 1024


def flush_limit(window: int) -> int:
    """Batch-flush byte cap appropriate for a hop with ``window``.

    A stop-and-wait hop (window <= 1) pays one round trip per reliable
    payload, so a flush must cram everything into one payload.  A
    pipelined hop streams many payloads per round trip, where smaller
    chunks bound fragmentation loss amplification and retransmit cost.
    """
    return BATCH_FLUSH_BYTES if window <= 1 else STREAM_FLUSH_BYTES


def frame_batch(frames: list[bytes]) -> bytes:
    """Wrap framed payloads into one BATCH payload."""
    return frame(BusOp.BATCH, wire.encode_frames(frames))


def parse_batch(body: bytes) -> list[bytes]:
    """Split a BATCH body back into its framed payloads."""
    frames, pos = wire.decode_frames(body)
    if pos != len(body):
        raise CodecError("trailing bytes after batch frames")
    return frames


def chunk_frames(frames: list[bytes],
                 max_bytes: int = BATCH_FLUSH_BYTES) -> list[bytes]:
    """Coalesce framed payloads into as few reliable payloads as possible.

    Returns a list of payloads ready for ``send_reliable``: runs of small
    frames are wrapped into BATCH payloads of at most ``max_bytes``; a
    single frame (or one larger than ``max_bytes`` by itself) is passed
    through unwrapped, so a batch of one is byte-identical to the
    per-event path.
    """
    payloads: list[bytes] = []
    pending: list[bytes] = []
    pending_size = 0

    def flush() -> None:
        nonlocal pending, pending_size
        if not pending:
            return
        if len(pending) == 1:
            payloads.append(pending[0])
        else:
            payloads.append(frame_batch(pending))
        pending = []
        pending_size = 0

    for framed in frames:
        if pending and pending_size + len(framed) > max_bytes:
            flush()
        pending.append(framed)
        pending_size += len(framed)
    flush()
    return payloads


def count_publications(payload: bytes) -> int:
    """Number of PUBLISH frames ``payload`` carries (0 for non-publish ops).

    Used for publication accounting on payloads that are dropped before
    they reach the bus (e.g. traffic from non-members): the bus counts
    every publication *attempt*, even rejected ones.
    """
    if not payload:
        return 0
    if payload[0] == BusOp.PUBLISH:
        return 1
    if payload[0] == BusOp.BATCH:
        try:
            frames = parse_batch(payload[1:])
        except CodecError:
            return 0
        return sum(1 for f in frames if f[:1] == bytes((BusOp.PUBLISH,)))
    return 0


def frame_quench(quench_on: bool) -> bytes:
    return frame(BusOp.QUENCH, b"\x01" if quench_on else b"\x00")


def parse_quench(body: bytes) -> bool:
    if len(body) != 1 or body[0] not in (0, 1):
        raise CodecError(f"bad quench body: {body!r}")
    return bool(body[0])
