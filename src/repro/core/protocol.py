"""Opcodes the bus speaks inside reliable payloads.

The reliability layer (:mod:`repro.transport.reliability`) gives each hop
an ordered, acknowledged byte-message stream; this module defines what
those messages *are*.  Every payload starts with a one-byte opcode followed
by an opcode-specific body:

===============  =======================================================
opcode           body
===============  =======================================================
PUBLISH          encoded event (service → its proxy → bus)
SUBSCRIBE        encoded subscription (service → bus)
UNSUBSCRIBE      varint subscription id
DELIVER          encoded event (bus → subscriber, via its proxy)
DEVICE_DATA      raw device protocol bytes (simple sensor → its proxy)
DEVICE_CMD       raw device protocol bytes (proxy → simple device)
ADVERTISE        encoded filter describing what a publisher emits
QUENCH           1 byte: 1 = stop publishing (nobody subscribed), 0 = go
===============  =======================================================
"""

from __future__ import annotations

import enum

from repro.errors import CodecError
from repro.transport import wire


class BusOp(enum.IntEnum):
    PUBLISH = 1
    SUBSCRIBE = 2
    UNSUBSCRIBE = 3
    DELIVER = 4
    DEVICE_DATA = 5
    DEVICE_CMD = 6
    ADVERTISE = 7
    QUENCH = 8


def frame(op: BusOp, body: bytes = b"") -> bytes:
    """Prepend the opcode byte to a body."""
    return bytes((int(op),)) + body


def unframe(payload: bytes) -> tuple[BusOp, bytes]:
    """Split a payload into (opcode, body)."""
    if not payload:
        raise CodecError("empty bus payload")
    try:
        op = BusOp(payload[0])
    except ValueError:
        raise CodecError(f"unknown bus opcode: {payload[0]}") from None
    return op, payload[1:]


def frame_unsubscribe(sub_id: int) -> bytes:
    return frame(BusOp.UNSUBSCRIBE, wire.encode_varint(sub_id))


def parse_unsubscribe(body: bytes) -> int:
    sub_id, pos = wire.decode_varint(body)
    if pos != len(body):
        raise CodecError("trailing bytes after unsubscribe id")
    return sub_id


def frame_quench(quench_on: bool) -> bytes:
    return frame(BusOp.QUENCH, b"\x01" if quench_on else b"\x00")


def parse_quench(body: bytes) -> bool:
    if len(body) != 1 or body[0] not in (0, 1):
        raise CodecError(f"bad quench body: {body!r}")
    return bool(body[0])
