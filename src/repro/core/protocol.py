"""Opcodes the bus speaks inside reliable payloads.

The reliability layer (:mod:`repro.transport.reliability`) gives each hop
an ordered, acknowledged byte-message stream; this module defines what
those messages *are*.  Every payload starts with a one-byte opcode followed
by an opcode-specific body:

===============  =======================================================
opcode           body
===============  =======================================================
PUBLISH          encoded event (service → its proxy → bus)
SUBSCRIBE        encoded subscription (service → bus)
UNSUBSCRIBE      varint subscription id
DELIVER          encoded event (bus → subscriber, via its proxy)
DEVICE_DATA      raw device protocol bytes (simple sensor → its proxy)
DEVICE_CMD       raw device protocol bytes (proxy → simple device)
ADVERTISE        encoded filter describing what a publisher emits
QUENCH           1 byte: 1 = stop publishing (nobody subscribed), 0 = go
BATCH            length-prefixed list of framed payloads (batch pipeline)
===============  =======================================================

A BATCH payload amortises per-packet overhead: a publisher coalesces many
PUBLISH frames into one reliable payload, and a proxy flushes one DELIVER
batch per scheduling round instead of one packet per event.  Batches never
nest — a BATCH frame inside a BATCH body is malformed.

Zero-copy framing: the ``*_parts`` builders return chunk lists instead of
joined bytes, so the encode → frame → batch stack copies nothing until
:func:`chunk_frames` joins each reliable payload exactly once.  The
``parse``/``count`` side accepts any buffer and slices ``memoryview``\\ s
instead of materialising per-frame copies.
"""

from __future__ import annotations

import enum

from typing import Sequence

from repro.errors import CodecError
from repro.transport import wire

from repro.core.events import Event, write_event


class BusOp(enum.IntEnum):
    PUBLISH = 1
    SUBSCRIBE = 2
    UNSUBSCRIBE = 3
    DELIVER = 4
    DEVICE_DATA = 5
    DEVICE_CMD = 6
    ADVERTISE = 7
    QUENCH = 8
    BATCH = 9


#: One-byte opcode chunks, pre-built so framing never allocates for them.
_OP_CHUNKS = {op: bytes((int(op),)) for op in BusOp}
#: Wire byte -> opcode, so unframe skips enum construction per payload.
_OP_FROM_BYTE = {int(op): op for op in BusOp}

#: A frame handed to :func:`chunk_frames`: either already-joined bytes or
#: a scatter-gather chunk list.
Frame = bytes | list[bytes]


def op_chunk(op: BusOp) -> bytes:
    """The interned one-byte wire chunk for ``op``."""
    return _OP_CHUNKS[op]


def frame(op: BusOp, body: bytes = b"") -> bytes:
    """Prepend the opcode byte to a body."""
    return _OP_CHUNKS[op] + body


def unframe(payload: wire.Buffer) -> tuple[BusOp, wire.Buffer]:
    """Split a payload into (opcode, body).

    The body is a slice of ``payload`` — zero-copy for ``memoryview``
    input, which is what the packet layer hands up.
    """
    if not len(payload):
        raise CodecError("empty bus payload")
    op = _OP_FROM_BYTE.get(payload[0])
    if op is None:
        raise CodecError(f"unknown bus opcode: {payload[0]}")
    return op, payload[1:]


def event_frame_parts(op: BusOp, event: Event) -> list[bytes]:
    """Chunk list for an event framed under ``op`` (PUBLISH/DELIVER)."""
    out = [_OP_CHUNKS[op]]
    write_event(out, event)
    return out


def publish_parts(event: Event) -> list[bytes]:
    """Chunk list for one PUBLISH frame (joined once per reliable payload)."""
    return event_frame_parts(BusOp.PUBLISH, event)


def deliver_parts(event: Event) -> list[bytes]:
    """Chunk list for one DELIVER frame (joined once per reliable payload)."""
    return event_frame_parts(BusOp.DELIVER, event)


def deliver_frame(event: Event) -> bytes:
    """The standard DELIVER framing used by service-style proxies."""
    return b"".join(deliver_parts(event))


def frame_unsubscribe(sub_id: int) -> bytes:
    return frame(BusOp.UNSUBSCRIBE, wire.encode_varint(sub_id))


def parse_unsubscribe(body: wire.Buffer) -> int:
    sub_id, pos = wire.decode_varint(body)
    if pos != len(body):
        raise CodecError("trailing bytes after unsubscribe id")
    return sub_id


#: Soft cap on one batch payload.  Packets carry at most 64 KiB; the
#: simulated media fragment anything over their MTU, so a batch flush stays
#: comfortably under the hard packet limit while still amortising per-event
#: overhead across dozens of typical events.
BATCH_FLUSH_BYTES = 32 * 1024

#: Flush cap for hops whose reliable channel is pipelined (window > 1):
#: roughly three link MTUs, so a flush becomes several payloads that
#: stream concurrently in the window, and one lost fragment costs a
#: small retransmission instead of the whole flush.
STREAM_FLUSH_BYTES = 4 * 1024


def flush_limit(window: int) -> int:
    """Batch-flush byte cap appropriate for a hop with ``window``.

    A stop-and-wait hop (window <= 1) pays one round trip per reliable
    payload, so a flush must cram everything into one payload.  A
    pipelined hop streams many payloads per round trip, where smaller
    chunks bound fragmentation loss amplification and retransmit cost.
    """
    return BATCH_FLUSH_BYTES if window <= 1 else STREAM_FLUSH_BYTES


def frame_batch(frames: Sequence[bytes]) -> bytes:
    """Wrap framed payloads into one BATCH payload."""
    return frame(BusOp.BATCH, wire.encode_frames(frames))


def parse_batch(body: wire.Buffer) -> list[wire.Buffer]:
    """Split a BATCH body back into its framed payloads.

    Frames are slices of ``body`` (zero-copy for ``memoryview`` input);
    copy any frame that must outlive the underlying buffer.
    """
    frames, pos = wire.decode_frames(body)
    if pos != len(body):
        raise CodecError("trailing bytes after batch frames")
    return frames


def _frame_chunks(framed: Frame) -> tuple[list[bytes] | tuple[bytes, ...], int]:
    """Normalise one frame to (chunks, wire size)."""
    if isinstance(framed, (bytes, bytearray, memoryview)):
        return (framed,), len(framed)
    return framed, sum(len(chunk) for chunk in framed)


def chunk_frames(frames: Sequence[Frame],
                 max_bytes: int = BATCH_FLUSH_BYTES) -> list[bytes]:
    """Coalesce framed payloads into as few reliable payloads as possible.

    Frames may be joined ``bytes`` or scatter-gather chunk lists
    (:func:`publish_parts` / :func:`deliver_parts`); either way each
    returned payload is joined exactly once, here, at the reliable-payload
    boundary — no per-layer concatenation.  Runs of small frames are
    wrapped into BATCH payloads of at most ``max_bytes``; a single frame
    (or one larger than ``max_bytes`` by itself) is passed through
    unwrapped, so a batch of one is byte-identical to the per-event path.
    A single pre-joined ``bytes`` frame passes through *unjoined* — the
    shared fan-out encoding is reused as-is.
    """
    payloads: list[bytes] = []
    pending: list[tuple[Sequence[bytes], int]] = []
    pending_size = 0

    def flush() -> None:
        nonlocal pending, pending_size
        if not pending:
            return
        if len(pending) == 1:
            chunks, _ = pending[0]
            if len(chunks) == 1 and isinstance(chunks[0], bytes):
                payloads.append(chunks[0])
            else:
                payloads.append(b"".join(chunks))
        else:
            if len(pending) > wire.MAX_FRAMES:
                raise CodecError(f"too many frames in batch: {len(pending)}")
            parts: list[bytes] = [_OP_CHUNKS[BusOp.BATCH],
                                  wire.encode_varint(len(pending))]
            for chunks, size in pending:
                parts.append(wire.encode_varint(size))
                parts.extend(chunks)
            payloads.append(b"".join(parts))
        pending = []
        pending_size = 0

    for framed in frames:
        chunks, size = _frame_chunks(framed)
        if pending and pending_size + size > max_bytes:
            flush()
        pending.append((chunks, size))
        pending_size += size
    flush()
    return payloads


def count_publications(payload: wire.Buffer) -> int:
    """Number of PUBLISH frames ``payload`` carries (0 for non-publish ops).

    Used for publication accounting on payloads that are dropped before
    they reach the bus (e.g. traffic from non-members): the bus counts
    every publication *attempt*, even rejected ones.  Counts opcodes from
    a single varint walk over the batch body — no frame is materialised
    or copied on this reject path.
    """
    if not len(payload):
        return 0
    if payload[0] == BusOp.PUBLISH:
        return 1
    if payload[0] != BusOp.BATCH:
        return 0
    end = len(payload)
    try:
        count, pos = wire.decode_varint(payload, 1)
    except CodecError:
        return 0
    if count > wire.MAX_FRAMES:
        return 0
    publications = 0
    for _ in range(count):
        try:
            length, pos = wire.decode_varint(payload, pos)
        except CodecError:
            return 0
        if pos + length > end:
            return 0                    # truncated frame: malformed batch
        if length and payload[pos] == BusOp.PUBLISH:
            publications += 1
        pos += length
    if pos != end:
        return 0                        # trailing bytes: malformed batch
    return publications


def frame_quench(quench_on: bool) -> bytes:
    return frame(BusOp.QUENCH, b"\x01" if quench_on else b"\x00")


def parse_quench(body: wire.Buffer) -> bool:
    if len(body) != 1 or body[0] not in (0, 1):
        raise CodecError(f"bad quench body: {bytes(body)!r}")
    return bool(body[0])
