"""Concrete proxy types.

The paper's design explicitly supports both ends of the spectrum: "we can
build complex proxies for simple sensors (capable of performing translation
between the device protocol and higher level event types) or simple proxies
for complex sensors (resembling a mere forwarding mechanism between the
services)".

* :class:`ServiceProxy` — the simple proxy: the member speaks the bus
  protocol natively (PUBLISH/SUBSCRIBE frames), so outbound events are
  forwarded as DELIVER frames untouched.
* :class:`SensorProxy` — the complex proxy: the member is a dumb sensor
  emitting raw protocol bytes; the proxy translates readings into typed
  events, registers subscriptions on the device's behalf, translates
  command events back into device bytes, and optionally forwards
  application-level acknowledgements to the device.
* :class:`ActuatorProxy` — a sensor-style proxy specialised for devices
  that primarily *receive* commands (drug pumps, alarms); refuses to
  translate readings and counts delivered commands.
"""

from __future__ import annotations

from repro.ids import ServiceId
from repro.matching.filters import Filter
from repro.transport.base import Address
from repro.transport.endpoint import PacketEndpoint

from repro.core import protocol
from repro.core.bus import EventBus
from repro.core.events import Event
from repro.core.proxy import DeviceTranslator, Proxy, deliver_frame
from repro.core.protocol import BusOp


class ServiceProxy(Proxy):
    """Forwarding proxy for members that speak the bus protocol natively."""

    # The DELIVER framing carries nothing member-specific, so the bus
    # encodes it once per dispatch and shares it across the fan-out.
    shared_outbound = True

    def encode_outbound(self, event: Event) -> bytes | None:
        return deliver_frame(event)


class SensorProxy(Proxy):
    """Translating proxy for a simple sensor device.

    ``forward_acks`` reproduces the paper's per-proxy design choice: "it is
    the design choice of the proxy as to whether it should forward this
    acknowledgement to the device itself (for example, a temperature sensor
    may periodically transmit data and not require any acknowledgement
    prior to the next reading)".  When True, each accepted reading is
    answered with a DEVICE_CMD acknowledgement frame from the translator.
    """

    def __init__(self, bus: EventBus, endpoint: PacketEndpoint,
                 member_id: ServiceId, member_name: str,
                 member_address: Address, translator: DeviceTranslator,
                 *, forward_acks: bool = False) -> None:
        self.translator = translator
        self.forward_acks = forward_acks
        super().__init__(bus, endpoint, member_id, member_name,
                         member_address, translator.device_type)

    def initial_subscriptions(self) -> list[list[Filter]]:
        filters = self.translator.command_filters()
        return [filters] if filters else []

    def encode_outbound(self, event: Event) -> bytes | None:
        command = self.translator.encode_command(event)
        if command is None:
            return None
        self.stats.commands_translated += 1
        return protocol.frame(BusOp.DEVICE_CMD, command)

    def on_device_data(self, data: bytes) -> None:
        """Translate one raw reading into a typed event and publish it.

        "Incoming data from devices are also sent to the proxy, to perform
        pre-processing of that data into fully fledged data objects before
        forwarding to other internal services."
        """
        decoded = self.translator.decode_reading(data, self.bus.scheduler.now())
        if decoded is None:
            self.stats.malformed_payloads += 1
            return
        event_type, attributes = decoded
        self.stats.readings_translated += 1
        self.publish_translated(event_type, attributes)
        if self.forward_acks:
            ack = getattr(self.translator, "encode_ack", None)
            if ack is not None:
                self.endpoint.send_raw(
                    self.member_address,
                    protocol.frame(BusOp.DEVICE_CMD, ack()))


class ActuatorProxy(SensorProxy):
    """Proxy for command-consuming devices (pumps, alarms, displays)."""

    def on_device_data(self, data: bytes) -> None:
        # Actuators report status rather than readings; translators may
        # still decode them (e.g. a pump confirming a dose), so reuse the
        # sensor path.
        super().on_device_data(data)
