"""The sharded event bus: partitioned matching, shared dispatch.

The ROADMAP's "sharded buses" step: once the transport is pipelined
(PR 2), the bus CPU — not the link — caps the event service, exactly as
the paper's Figure 4 found for its own testbed.  The matching side of
:meth:`~repro.core.bus.EventBus.publish_batch` is a pure function of the
subscription table and the event stream, so it can be partitioned; the
delivery side (watermarks, subscription ownership, proxies, quenching)
cannot, because exactly-once-per-component is a property of the whole
member, not of any table fragment.  This module splits the bus exactly
along that line:

* :class:`ShardedMatcher` — a composite
  :class:`~repro.matching.engine.MatchingEngine` that routes every filter
  to one of N inner engines by its attribute-name class
  (:func:`repro.matching.forwarding.name_class`) and merges the per-shard
  match-id sets.  A filter can only match events carrying all of its
  class's names, so each shard sees only the slice of every event it can
  act on (its *projection*);
* :class:`ShardedEventBus` — an :class:`~repro.core.bus.EventBus` built
  around a :class:`ShardedMatcher`.  The match phase fans out; the
  dispatch phase — and therefore the :class:`~repro.core.bus.BusStats`
  invariant and every delivery guarantee — is the single shared code
  path of the base class.

Why shard on one core at all?  Registration churn.  Every subscribe or
unsubscribe wholesale-invalidates the forwarding engine's satisfied-value
memo (the price of its simple invalidation rule), and ubiquitous-health
cells churn constantly — members join, roam and are purged.  Partitioning
the table confines each invalidation to the one shard the subscription's
class routes to, so the other shards stay warm: the shard-scaling gate in
``benchmarks/bench_matching.py`` measures ~2.1x batch throughput at 8
shards under steady churn.  The same split is what makes the next step —
running shards on separate cores or processes — a transport problem
rather than a semantics problem.

Static CRC routing has one failure mode: a *hot* name class.  A ward
where every alert rule constrains the same vitals attributes hashes the
whole table onto one shard, and the other shards idle while that shard
eats every churn invalidation.  :meth:`ShardedMatcher.split_class` is the
repair — the actuator the autonomic control plane's shard rebalancer
(:class:`repro.autonomic.controllers.ShardRebalancer`) drives: it
re-routes a class live by a *secondary value-bucket key*, spreading the
class's equality-constrained filters (and, crucially, the events they
match) across every shard by :func:`value_bucket` of the chosen
attribute's value.  Correctness is unchanged — a bucket-routed filter can
only match an event whose bucket value hashes to its shard, and the
projection routes events by exactly that hash.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.matching.engine import MatchingEngine, make_engine
from repro.matching.filters import Filter, Op, Subscription
from repro.matching.forwarding import name_class
from repro.matching.plan import InlineExecutor, MatchPlan, PlanExecutor
from repro.sim.hosts import CostMeter
from repro.sim.kernel import Scheduler
from repro.transport.wire import Value

from repro.core.bus import EventBus

#: One registration delta as emitted to an attached sink: ``("sub", shard,
#: epoch, Subscription fragment)`` or ``("unsub", shard, epoch, sub_id)``.
#: Executors replay these to replica tables in epoch order.
DeltaSink = Callable[[str, int, int, object], None]

#: Default shard count for a sharded bus.  Eight covers the class
#: diversity of realistic vitals workloads without leaving most shards
#: empty, and is the configuration the CI scaling gate pins.
DEFAULT_SHARDS = 8

EngineFactory = Callable[[], MatchingEngine]


def shard_index(names: Iterable[str], shard_count: int) -> int:
    """Deterministic shard for one attribute-name class.

    CRC-32 over the sorted, delimiter-joined names — stable across
    processes, platforms and runs (unlike the interpreter's salted
    ``hash``), so a subscription routes to the same shard on every node
    of a federation and in every replay of a seeded simulation.
    """
    if shard_count == 1:
        return 0
    key = "\x1f".join(sorted(names)).encode("utf-8")
    return zlib.crc32(key) % shard_count


def value_bucket(value: Value, shard_count: int) -> int:
    """Deterministic shard bucket for one attribute *value*.

    The secondary routing key of a split class.  Like :func:`shard_index`
    it is CRC-32-based so placement is identical across processes and
    replays.  The one invariant that matters for correctness: two values
    that can satisfy the same equality constraint must bucket together.
    Within the numeric kind ``1 == 1.0``, so integral floats canonicalise
    to their integer text; booleans are their own kind and never
    EQ-compare equal to numbers, strings or bytes, so cross-kind key
    collisions merely co-locate buckets (harmless).
    """
    if isinstance(value, bool):
        data = b"b1" if value else b"b0"
    elif isinstance(value, (int, float)):
        if isinstance(value, float) and not value.is_integer():
            data = b"n" + repr(value).encode("ascii")
        else:
            data = b"n" + str(int(value)).encode("ascii")
    elif isinstance(value, str):
        data = b"s" + value.encode("utf-8")
    else:
        data = b"y" + bytes(value)
    return zlib.crc32(data) % shard_count


def _eq_value(filt: Filter, name: str) -> Value | None:
    """The operand of ``filt``'s equality constraint on ``name``, if any.

    A filter with *two* different EQ operands on the same name can never
    match; returning the first keeps its routing deterministic and its
    (empty) match set correct on whichever shard it lands.
    """
    for constraint in filt:
        if constraint.name == name and constraint.op == Op.EQ:
            return constraint.value
    return None


@dataclass
class ClassSplit:
    """Live routing override for one hot name class.

    Filters of the class carrying an EQ constraint on ``bucket_name``
    route to :func:`value_bucket` of that operand; filters without one
    (range or string-shape constraints on the bucket attribute) fall back
    to the class's static CRC shard.  ``fragments`` counts bucket-routed
    fragments per shard so the projection skips shards holding none.
    """

    names: frozenset[str]
    bucket_name: str
    fragments: dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ClassStat:
    """Load/shape summary of one name class (rebalancer input)."""

    names: frozenset[str]
    fragments: int            # registered filter fragments in the class
    shard: int                # static CRC home shard
    split: bool               # already re-routed by a value bucket?
    #: name -> distinct EQ operands across the class's fragments; the
    #: rebalancer picks the most diverse name as the bucket key.
    eq_diversity: dict[str, int]


class ShardedMatcher(MatchingEngine):
    """Composite engine: N inner engines, one subscription table.

    Filters are routed by :func:`shard_index` of their name class; a
    subscription whose filters span classes registers a fragment in every
    shard it touches, and an event's match set is the union of the shard
    results — exactly the disjunction semantics of multi-filter
    subscriptions, so the union *is* the merge step.

    Empty filters (zero constraints, match everything) are kept at the
    composite level rather than in any shard: their subscriptions join
    every match set directly, which spares the shards a per-event
    always-set and keeps "hash empty classes consistently" trivially
    true.
    """

    def __init__(self, shard_count: int = DEFAULT_SHARDS,
                 engine: str | EngineFactory = "forwarding") -> None:
        super().__init__()
        if shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {shard_count}")
        if isinstance(engine, str):
            engine_name = engine
            factory: EngineFactory = lambda: make_engine(engine_name)
            #: Engine name a worker process can rebuild replicas from;
            #: None when built from an opaque factory (inline-only).
            self.engine_spec: str | None = engine_name
        else:
            factory = engine
            self.engine_spec = None
        self.shard_count = shard_count
        self._shards: tuple[MatchingEngine, ...] = tuple(
            factory() for _ in range(shard_count))
        self.name = f"sharded-{shard_count}x{self._shards[0].name}"
        # sub id -> shard indexes holding one of its filter fragments.
        self._routes: dict[int, tuple[int, ...]] = {}
        # attribute name -> {shard index: filters constraining it there}.
        # Covers statically-routed fragments only; bucket-routed fragments
        # are projected through their ClassSplit instead, so a split class
        # does not drag every event onto every bucket shard.
        self._name_shards: dict[str, dict[int, int]] = {}
        # sub ids with an empty (match-everything) filter.
        self._always_subs: set[int] = set()
        # Live secondary-key routing overrides: class -> ClassSplit.
        self._splits: dict[frozenset[str], ClassSplit] = {}
        # Per-class bookkeeping feeding ClassStat / the rebalancer.
        self._class_fragments: dict[frozenset[str], int] = {}
        self._class_members: dict[frozenset[str], dict[int, int]] = {}
        self._class_eq_values: dict[
            frozenset[str], dict[str, dict[Value, int]]] = {}
        #: Events projected onto each shard (match work), for load sensing.
        self.shard_event_counts: list[int] = [0] * shard_count
        #: Registration epoch: bumped on every per-shard table mutation.
        #: Plans stamp it; executors with replica tables sync to it.
        self.epoch = 0
        #: Attached executor consuming this matcher's plans (batch path).
        self._executor: PlanExecutor = InlineExecutor(self)
        #: Optional registration-delta listener (the worker pool's feed).
        self._delta_sink: DeltaSink | None = None

    def set_meter(self, meter: CostMeter) -> None:
        """Forward cost accounting to every shard that supports it.

        Work-proportional charges (e.g. the Siena backend's translation
        copies) must keep flowing to the simulated host under sharding,
        and each consulted shard pays its own per-invocation base cost —
        faithful for N engines run on one host, and identical to the
        single engine at ``shard_count=1``.  The composite itself charges
        nothing.
        """
        for shard in self._shards:
            set_shard_meter = getattr(shard, "set_meter", None)
            if set_shard_meter is not None:
                set_shard_meter(meter)

    # -- plan execution boundary ------------------------------------------

    @property
    def executor(self) -> PlanExecutor:
        return self._executor

    def set_executor(self, executor: PlanExecutor | None) -> None:
        """Install the executor the batch match phase runs plans on.

        ``None`` restores the default :class:`InlineExecutor`.  Host-side
        engines stay fully registered regardless of the executor, so the
        single-event path, introspection and the rebalancer's analysis
        are executor-agnostic — and any executor can fall back inline.
        """
        self._executor = executor if executor is not None \
            else InlineExecutor(self)

    def attach_delta_sink(self, sink: DeltaSink) -> None:
        """Feed every future registration delta to ``sink``.

        One sink at a time (the worker pool); the sink is called
        synchronously inside subscribe/unsubscribe/split, in epoch order.
        Catch up on the existing table with :meth:`shard_snapshot` first.
        """
        if self._delta_sink is not None:
            raise ConfigurationError("a delta sink is already attached")
        self._delta_sink = sink

    def detach_delta_sink(self, sink: DeltaSink) -> None:
        # == not `is`: bound methods are re-created on each access.
        if self._delta_sink == sink:
            self._delta_sink = None

    def shard_snapshot(self, shards: Iterable[int] | None = None
                       ) -> list[tuple[int, Subscription]]:
        """Current per-shard subscription fragments, for replica bootstrap.

        Returns ``(shard index, fragment)`` pairs in sub-id order,
        restricted to ``shards`` when given.  Routing is recomputed from
        the live split table, so the snapshot is exactly what replaying
        the whole delta history would have produced.
        """
        wanted = None if shards is None else set(shards)
        out: list[tuple[int, Subscription]] = []
        for sub_id in sorted(self._subscriptions):
            subscription = self._subscriptions[sub_id]
            per_shard, _routed, _always = self._group_filters(subscription)
            for sidx, filters in per_shard.items():
                if wanted is None or sidx in wanted:
                    out.append((sidx, Subscription(
                        sub_id, subscription.subscriber, filters)))
        return out

    # -- introspection ----------------------------------------------------

    def shard_engines(self) -> tuple[MatchingEngine, ...]:
        return self._shards

    def shard_loads(self) -> list[int]:
        """Registered subscription fragments per shard."""
        return [len(shard) for shard in self._shards]

    def shard_events(self) -> list[int]:
        """Events projected onto each shard so far (match work done)."""
        return list(self.shard_event_counts)

    def shard_of_filter(self, filt: Filter) -> int:
        """The shard a (non-empty) filter routes to (split-aware)."""
        return self._route_filter(name_class(filt), filt)[0]

    def splits(self) -> tuple[ClassSplit, ...]:
        """Active class splits, in deterministic (sorted-names) order."""
        return tuple(self._splits[key]
                     for key in sorted(self._splits, key=sorted))

    def class_stats(self) -> list[ClassStat]:
        """Per-class load summary, sorted by descending fragment count.

        This is the *analyze* input of the autonomic shard rebalancer: it
        names each class's static home shard, how many fragments it holds
        and how many distinct EQ operands each attribute offers as a
        candidate secondary bucket key.
        """
        stats = []
        for names, fragments in self._class_fragments.items():
            eq = self._class_eq_values.get(names, {})
            stats.append(ClassStat(
                names=names, fragments=fragments,
                shard=shard_index(names, self.shard_count),
                split=names in self._splits,
                eq_diversity={name: len(values)
                              for name, values in eq.items() if values}))
        stats.sort(key=lambda s: (-s.fragments, sorted(s.names)))
        return stats

    # -- registration ----------------------------------------------------

    def _route_filter(self, names: frozenset[str],
                      filt: Filter) -> tuple[int, bool]:
        """Route one fragment: (shard index, bucket-routed?).

        The single source of truth for the split-routing rule —
        ``_group_filters`` must route identically at index and deindex
        time, so the rule lives in exactly one place.
        """
        split = self._splits.get(names)
        if split is not None:
            value = _eq_value(filt, split.bucket_name)
            if value is not None:
                return value_bucket(value, self.shard_count), True
        return shard_index(names, self.shard_count), False

    def _group_filters(self, subscription: Subscription) -> tuple[
            dict[int, list[Filter]],
            list[tuple[Filter, frozenset[str], int, bool]], int]:
        """Route a subscription's filters: per-shard groups, the per-
        fragment routing decisions (for bookkeeping), and the count of
        empty (match-everything) filters.

        Must be deterministic in the current split table — ``_deindex``
        recomputes it to reverse the bookkeeping ``_index`` did, and
        :meth:`split_class` re-registers every affected subscription
        atomically so the table never changes between the two.
        """
        per_shard: dict[int, list[Filter]] = {}
        routed: list[tuple[Filter, frozenset[str], int, bool]] = []
        always = 0
        for filt in subscription.filters:
            names = name_class(filt)
            if not names:
                always += 1
                continue
            sidx, bucketed = self._route_filter(names, filt)
            per_shard.setdefault(sidx, []).append(filt)
            routed.append((filt, names, sidx, bucketed))
        return per_shard, routed, always

    def _index(self, subscription: Subscription) -> None:
        per_shard, routed, always = self._group_filters(subscription)
        for sidx, filters in per_shard.items():
            fragment = Subscription(subscription.sub_id,
                                    subscription.subscriber, filters)
            self._shards[sidx].subscribe(fragment)
            self.epoch += 1
            if self._delta_sink is not None:
                self._delta_sink("sub", sidx, self.epoch, fragment)
        for filt, names, sidx, bucketed in routed:
            self._track_fragment(subscription.sub_id, filt, names, sidx,
                                 bucketed, +1)
        if always:
            self._always_subs.add(subscription.sub_id)
        self._routes[subscription.sub_id] = tuple(per_shard)

    def _deindex(self, subscription: Subscription) -> None:
        for sidx in self._routes.pop(subscription.sub_id, ()):
            self._shards[sidx].unsubscribe(subscription.sub_id)
            self.epoch += 1
            if self._delta_sink is not None:
                self._delta_sink("unsub", sidx, self.epoch,
                                 subscription.sub_id)
        _per_shard, routed, always = self._group_filters(subscription)
        for filt, names, sidx, bucketed in routed:
            self._track_fragment(subscription.sub_id, filt, names, sidx,
                                 bucketed, -1)
        if always:
            self._always_subs.discard(subscription.sub_id)

    def _track_fragment(self, sub_id: int, filt: Filter,
                        names: frozenset[str], sidx: int, bucketed: bool,
                        delta: int) -> None:
        """Maintain routing refcounts and class statistics for one
        fragment (``delta`` +1 on index, -1 on deindex)."""
        if bucketed:
            fragments = self._splits[names].fragments
            count = fragments.get(sidx, 0) + delta
            if count:
                fragments[sidx] = count
            else:
                fragments.pop(sidx, None)
        else:
            for name in names:
                refs = self._name_shards.setdefault(name, {})
                refs[sidx] = refs.get(sidx, 0) + delta
                if not refs[sidx]:
                    del refs[sidx]
                    if not refs:
                        del self._name_shards[name]
        count = self._class_fragments.get(names, 0) + delta
        if count:
            self._class_fragments[names] = count
        else:
            self._class_fragments.pop(names, None)
        members = self._class_members.setdefault(names, {})
        count = members.get(sub_id, 0) + delta
        if count:
            members[sub_id] = count
        else:
            members.pop(sub_id, None)
            if not members:
                del self._class_members[names]
        eq = self._class_eq_values.setdefault(names, {})
        for constraint in filt:
            if constraint.op != Op.EQ:
                continue
            per_name = eq.setdefault(constraint.name, {})
            count = per_name.get(constraint.value, 0) + delta
            if count:
                per_name[constraint.value] = count
            else:
                del per_name[constraint.value]
                if not per_name:
                    del eq[constraint.name]
        if not eq:
            self._class_eq_values.pop(names, None)

    # -- rebalancing -------------------------------------------------------

    def split_class(self, names: Iterable[str], bucket_name: str) -> int:
        """Re-route a hot name class live by a secondary value-bucket key.

        Every registered filter of the class is re-registered under the
        new routing (equality-constrained fragments spread to
        :func:`value_bucket` of their ``bucket_name`` operand, the rest
        stay on the static shard), and every *future* registration of the
        class follows the same rule — the split is part of the table's
        knowledge, not a one-shot shuffle.  Returns the number of
        fragments now bucket-routed.  No event is matched differently:
        the projection routes events carrying ``bucket_name`` to the
        bucket shard their value hashes to, which is exactly where the
        only filters that could match them live.
        """
        key = frozenset(names)
        if self.shard_count < 2:
            raise ConfigurationError("cannot split a class on a single shard")
        if not key:
            raise ConfigurationError("cannot split the empty class")
        if bucket_name not in key:
            raise ConfigurationError(
                f"bucket name {bucket_name!r} is not in the class {sorted(key)}")
        if key in self._splits:
            raise ConfigurationError(
                f"class {sorted(key)} is already split")
        affected = [self._subscriptions[sub_id]
                    for sub_id in sorted(self._class_members.get(key, ()))]
        for subscription in affected:
            self._deindex(subscription)
        self._splits[key] = ClassSplit(names=key, bucket_name=bucket_name)
        for subscription in affected:
            self._index(subscription)
        return sum(self._splits[key].fragments.values())

    # -- matching ---------------------------------------------------------

    def _project(self, attributes: Mapping[str, Value]
                 ) -> dict[int, dict[str, Value]]:
        """Per-shard slices of one event: only the names a shard indexes.

        Correct because a shard's filters constrain nothing outside its
        indexed names — attributes it never sees cannot change its
        verdict — and it keeps the per-event cost of consulting N shards
        at one pass over the attributes instead of N.
        """
        name_shards = self._name_shards
        projections: dict[int, dict[str, Value]] = {}
        for name, value in attributes.items():
            shards = name_shards.get(name)
            if not shards:
                continue
            for sidx in shards:
                slice_ = projections.get(sidx)
                if slice_ is None:
                    projections[sidx] = slice_ = {}
                slice_[name] = value
        if self._splits:
            self._project_splits(attributes, projections)
        return projections

    def _project_splits(self, attributes: Mapping[str, Value],
                        projections: dict[int, dict[str, Value]]) -> None:
        """Value-bucket routing of one event for every split class.

        A bucket-routed filter requires an exact EQ match on its class's
        bucket attribute, so the only shard whose fragments could match
        this event is the one its own bucket value hashes to — the event
        is projected there alone, never onto every shard of the split
        class.  Events missing the bucket attribute cannot satisfy any
        bucket-routed fragment and are skipped (fallback fragments reach
        their static shard through ``_name_shards`` as usual).
        """
        for split in self._splits.values():
            if split.bucket_name not in attributes:
                continue
            sidx = value_bucket(attributes[split.bucket_name],
                                self.shard_count)
            if not split.fragments.get(sidx):
                continue
            slice_ = projections.get(sidx)
            if slice_ is None:
                projections[sidx] = slice_ = {}
            for name in split.names:
                if name in attributes:
                    slice_[name] = attributes[name]

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        matched = set(self._always_subs)
        counts = self.shard_event_counts
        for sidx, projected in self._project(attributes).items():
            counts[sidx] += 1
            ids = self._shards[sidx]._match_ids(projected)
            if ids:
                matched |= ids
        return matched

    def build_plans(self, batch: Sequence[Mapping[str, Value]]
                    ) -> list[MatchPlan]:
        """The pure half of the batch match: one plan per occupied shard.

        Projects every event onto the shards that index one of its names
        (split classes route by value bucket), stamps the current
        registration epoch, and charges ``shard_event_counts`` — plan
        construction is where match *work* is assigned, wherever it ends
        up executing.
        """
        epoch = self.epoch
        if self.shard_count == 1:
            # One shard sees everything: skip projection, hand the batch
            # through as-is so shards=1 matches the single bus's cost.
            if not len(self._shards[0]):
                return []
            self.shard_event_counts[0] += len(batch)
            return [MatchPlan(0, epoch, list(range(len(batch))),
                              list(batch))]
        per_shard_events: list[list[int]] = [[] for _ in self._shards]
        per_shard_batch: list[list[Mapping[str, Value]]] = [
            [] for _ in self._shards]
        for index, attributes in enumerate(batch):
            for sidx, projected in self._project(attributes).items():
                per_shard_events[sidx].append(index)
                per_shard_batch[sidx].append(projected)
        plans: list[MatchPlan] = []
        for sidx, shard_batch in enumerate(per_shard_batch):
            self.shard_event_counts[sidx] += len(shard_batch)
            if shard_batch:
                plans.append(MatchPlan(sidx, epoch, per_shard_events[sidx],
                                       shard_batch))
        return plans

    def merge_plan_results(self, batch_len: int, plans: Sequence[MatchPlan],
                           results: Sequence[Sequence[Iterable[int]]]
                           ) -> list[set[int]]:
        """Union executed plan results back into per-event match-id sets.

        The union *is* the disjunction semantics of multi-filter
        subscriptions; match-everything subscriptions (held at the
        composite, never shipped) join every set here on the host.
        """
        merged = [set(self._always_subs) for _ in range(batch_len)]
        for plan, per_event in zip(plans, results):
            for index, ids in zip(plan.indexes, per_event):
                if ids:
                    merged[index].update(ids)
        return merged

    def _match_ids_batch(self, batch: Sequence[Mapping[str, Value]]
                         ) -> list[set[int]]:
        plans = self.build_plans(batch)
        results = self._executor.execute(plans) if plans else []
        return self.merge_plan_results(len(batch), plans, results)


class ShardedEventBus(EventBus):
    """An :class:`EventBus` whose subscription table is sharded.

    Only the match phase of :meth:`~repro.core.bus.EventBus.publish_batch`
    differs from the single bus — it fans out through the composite
    engine and merges per-event id sets.  Everything observable
    (deliveries, ordering, :class:`~repro.core.bus.BusStats`, quenching,
    membership) runs through the base class's shared dispatch phase, which
    the shard differential suite pins event-for-event against a
    single-bus oracle.
    """

    def __init__(self, scheduler: Scheduler,
                 shard_count: int = DEFAULT_SHARDS,
                 engine: str | EngineFactory = "forwarding",
                 *, name: str = "event-bus") -> None:
        super().__init__(scheduler, ShardedMatcher(shard_count, engine),
                         name=name)

    @property
    def sharded(self) -> ShardedMatcher:
        return self.engine  # type: ignore[return-value]

    @property
    def shard_count(self) -> int:
        return self.sharded.shard_count

    def shard_loads(self) -> list[int]:
        """Subscription fragments per shard (observability/balance)."""
        return self.sharded.shard_loads()

    @property
    def executor(self) -> PlanExecutor:
        """The plan executor the match phase runs on (inline by default)."""
        return self.sharded.executor

    def set_executor(self, executor: PlanExecutor | None) -> None:
        """Route the match phase through ``executor`` (None = inline).

        The dispatch phase — watermarks, ownership, proxies, quench, the
        BusStats invariant — never leaves this bus object; only the
        pure match computation moves.
        """
        self.sharded.set_executor(executor)

    def split_class(self, names: Iterable[str], bucket_name: str) -> int:
        """Re-route a hot class by a value bucket; see
        :meth:`ShardedMatcher.split_class`."""
        return self.sharded.split_class(names, bucket_name)

    def __repr__(self) -> str:
        return (f"<ShardedEventBus {self.name} shards={self.shard_count} "
                f"members={len(self._proxies)} subs={len(self.engine)}>")
