"""The sharded event bus: partitioned matching, shared dispatch.

The ROADMAP's "sharded buses" step: once the transport is pipelined
(PR 2), the bus CPU — not the link — caps the event service, exactly as
the paper's Figure 4 found for its own testbed.  The matching side of
:meth:`~repro.core.bus.EventBus.publish_batch` is a pure function of the
subscription table and the event stream, so it can be partitioned; the
delivery side (watermarks, subscription ownership, proxies, quenching)
cannot, because exactly-once-per-component is a property of the whole
member, not of any table fragment.  This module splits the bus exactly
along that line:

* :class:`ShardedMatcher` — a composite
  :class:`~repro.matching.engine.MatchingEngine` that routes every filter
  to one of N inner engines by its attribute-name class
  (:func:`repro.matching.forwarding.name_class`) and merges the per-shard
  match-id sets.  A filter can only match events carrying all of its
  class's names, so each shard sees only the slice of every event it can
  act on (its *projection*);
* :class:`ShardedEventBus` — an :class:`~repro.core.bus.EventBus` built
  around a :class:`ShardedMatcher`.  The match phase fans out; the
  dispatch phase — and therefore the :class:`~repro.core.bus.BusStats`
  invariant and every delivery guarantee — is the single shared code
  path of the base class.

Why shard on one core at all?  Registration churn.  Every subscribe or
unsubscribe wholesale-invalidates the forwarding engine's satisfied-value
memo (the price of its simple invalidation rule), and ubiquitous-health
cells churn constantly — members join, roam and are purged.  Partitioning
the table confines each invalidation to the one shard the subscription's
class routes to, so the other shards stay warm: the shard-scaling gate in
``benchmarks/bench_matching.py`` measures ~2.1x batch throughput at 8
shards under steady churn.  The same split is what makes the next step —
running shards on separate cores or processes — a transport problem
rather than a semantics problem.
"""

from __future__ import annotations

import zlib
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.matching.engine import MatchingEngine, make_engine
from repro.matching.filters import Filter, Subscription
from repro.matching.forwarding import name_class
from repro.sim.hosts import CostMeter
from repro.sim.kernel import Scheduler
from repro.transport.wire import Value

from repro.core.bus import EventBus

#: Default shard count for a sharded bus.  Eight covers the class
#: diversity of realistic vitals workloads without leaving most shards
#: empty, and is the configuration the CI scaling gate pins.
DEFAULT_SHARDS = 8

EngineFactory = Callable[[], MatchingEngine]


def shard_index(names: Iterable[str], shard_count: int) -> int:
    """Deterministic shard for one attribute-name class.

    CRC-32 over the sorted, delimiter-joined names — stable across
    processes, platforms and runs (unlike the interpreter's salted
    ``hash``), so a subscription routes to the same shard on every node
    of a federation and in every replay of a seeded simulation.
    """
    if shard_count == 1:
        return 0
    key = "\x1f".join(sorted(names)).encode("utf-8")
    return zlib.crc32(key) % shard_count


class ShardedMatcher(MatchingEngine):
    """Composite engine: N inner engines, one subscription table.

    Filters are routed by :func:`shard_index` of their name class; a
    subscription whose filters span classes registers a fragment in every
    shard it touches, and an event's match set is the union of the shard
    results — exactly the disjunction semantics of multi-filter
    subscriptions, so the union *is* the merge step.

    Empty filters (zero constraints, match everything) are kept at the
    composite level rather than in any shard: their subscriptions join
    every match set directly, which spares the shards a per-event
    always-set and keeps "hash empty classes consistently" trivially
    true.
    """

    def __init__(self, shard_count: int = DEFAULT_SHARDS,
                 engine: str | EngineFactory = "forwarding") -> None:
        super().__init__()
        if shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {shard_count}")
        if isinstance(engine, str):
            engine_name = engine
            factory: EngineFactory = lambda: make_engine(engine_name)
        else:
            factory = engine
        self.shard_count = shard_count
        self._shards: tuple[MatchingEngine, ...] = tuple(
            factory() for _ in range(shard_count))
        self.name = f"sharded-{shard_count}x{self._shards[0].name}"
        # sub id -> shard indexes holding one of its filter fragments.
        self._routes: dict[int, tuple[int, ...]] = {}
        # attribute name -> {shard index: filters constraining it there}.
        self._name_shards: dict[str, dict[int, int]] = {}
        # sub ids with an empty (match-everything) filter.
        self._always_subs: set[int] = set()

    def set_meter(self, meter: CostMeter) -> None:
        """Forward cost accounting to every shard that supports it.

        Work-proportional charges (e.g. the Siena backend's translation
        copies) must keep flowing to the simulated host under sharding,
        and each consulted shard pays its own per-invocation base cost —
        faithful for N engines run on one host, and identical to the
        single engine at ``shard_count=1``.  The composite itself charges
        nothing.
        """
        for shard in self._shards:
            set_shard_meter = getattr(shard, "set_meter", None)
            if set_shard_meter is not None:
                set_shard_meter(meter)

    # -- introspection ----------------------------------------------------

    def shard_engines(self) -> tuple[MatchingEngine, ...]:
        return self._shards

    def shard_loads(self) -> list[int]:
        """Registered subscription fragments per shard."""
        return [len(shard) for shard in self._shards]

    def shard_of_filter(self, filt: Filter) -> int:
        """The shard a (non-empty) filter routes to."""
        return shard_index(name_class(filt), self.shard_count)

    # -- registration ----------------------------------------------------

    def _group_filters(self, subscription: Subscription
                       ) -> tuple[dict[int, list[Filter]], int]:
        per_shard: dict[int, list[Filter]] = {}
        always = 0
        for filt in subscription.filters:
            names = name_class(filt)
            if not names:
                always += 1
                continue
            per_shard.setdefault(
                shard_index(names, self.shard_count), []).append(filt)
        return per_shard, always

    def _index(self, subscription: Subscription) -> None:
        per_shard, always = self._group_filters(subscription)
        for sidx, filters in per_shard.items():
            self._shards[sidx].subscribe(
                Subscription(subscription.sub_id, subscription.subscriber,
                             filters))
            for filt in filters:
                for name in name_class(filt):
                    refs = self._name_shards.setdefault(name, {})
                    refs[sidx] = refs.get(sidx, 0) + 1
        if always:
            self._always_subs.add(subscription.sub_id)
        self._routes[subscription.sub_id] = tuple(per_shard)

    def _deindex(self, subscription: Subscription) -> None:
        for sidx in self._routes.pop(subscription.sub_id, ()):
            self._shards[sidx].unsubscribe(subscription.sub_id)
        per_shard, always = self._group_filters(subscription)
        for sidx, filters in per_shard.items():
            for filt in filters:
                for name in name_class(filt):
                    refs = self._name_shards[name]
                    refs[sidx] -= 1
                    if not refs[sidx]:
                        del refs[sidx]
                        if not refs:
                            del self._name_shards[name]
        if always:
            self._always_subs.discard(subscription.sub_id)

    # -- matching ---------------------------------------------------------

    def _project(self, attributes: Mapping[str, Value]
                 ) -> dict[int, dict[str, Value]]:
        """Per-shard slices of one event: only the names a shard indexes.

        Correct because a shard's filters constrain nothing outside its
        indexed names — attributes it never sees cannot change its
        verdict — and it keeps the per-event cost of consulting N shards
        at one pass over the attributes instead of N.
        """
        name_shards = self._name_shards
        projections: dict[int, dict[str, Value]] = {}
        for name, value in attributes.items():
            shards = name_shards.get(name)
            if not shards:
                continue
            for sidx in shards:
                slice_ = projections.get(sidx)
                if slice_ is None:
                    projections[sidx] = slice_ = {}
                slice_[name] = value
        return projections

    def _match_ids(self, attributes: Mapping[str, Value]) -> set[int]:
        matched = set(self._always_subs)
        for sidx, projected in self._project(attributes).items():
            ids = self._shards[sidx]._match_ids(projected)
            if ids:
                matched |= ids
        return matched

    def _match_ids_batch(self, batch: Sequence[Mapping[str, Value]]
                         ) -> list[set[int]]:
        merged = [set(self._always_subs) for _ in batch]
        if self.shard_count == 1:
            # One shard sees everything: skip projection, feed the batch
            # straight through so shards=1 matches the single bus's cost.
            shard = self._shards[0]
            if len(shard):
                for out, ids in zip(merged, shard._match_ids_batch(batch)):
                    if ids:
                        out |= ids
            return merged
        per_shard_events: list[list[int]] = [[] for _ in self._shards]
        per_shard_batch: list[list[Mapping[str, Value]]] = [
            [] for _ in self._shards]
        for index, attributes in enumerate(batch):
            for sidx, projected in self._project(attributes).items():
                per_shard_events[sidx].append(index)
                per_shard_batch[sidx].append(projected)
        for sidx, shard_batch in enumerate(per_shard_batch):
            if not shard_batch:
                continue
            shard_results = self._shards[sidx]._match_ids_batch(shard_batch)
            for index, ids in zip(per_shard_events[sidx], shard_results):
                if ids:
                    merged[index] |= ids
        return merged


class ShardedEventBus(EventBus):
    """An :class:`EventBus` whose subscription table is sharded.

    Only the match phase of :meth:`~repro.core.bus.EventBus.publish_batch`
    differs from the single bus — it fans out through the composite
    engine and merges per-event id sets.  Everything observable
    (deliveries, ordering, :class:`~repro.core.bus.BusStats`, quenching,
    membership) runs through the base class's shared dispatch phase, which
    the shard differential suite pins event-for-event against a
    single-bus oracle.
    """

    def __init__(self, scheduler: Scheduler,
                 shard_count: int = DEFAULT_SHARDS,
                 engine: str | EngineFactory = "forwarding",
                 *, name: str = "event-bus") -> None:
        super().__init__(scheduler, ShardedMatcher(shard_count, engine),
                         name=name)

    @property
    def sharded(self) -> ShardedMatcher:
        return self.engine  # type: ignore[return-value]

    @property
    def shard_count(self) -> int:
        return self.sharded.shard_count

    def shard_loads(self) -> list[int]:
        """Subscription fragments per shard (observability/balance)."""
        return self.sharded.shard_loads()

    def __repr__(self) -> str:
        return (f"<ShardedEventBus {self.name} shards={self.shard_count} "
                f"members={len(self._proxies)} subs={len(self.engine)}>")
