"""Client library for services that speak the bus protocol natively.

A :class:`BusClient` is what the paper calls a "complex sensor" or a full
service: it builds typed events itself, manages its own subscriptions, and
talks to the SMC core over the reliable channel (through a
:class:`~repro.core.proxies.ServiceProxy` on the bus side).

The client implements the subscriber half of the delivery semantics:

* a per-sender sequence watermark suppresses any duplicate the network
  could manufacture (exactly-once toward the application);
* delivered events are dispatched to every matching local callback, in
  arrival order (per-sender FIFO end to end);
* QUENCH advisories from the bus gate :meth:`publish`, implementing the
  publisher side of quenching.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import CodecError, SubscriptionNotFoundError, TransportError
from repro.ids import ServiceId
from repro.matching.filters import (
    Filter,
    Subscription,
    encode_filter,
    encode_subscription,
)
from repro.sim.hosts import INBOUND_COPIES, OUTBOUND_COPIES, CostMeter, NullCostMeter
from repro.sim.kernel import Scheduler
from repro.transport import wire
from repro.transport.base import Address
from repro.transport.endpoint import PacketEndpoint
from repro.transport.reliability import ChannelStats
from repro.transport.wire import Value

from repro.core import protocol
from repro.core.events import Event, decode_event
from repro.core.protocol import BusOp

EventCallback = Callable[[Event], None]
CommandCallback = Callable[[bytes], None]


@dataclass
class ClientStats:
    published: int = 0
    publishes_quenched: int = 0
    publishes_disconnected: int = 0
    delivered: int = 0
    duplicates_dropped: int = 0
    undispatched: int = 0
    malformed: int = 0
    batches_sent: int = 0
    batches_received: int = 0


class BusClient:
    """A remote service's handle on the SMC event bus."""

    def __init__(self, endpoint: PacketEndpoint, scheduler: Scheduler,
                 bus_address: Address | None,
                 meter: CostMeter | None = None) -> None:
        self.endpoint = endpoint
        self.scheduler = scheduler
        self.bus_address = bus_address
        self.meter = meter if meter is not None else NullCostMeter()
        self.stats = ClientStats()
        self.quenched = False
        #: Invoked with the new quench state whenever the bus changes it.
        self.on_quench_change: Callable[[bool], None] | None = None
        #: Invoked with raw DEVICE_CMD bytes (hybrid devices).
        self.on_command: CommandCallback | None = None
        #: Batch flush cap override in bytes; None derives the cap from
        #: the channel window as before.  This is the actuator the
        #: autonomic flush controller drives from measured loss and
        #: quench feedback.
        self.flush_limit: int | None = None

        self._next_seqno = itertools.count(1)
        self._next_sub_id = itertools.count(1)
        self._subscriptions: dict[int, tuple[tuple[Filter, ...], EventCallback]] = {}
        self._watermarks: dict[ServiceId, int] = {}
        endpoint.set_payload_handler(self._on_payload)

    @property
    def service_id(self) -> ServiceId:
        return self.endpoint.service_id

    # -- publishing ---------------------------------------------------------

    def publish(self, event_type: str,
                attributes: dict[str, Value] | None = None,
                *, ignore_quench: bool = False) -> Event | None:
        """Publish an event to the bus.

        Returns the stamped event, or None when suppressed by quenching
        (override with ``ignore_quench`` for must-send alarms).
        """
        if self.quenched and not ignore_quench:
            self.stats.publishes_quenched += 1
            return None
        if self.bus_address is None:
            self.stats.publishes_disconnected += 1
            return None
        event = Event(event_type, attributes or {}, self.service_id,
                      next(self._next_seqno), self.scheduler.now())
        # Scatter-gather encode: chunks are joined exactly once, here at
        # the reliable-payload boundary.
        payload = b"".join(protocol.publish_parts(event))
        self.meter.charge_copy(OUTBOUND_COPIES * len(payload))
        self.endpoint.send_reliable(self.bus_address, payload)
        self.stats.published += 1
        return event

    def publish_batch(self, items: Sequence[tuple[str, dict[str, Value] | None]],
                      *, ignore_quench: bool = False) -> list[Event]:
        """Publish a batch of ``(event_type, attributes)`` pairs.

        The whole batch is stamped with consecutive sequence numbers and
        coalesced into as few reliable payloads as possible (one BATCH
        frame per flush instead of one packet per event), which is the
        publisher half of the bus's batch pipeline.  Returns the stamped
        events; an empty list when quenched or disconnected.
        """
        if not items:
            return []
        if self.quenched and not ignore_quench:
            self.stats.publishes_quenched += len(items)
            return []
        if self.bus_address is None:
            self.stats.publishes_disconnected += len(items)
            return []
        now = self.scheduler.now()
        events = [Event(event_type, attributes or {}, self.service_id,
                        next(self._next_seqno), now)
                  for event_type, attributes in items]
        # Chunk lists, not joined frames: chunk_frames joins each reliable
        # payload exactly once at the boundary.
        frames = [protocol.publish_parts(event) for event in events]
        # Chunk to the hop's window: one big payload on a stop-and-wait
        # channel, streaming MTU-sized payloads on a pipelined one —
        # unless the autonomic flush controller has overridden the cap.
        limit = (self.flush_limit if self.flush_limit is not None
                 else protocol.flush_limit(self.endpoint.window))
        for payload in protocol.chunk_frames(frames, limit):
            self.meter.charge_copy(OUTBOUND_COPIES * len(payload))
            self.endpoint.send_reliable(self.bus_address, payload)
        self.stats.published += len(events)
        self.stats.batches_sent += 1
        return events

    def transport_stats(self) -> "ChannelStats | None":
        """Reliability-layer counters for the channel toward the bus core
        (retransmissions, fast retransmits, duplicates...), or None while
        disconnected or before any reliable traffic."""
        if self.bus_address is None:
            return None
        channel = self.endpoint.existing_channel(self.bus_address)
        return channel.stats if channel is not None else None

    def advertise(self, filt: Filter) -> None:
        """Declare what this service publishes (enables quenching)."""
        self._require_connected()
        self.endpoint.send_reliable(
            self.bus_address, protocol.frame(BusOp.ADVERTISE,
                                             encode_filter(filt)))

    # -- subscribing ----------------------------------------------------------

    def subscribe(self, filters: Filter | Iterable[Filter],
                  callback: EventCallback) -> int:
        """Register interest; returns a client-local subscription id."""
        if isinstance(filters, Filter):
            filters = [filters]
        self._require_connected()
        filter_tuple = tuple(filters)
        sub_id = next(self._next_sub_id)
        subscription = Subscription(sub_id, self.service_id, filter_tuple)
        self.endpoint.send_reliable(
            self.bus_address,
            protocol.frame(BusOp.SUBSCRIBE, encode_subscription(subscription)))
        self._subscriptions[sub_id] = (filter_tuple, callback)
        return sub_id

    def unsubscribe(self, sub_id: int) -> None:
        if sub_id not in self._subscriptions:
            raise SubscriptionNotFoundError(f"no subscription with id {sub_id}")
        del self._subscriptions[sub_id]
        if self.bus_address is not None:
            self.endpoint.send_reliable(self.bus_address,
                                        protocol.frame_unsubscribe(sub_id))

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def resubscribe_all(self) -> None:
        """Re-issue every live subscription (after a purge-and-rejoin)."""
        self._require_connected()
        for sub_id, (filter_tuple, _cb) in self._subscriptions.items():
            subscription = Subscription(sub_id, self.service_id, filter_tuple)
            self.endpoint.send_reliable(
                self.bus_address,
                protocol.frame(BusOp.SUBSCRIBE,
                               encode_subscription(subscription)))

    def _require_connected(self) -> None:
        if self.bus_address is None:
            raise TransportError("client is not connected to a cell")

    # -- inbound ------------------------------------------------------------

    def _on_payload(self, peer: ServiceId, payload: bytes) -> None:
        try:
            op, body = protocol.unframe(payload)
        except CodecError:
            self.stats.malformed += 1
            return
        if op == BusOp.DELIVER:
            self._on_deliver(body)
        elif op == BusOp.BATCH:
            try:
                frames = protocol.parse_batch(body)
            except CodecError:
                self.stats.malformed += 1
                return
            self.stats.batches_received += 1
            for framed in frames:
                if len(framed) and framed[0] == BusOp.BATCH:
                    self.stats.malformed += 1     # batches never nest
                    continue
                self._on_payload(peer, framed)
        elif op == BusOp.QUENCH:
            try:
                state = protocol.parse_quench(body)
            except CodecError:
                self.stats.malformed += 1
                return
            self._set_quenched(state)
        elif op == BusOp.DEVICE_CMD:
            if self.on_command is not None:
                # Command callbacks parse device byte-protocols and may
                # hold the bytes; the view must not escape.
                self.on_command(wire.as_bytes(body))
        else:
            self.stats.malformed += 1

    def _on_deliver(self, body: bytes) -> None:
        self.meter.charge_copy(INBOUND_COPIES * len(body))
        try:
            event, _ = decode_event(body)
        except CodecError:
            self.stats.malformed += 1
            return
        # Exactly-once toward the application: per-sender watermark.
        watermark = self._watermarks.get(event.sender, 0)
        if event.seqno <= watermark:
            self.stats.duplicates_dropped += 1
            return
        self._watermarks[event.sender] = event.seqno
        self.stats.delivered += 1

        view = event.attrs_view()
        dispatched = False
        for filters, callback in list(self._subscriptions.values()):
            if any(f.matches(view) for f in filters):
                dispatched = True
                callback(event)
        if not dispatched:
            # Raced with an unsubscribe, or the bus over-delivered.
            self.stats.undispatched += 1

    def _set_quenched(self, state: bool) -> None:
        if state != self.quenched:
            self.quenched = state
            if self.on_quench_change is not None:
                self.on_quench_change(state)
