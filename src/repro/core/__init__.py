"""The event bus core — the paper's primary contribution.

This package layers the SMC delivery semantics (Section II-C) over any
matching engine:

* :mod:`repro.core.events` — the event model and its wire codec;
* :mod:`repro.core.protocol` — opcodes the bus speaks inside reliable
  payloads (PUBLISH, SUBSCRIBE, DELIVER, DEVICE_DATA, ...);
* :mod:`repro.core.bus` — the bus itself: matching, per-subscriber FIFO
  dispatch, duplicate suppression, membership coupling;
* :mod:`repro.core.proxy` / :mod:`repro.core.proxies` — the proxy
  framework: every member service is represented by a proxy that owns its
  outbound queue, translates device data, and destroys itself (and the
  queue) on a Purge Member event;
* :mod:`repro.core.bootstrap` — creates the right proxy type when a New
  Member event arrives;
* :mod:`repro.core.client` — the library a full service uses to talk to
  the bus over the network;
* :mod:`repro.core.quench` — Elvin-style quenching (Section VI).
"""

from repro.core.bus import BusStats, EventBus
from repro.core.bootstrap import ProxyBootstrap
from repro.core.correlate import EventCorrelator
from repro.core.client import BusClient
from repro.core.events import (
    NEW_MEMBER_TYPE,
    PURGE_MEMBER_TYPE,
    Event,
    decode_event,
    encode_event,
    new_member_event,
    purge_member_event,
)
from repro.core.proxies import ActuatorProxy, SensorProxy, ServiceProxy
from repro.core.proxy import DeviceTranslator, Proxy
from repro.core.quench import QuenchController
from repro.core.sharding import ShardedEventBus, ShardedMatcher

__all__ = [
    "Event",
    "encode_event",
    "decode_event",
    "NEW_MEMBER_TYPE",
    "PURGE_MEMBER_TYPE",
    "new_member_event",
    "purge_member_event",
    "EventBus",
    "BusStats",
    "ShardedEventBus",
    "ShardedMatcher",
    "Proxy",
    "DeviceTranslator",
    "ServiceProxy",
    "SensorProxy",
    "ActuatorProxy",
    "ProxyBootstrap",
    "BusClient",
    "QuenchController",
    "EventCorrelator",
]
