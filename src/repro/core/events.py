"""The event model.

An :class:`Event` is an immutable, typed attribute map stamped with its
sender's 48-bit service id and a per-sender sequence number.  The sequence
number is what lets the bus and subscribers enforce the paper's semantics:
per-sender FIFO ordering and exactly-once-while-member delivery (duplicates
created by retransmission are recognised and suppressed by ``(sender,
seqno)``).

Event *types* are dotted names (``health.hr.alarm``); management event
types used by the SMC core live under the ``smc.`` prefix and are defined
here so every subsystem agrees on them.

The wire codec is explicit TLV (via :mod:`repro.transport.wire`) — events
cross the network as plain bytes, never as pickled objects.
"""

from __future__ import annotations

import struct

from types import MappingProxyType
from typing import Mapping

from repro.errors import BusError, CodecError
from repro.ids import ServiceId
from repro.matching.filters import TYPE_ATTR
from repro.transport import wire
from repro.transport.wire import Value

# -- management event types (the SMC vocabulary) ---------------------------

#: Discovery announces an admitted device (Section II-B).
NEW_MEMBER_TYPE = "smc.member.new"
#: Discovery declares a device gone; proxies self-destruct on this.
PURGE_MEMBER_TYPE = "smc.member.purge"
#: A member fell silent but is still masked (transient disconnection).
MEMBER_SILENT_TYPE = "smc.member.silent"
#: A silent member was heard from again before the purge timeout.
MEMBER_RECOVERED_TYPE = "smc.member.recovered"
#: Prefix for management command events the policy service emits.
COMMAND_TYPE_PREFIX = "smc.cmd."
#: Policy service lifecycle events.
POLICY_DEPLOYED_TYPE = "smc.policy.deployed"
POLICY_VIOLATION_TYPE = "smc.policy.violation"


class Event:
    """One immutable event.

    Attribute values are restricted to the wire-codec types (bool, int,
    float, str, bytes).  The reserved name ``type`` may not appear in the
    attribute map — the event type is exposed to content filters under that
    name automatically via :meth:`attrs_view`.
    """

    __slots__ = ("type", "attributes", "sender", "seqno", "timestamp",
                 "_view")

    def __init__(self, type: str, attributes: Mapping[str, Value],
                 sender: ServiceId, seqno: int, timestamp: float) -> None:
        if not type:
            raise BusError("event type must be non-empty")
        if seqno < 0:
            raise BusError(f"event seqno must be >= 0, got {seqno}")
        attrs = dict(attributes)
        if TYPE_ATTR in attrs:
            raise BusError(
                f"attribute name {TYPE_ATTR!r} is reserved for the event type")
        for name, value in attrs.items():
            if not name or not isinstance(name, str):
                raise BusError(f"bad attribute name: {name!r}")
            if not isinstance(value, (bool, int, float, str, bytes)):
                raise BusError(
                    f"attribute {name!r} has unsupported type "
                    f"{type_name(value)}")
        object.__setattr__(self, "type", type)
        object.__setattr__(self, "attributes", MappingProxyType(attrs))
        object.__setattr__(self, "sender", sender)
        object.__setattr__(self, "seqno", seqno)
        object.__setattr__(self, "timestamp", timestamp)
        object.__setattr__(self, "_view", None)

    def __setattr__(self, key: str, _value) -> None:
        raise AttributeError(f"Event is immutable (tried to set {key!r})")

    def attrs_view(self) -> Mapping[str, Value]:
        """Attributes plus the reserved ``type`` entry, for matching."""
        view = object.__getattribute__(self, "_view")
        if view is None:
            view = {TYPE_ATTR: self.type, **self.attributes}
            object.__setattr__(self, "_view", view)
        return view

    def key(self) -> tuple[ServiceId, int]:
        """The (sender, seqno) pair that identifies this event uniquely."""
        return (self.sender, self.seqno)

    def get(self, name: str, default: Value | None = None) -> Value | None:
        return self.attributes.get(name, default)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Event)
                and self.type == other.type
                and dict(self.attributes) == dict(other.attributes)
                and self.sender == other.sender
                and self.seqno == other.seqno)

    def __hash__(self) -> int:
        return hash((self.type, self.sender, self.seqno))

    def __repr__(self) -> str:
        return (f"<Event {self.type} from={self.sender} seq={self.seqno} "
                f"attrs={dict(self.attributes)!r}>")


def type_name(value) -> str:
    return type(value).__name__


# -- codec -------------------------------------------------------------------

def encode_event(event: Event) -> bytes:
    """Serialise an event for the wire."""
    return b"".join((
        wire.encode_str(event.type),
        event.sender.to_bytes48(),
        wire.encode_varint(event.seqno),
        struct.pack("!d", event.timestamp),
        wire.encode_attr_map(dict(event.attributes)),
    ))


def decode_event(buf: bytes, offset: int = 0) -> tuple[Event, int]:
    """Parse an event from wire bytes; returns (event, new offset)."""
    event_type, pos = wire.decode_str(buf, offset)
    if pos + 6 > len(buf):
        raise CodecError("truncated event: missing sender id")
    sender = ServiceId.from_bytes48(buf[pos:pos + 6])
    pos += 6
    seqno, pos = wire.decode_varint(buf, pos)
    if pos + 8 > len(buf):
        raise CodecError("truncated event: missing timestamp")
    (timestamp,) = struct.unpack_from("!d", buf, pos)
    pos += 8
    attributes, pos = wire.decode_attr_map(buf, pos)
    if TYPE_ATTR in attributes:
        raise CodecError(f"reserved attribute {TYPE_ATTR!r} on wire")
    return Event(event_type, attributes, sender, seqno, timestamp), pos


# -- management event factories --------------------------------------------

def new_member_event(sender: ServiceId, seqno: int, timestamp: float, *,
                     member: ServiceId, name: str, device_type: str,
                     address: str) -> Event:
    """Build the "New Member" event the discovery service publishes.

    Carries "enough information for the proxy-creation process to be able
    to generate the appropriate proxy type" (Section III-C).
    """
    return Event(NEW_MEMBER_TYPE,
                 {"member": int(member), "name": name,
                  "device_type": device_type, "address": address},
                 sender, seqno, timestamp)


def purge_member_event(sender: ServiceId, seqno: int, timestamp: float, *,
                       member: ServiceId, name: str, reason: str) -> Event:
    """Build the "Purge Member" event (departure, battery failure, timeout)."""
    return Event(PURGE_MEMBER_TYPE,
                 {"member": int(member), "name": name, "reason": reason},
                 sender, seqno, timestamp)
