"""The event model.

An :class:`Event` is an immutable, typed attribute map stamped with its
sender's 48-bit service id and a per-sender sequence number.  The sequence
number is what lets the bus and subscribers enforce the paper's semantics:
per-sender FIFO ordering and exactly-once-while-member delivery (duplicates
created by retransmission are recognised and suppressed by ``(sender,
seqno)``).

Event *types* are dotted names (``health.hr.alarm``); management event
types used by the SMC core live under the ``smc.`` prefix and are defined
here so every subsystem agrees on them.

The wire codec is explicit TLV (via :mod:`repro.transport.wire`) — events
cross the network as plain bytes, never as pickled objects.
"""

from __future__ import annotations

import struct

from types import MappingProxyType
from typing import Mapping

from repro.errors import BusError, CodecError
from repro.ids import ServiceId
from repro.matching.filters import TYPE_ATTR
from repro.transport import wire
from repro.transport.wire import Value

# -- management event types (the SMC vocabulary) ---------------------------

#: Discovery announces an admitted device (Section II-B).
NEW_MEMBER_TYPE = "smc.member.new"
#: Discovery declares a device gone; proxies self-destruct on this.
PURGE_MEMBER_TYPE = "smc.member.purge"
#: A member fell silent but is still masked (transient disconnection).
MEMBER_SILENT_TYPE = "smc.member.silent"
#: A silent member was heard from again before the purge timeout.
MEMBER_RECOVERED_TYPE = "smc.member.recovered"
#: A member re-announced (or heartbeated) from a new transport address:
#: it roamed.  Queued deliveries were migrated to the new address.
MEMBER_MOVED_TYPE = "smc.member.moved"
#: A member's health lifecycle changed (joining/healthy/degraded/draining/
#: gone) or it re-declared its capacity.  Attributes: ``member``, ``name``,
#: ``state``, ``previous``, ``capacity`` and optionally ``reason``.
MEMBER_STATE_TYPE = "smc.member.state"
#: Prefix for management command events the policy service emits.
COMMAND_TYPE_PREFIX = "smc.cmd."
#: Policy service lifecycle events.
POLICY_DEPLOYED_TYPE = "smc.policy.deployed"
POLICY_VIOLATION_TYPE = "smc.policy.violation"


class Event:
    """One immutable event.

    Attribute values are restricted to the wire-codec types (bool, int,
    float, str, bytes).  The reserved name ``type`` may not appear in the
    attribute map — the event type is exposed to content filters under that
    name automatically via :meth:`attrs_view`.
    """

    __slots__ = ("type", "attributes", "sender", "seqno", "timestamp",
                 "_view")

    def __init__(self, type: str, attributes: Mapping[str, Value],
                 sender: ServiceId, seqno: int, timestamp: float) -> None:
        if not type:
            raise BusError("event type must be non-empty")
        if seqno < 0:
            raise BusError(f"event seqno must be >= 0, got {seqno}")
        attrs = dict(attributes)
        if TYPE_ATTR in attrs:
            raise BusError(
                f"attribute name {TYPE_ATTR!r} is reserved for the event type")
        for name, value in attrs.items():
            if not name or not isinstance(name, str):
                raise BusError(f"bad attribute name: {name!r}")
            if not isinstance(value, (bool, int, float, str, bytes)):
                raise BusError(
                    f"attribute {name!r} has unsupported type "
                    f"{type_name(value)}")
        object.__setattr__(self, "type", type)
        object.__setattr__(self, "attributes", MappingProxyType(attrs))
        object.__setattr__(self, "sender", sender)
        object.__setattr__(self, "seqno", seqno)
        object.__setattr__(self, "timestamp", timestamp)
        object.__setattr__(self, "_view", None)

    def __setattr__(self, key: str, _value) -> None:
        raise AttributeError(f"Event is immutable (tried to set {key!r})")

    def attrs_view(self) -> Mapping[str, Value]:
        """Attributes plus the reserved ``type`` entry, for matching."""
        view = object.__getattribute__(self, "_view")
        if view is None:
            view = {TYPE_ATTR: self.type, **self.attributes}
            object.__setattr__(self, "_view", view)
        return view

    def key(self) -> tuple[ServiceId, int]:
        """The (sender, seqno) pair that identifies this event uniquely."""
        return (self.sender, self.seqno)

    def get(self, name: str, default: Value | None = None) -> Value | None:
        return self.attributes.get(name, default)

    def __eq__(self, other) -> bool:
        # Compare the mapping proxies directly (they delegate to the
        # underlying dicts) — the dedup and soak paths compare events at
        # volume, so no throwaway dicts per comparison.
        return (isinstance(other, Event)
                and self.type == other.type
                and self.sender == other.sender
                and self.seqno == other.seqno
                and self.attributes == other.attributes)

    def __hash__(self) -> int:
        return hash((self.type, self.sender, self.seqno))

    def __repr__(self) -> str:
        return (f"<Event {self.type} from={self.sender} seq={self.seqno} "
                f"attrs={dict(self.attributes)!r}>")


def type_name(value) -> str:
    return type(value).__name__


# -- codec -------------------------------------------------------------------

_TS_STRUCT = struct.Struct("!d")


def write_event(out: list[bytes], event: Event) -> None:
    """Append an event's wire chunks to ``out`` without joining.

    The scatter-gather half of the codec: framing and batching layers
    stack their own chunks around these and the whole payload is joined
    exactly once at the reliable-payload boundary.
    """
    wire.write_str(out, event.type)
    out.append(event.sender.to_bytes48())
    out.append(wire.encode_varint(event.seqno))
    out.append(_TS_STRUCT.pack(event.timestamp))
    wire.write_attr_map(out, event.attributes)


def encode_event(event: Event) -> bytes:
    """Serialise an event for the wire."""
    out: list[bytes] = []
    write_event(out, event)
    return b"".join(out)


def decode_event(buf: wire.Buffer, offset: int = 0) -> tuple[Event, int]:
    """Parse an event from any wire buffer; returns (event, new offset).

    Accepts ``bytes``, ``bytearray`` or a ``memoryview``.  A non-bytes
    buffer is materialised exactly once here — the event object is where
    decoded data becomes long-lived, and this is the single inbound
    socket-buffer -> runtime copy the cost model charges
    (``INBOUND_COPIES``).  The packet and batch-framing layers above
    stay zero-copy ``memoryview`` slices; flattening at this leaf is
    deliberate: CPython pays a fixed per-operation penalty for
    ``str``/``bytes`` construction from views that exceeds the one
    ``memcpy`` at event-payload sizes, so parsing runs over ``bytes``.
    The fixed fields are decoded inline (every event on every hop passes
    through here; the per-call overhead of the modular wire functions is
    measurable at event rates), with the one-byte-varint fast path that
    covers realistic type-name lengths and sequence numbers.
    """
    if type(buf) is not bytes:
        buf = bytes(buf)
    size = len(buf)
    # Event type (inlined wire.decode_str).
    if offset < size and buf[offset] < 0x80:
        length = buf[offset]
        pos = offset + 1
    else:
        length, pos = wire.decode_varint(buf, offset)
    end = pos + length
    if end > size:
        raise CodecError("truncated string")
    # Interned type names: a deployment speaks a small vocabulary of
    # event types, each repeated on every event — the cache skips the
    # UTF-8 decode and yields identity-equal strings, which the matching
    # tables then hash-compare on the fast path.
    raw_type = buf[pos:end]
    event_type = _TYPE_CACHE.get(raw_type)
    if event_type is None:
        try:
            event_type = str(raw_type, "utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8: {exc}") from exc
        if not event_type:
            raise CodecError("empty event type on wire")
        if len(_TYPE_CACHE) >= _TYPE_CACHE_MAX:
            _TYPE_CACHE.clear()
        _TYPE_CACHE[raw_type] = event_type
    pos = end
    # Sender id, interned: a cell sees the same few senders on every event.
    if pos + 6 > size:
        raise CodecError("truncated event: missing sender id")
    sender_key = int.from_bytes(buf[pos:pos + 6], "big")
    sender = _SENDER_CACHE.get(sender_key)
    if sender is None:
        sender = _wire_sender(sender_key)
    pos += 6
    # Sequence number (inlined wire.decode_varint fast path).
    if pos < size and buf[pos] < 0x80:
        seqno = buf[pos]
        pos += 1
    else:
        seqno, pos = wire.decode_varint(buf, pos)
    if pos + 8 > size:
        raise CodecError("truncated event: missing timestamp")
    (timestamp,) = _TS_STRUCT.unpack_from(buf, pos)
    pos += 8
    attributes, pos = wire.decode_attr_map(buf, pos)
    if TYPE_ATTR in attributes:
        raise CodecError(f"reserved attribute {TYPE_ATTR!r} on wire")
    # The wire layer already enforced every Event invariant (non-empty
    # type and names, codec value types, seqno >= 0 by varint), so build
    # the event directly instead of paying Event.__init__'s revalidation
    # — this is a large share of per-event decode cost on the hot path.
    event = object.__new__(Event)
    _set = object.__setattr__
    _set(event, "type", event_type)
    _set(event, "attributes", MappingProxyType(attributes))
    _set(event, "sender", sender)
    _set(event, "seqno", seqno)
    _set(event, "timestamp", timestamp)
    _set(event, "_view", None)
    return event, pos


#: Interned wire bytes -> event type string; bounded like the sender
#: cache so adversarial type churn cannot grow it without limit.
_TYPE_CACHE: dict[bytes, str] = {}
_TYPE_CACHE_MAX = 1024

#: Interned 48-bit value -> ServiceId.  ``ServiceId`` construction (int
#: subclass plus range validation) is measurable per event; bounded so a
#: sender flood cannot grow the cache without limit.
_SENDER_CACHE: dict[int, ServiceId] = {}
_SENDER_CACHE_MAX = 4096


def _wire_sender(sender_key: int) -> ServiceId:
    if len(_SENDER_CACHE) >= _SENDER_CACHE_MAX:
        _SENDER_CACHE.clear()
    sender = ServiceId(sender_key)     # 6 wire bytes: always within 48 bits
    _SENDER_CACHE[sender_key] = sender
    return sender


# -- management event factories --------------------------------------------

def new_member_event(sender: ServiceId, seqno: int, timestamp: float, *,
                     member: ServiceId, name: str, device_type: str,
                     address: str) -> Event:
    """Build the "New Member" event the discovery service publishes.

    Carries "enough information for the proxy-creation process to be able
    to generate the appropriate proxy type" (Section III-C).
    """
    return Event(NEW_MEMBER_TYPE,
                 {"member": int(member), "name": name,
                  "device_type": device_type, "address": address},
                 sender, seqno, timestamp)


def purge_member_event(sender: ServiceId, seqno: int, timestamp: float, *,
                       member: ServiceId, name: str, reason: str) -> Event:
    """Build the "Purge Member" event (departure, battery failure, timeout)."""
    return Event(PURGE_MEMBER_TYPE,
                 {"member": int(member), "name": name, "reason": reason},
                 sender, seqno, timestamp)
