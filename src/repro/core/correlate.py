"""Event correlation over the bus.

Management systems "perform control actions as a result of receiving
events" (Section II), but raw sensor events are noisy: one tachycardia
reading is an artefact, five in a minute are an episode.  The paper's
introduction points at exactly this — "analysis and data mining of the
monitored information can be used to predict potential problems ... and to
generate a warning".

:class:`EventCorrelator` is a small, window-based correlation service that
runs beside the policy engine and turns raw event streams into higher-level
*composite events* that policies can react to:

* **count rule** — N matching events within a sliding window of T seconds;
* **threshold-trend rule** — a numeric attribute's windowed mean crosses a
  level (rising or falling);
* **absence rule** — no matching event for T seconds (a watchdog; fires
  repeatedly while the silence persists).

Composite events are ordinary bus events (type chosen per rule, default
under ``smc.correlated.``), so everything downstream — policies, proxies,
federation — works on them unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.bus import EventBus
from repro.core.events import Event
from repro.errors import ConfigurationError
from repro.matching.filters import Filter
from repro.sim.kernel import Scheduler

#: Default type prefix for composite events.
CORRELATED_PREFIX = "smc.correlated."


@dataclass
class CorrelatorStats:
    events_observed: int = 0
    composites_published: int = 0
    rules_active: int = 0


class _Rule:
    """Base bookkeeping shared by all rule kinds."""

    def __init__(self, name: str, emit_type: str) -> None:
        self.name = name
        self.emit_type = emit_type
        self.fired = 0


class _CountRule(_Rule):
    def __init__(self, name: str, emit_type: str, count: int,
                 window_s: float, cooldown_s: float) -> None:
        super().__init__(name, emit_type)
        if count < 2:
            raise ConfigurationError("count rule needs count >= 2")
        if window_s <= 0:
            raise ConfigurationError("count rule needs window_s > 0")
        self.count = count
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.moments: deque[float] = deque()
        self.last_fired_at: float | None = None

    def observe(self, now: float) -> bool:
        self.moments.append(now)
        cutoff = now - self.window_s
        while self.moments and self.moments[0] < cutoff:
            self.moments.popleft()
        if len(self.moments) < self.count:
            return False
        if (self.last_fired_at is not None
                and now - self.last_fired_at < self.cooldown_s):
            return False
        self.last_fired_at = now
        return True


class _TrendRule(_Rule):
    def __init__(self, name: str, emit_type: str, attribute: str,
                 level: float, window_s: float, rising: bool,
                 min_samples: int) -> None:
        super().__init__(name, emit_type)
        if window_s <= 0:
            raise ConfigurationError("trend rule needs window_s > 0")
        if min_samples < 1:
            raise ConfigurationError("trend rule needs min_samples >= 1")
        self.attribute = attribute
        self.level = level
        self.window_s = window_s
        self.rising = rising
        self.min_samples = min_samples
        self.samples: deque[tuple[float, float]] = deque()
        self.above = False      # current state, for edge-triggered firing

    def observe(self, now: float, value: float) -> tuple[bool, float]:
        self.samples.append((now, value))
        cutoff = now - self.window_s
        while self.samples and self.samples[0][0] < cutoff:
            self.samples.popleft()
        if len(self.samples) < self.min_samples:
            return False, 0.0
        mean = sum(v for _, v in self.samples) / len(self.samples)
        crossed = mean > self.level if self.rising else mean < self.level
        fire = crossed and not self.above
        self.above = crossed
        return fire, mean


class _AbsenceRule(_Rule):
    def __init__(self, name: str, emit_type: str, timeout_s: float) -> None:
        super().__init__(name, emit_type)
        if timeout_s <= 0:
            raise ConfigurationError("absence rule needs timeout_s > 0")
        self.timeout_s = timeout_s
        self.last_seen: float | None = None
        self.timer = None


class EventCorrelator:
    """Turns raw event streams into composite events via window rules."""

    def __init__(self, bus: EventBus, scheduler: Scheduler,
                 *, publisher_name: str = "correlator") -> None:
        self.bus = bus
        self.scheduler = scheduler
        self.stats = CorrelatorStats()
        self._publisher = bus.local_publisher(publisher_name)
        self._subscriptions: dict[str, int] = {}
        self._rules: dict[str, _Rule] = {}

    # -- rule registration ---------------------------------------------------

    def add_count_rule(self, name: str, filt: Filter, *, count: int,
                       window_s: float, emit_type: str | None = None,
                       cooldown_s: float | None = None) -> None:
        """Fire when ``count`` matching events arrive within ``window_s``.

        ``cooldown_s`` (default: the window) suppresses refiring while the
        burst continues.
        """
        rule = _CountRule(name, emit_type or CORRELATED_PREFIX + name,
                          count, window_s,
                          window_s if cooldown_s is None else cooldown_s)
        self._register(rule, filt, self._on_count_event)

    def add_trend_rule(self, name: str, filt: Filter, *, attribute: str,
                       level: float, window_s: float, rising: bool = True,
                       min_samples: int = 3,
                       emit_type: str | None = None) -> None:
        """Fire when the windowed mean of ``attribute`` crosses ``level``.

        Edge-triggered: fires once per crossing, re-arms when the mean
        returns to the other side.
        """
        rule = _TrendRule(name, emit_type or CORRELATED_PREFIX + name,
                          attribute, level, window_s, rising, min_samples)
        self._register(rule, filt, self._on_trend_event)

    def add_absence_rule(self, name: str, filt: Filter, *,
                         timeout_s: float,
                         emit_type: str | None = None) -> None:
        """Fire when no matching event arrives for ``timeout_s`` seconds.

        Keeps firing every ``timeout_s`` while the silence lasts — an
        absence is a condition, not an edge.
        """
        rule = _AbsenceRule(name, emit_type or CORRELATED_PREFIX + name,
                            timeout_s)
        self._register(rule, filt, self._on_presence_event)
        rule.last_seen = self.scheduler.now()
        rule.timer = self.scheduler.call_later(timeout_s,
                                               self._absence_check, rule)

    def remove_rule(self, name: str) -> None:
        rule = self._rules.pop(name, None)
        if rule is None:
            raise ConfigurationError(f"no correlation rule named {name!r}")
        self.bus.unsubscribe_local(self._subscriptions.pop(name))
        timer = getattr(rule, "timer", None)
        if timer is not None:
            timer.cancel()
        self.stats.rules_active = len(self._rules)

    def rules(self) -> list[str]:
        return sorted(self._rules)

    def _register(self, rule: _Rule, filt: Filter, handler) -> None:
        if rule.name in self._rules:
            raise ConfigurationError(
                f"correlation rule {rule.name!r} already exists")
        self._rules[rule.name] = rule
        self._subscriptions[rule.name] = self.bus.subscribe_local(
            filt, lambda event, r=rule: handler(r, event))
        self.stats.rules_active = len(self._rules)

    # -- event handlers ----------------------------------------------------

    def _on_count_event(self, rule: _CountRule, event: Event) -> None:
        self.stats.events_observed += 1
        if rule.observe(self.scheduler.now()):
            self._emit(rule, {
                "rule": rule.name,
                "count": len(rule.moments),
                "window_s": rule.window_s,
                "last_type": event.type,
            })

    def _on_trend_event(self, rule: _TrendRule, event: Event) -> None:
        self.stats.events_observed += 1
        value = event.get(rule.attribute)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        fired, mean = rule.observe(self.scheduler.now(), float(value))
        if fired:
            self._emit(rule, {
                "rule": rule.name,
                "attribute": rule.attribute,
                "mean": round(mean, 6),
                "level": rule.level,
                "direction": "rising" if rule.rising else "falling",
            })

    def _on_presence_event(self, rule: _AbsenceRule, event: Event) -> None:
        self.stats.events_observed += 1
        rule.last_seen = self.scheduler.now()

    def _absence_check(self, rule: _AbsenceRule) -> None:
        if rule.name not in self._rules:
            return
        now = self.scheduler.now()
        silence = now - (rule.last_seen if rule.last_seen is not None else 0.0)
        if silence >= rule.timeout_s:
            self._emit(rule, {
                "rule": rule.name,
                "silent_for_s": round(silence, 6),
            })
            rule.last_seen = now      # re-arm the next firing interval
        next_deadline = rule.timeout_s - min(silence, rule.timeout_s)
        rule.timer = self.scheduler.call_later(
            max(next_deadline, rule.timeout_s / 4), self._absence_check, rule)

    def _emit(self, rule: _Rule, attributes: dict) -> None:
        rule.fired += 1
        self.stats.composites_published += 1
        self._publisher.publish(rule.emit_type, attributes)
