"""Elvin-style quenching (paper Section VI).

"It is possible that we would see power-saving benefits from quenching
techniques such as those demonstrated in the Elvin publish/subscribe
system."  Quenching tells a publisher to stop generating events nobody is
subscribed to — on a battery-powered body sensor, every suppressed radio
transmission is battery life.

Publishers declare what they emit with an *advertisement* filter.  The
controller compares each advertisement against the live subscription set
using the conservative overlap relation from
:mod:`repro.matching.covering`: a publisher is quenched only when *no*
subscription could possibly match anything it advertises (false "overlap"
positives keep publishers running — safe), and is woken the moment an
overlapping subscription appears.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import ServiceId
from repro.matching.covering import filters_overlap
from repro.matching.filters import Filter

from repro.core.bus import EventBus


@dataclass
class QuenchStats:
    advertisements: int = 0
    quench_messages_sent: int = 0
    wake_messages_sent: int = 0
    currently_quenched: int = 0


class QuenchController:
    """Tracks advertisements and pushes quench/wake advisories to members."""

    def __init__(self, bus: EventBus) -> None:
        self.bus = bus
        self.stats = QuenchStats()
        self._advertisements: dict[ServiceId, Filter] = {}
        self._quenched: dict[ServiceId, bool] = {}
        bus.attach_quench(self)

    # -- advertisement lifecycle ------------------------------------------

    def register_advertisement(self, member: ServiceId, filt: Filter) -> None:
        """Record (or replace) what ``member`` publishes; re-evaluate it."""
        self._advertisements[member] = filt
        self.stats.advertisements += 1
        self._evaluate(member)

    def withdraw_advertisement(self, member: ServiceId) -> None:
        """Remove ``member``'s advertisement, waking it if it was quenched.

        Without an advertisement on record the controller can no longer
        justify muting the publisher, and nothing else will: a withdrawn
        member is skipped by every subsequent re-evaluation, so a member
        that re-advertises (a proxy re-registering, a device switching
        streams) would otherwise stay muted forever while
        ``currently_quenched`` reported nobody quenched.  A member that is
        already purged has no proxy to send through — it starts its next
        membership session unquenched anyway.
        """
        self._advertisements.pop(member, None)
        was_quenched = self._quenched.pop(member, False)
        if was_quenched and self.bus.is_member(member):
            self.bus.proxy_of(member).send_quench(False)
            self.stats.wake_messages_sent += 1
        self._recount()

    # -- subscription-change hook (called by the bus) ----------------------

    def on_subscriptions_changed(self) -> None:
        for member in list(self._advertisements):
            self._evaluate(member)

    def is_quenched(self, member: ServiceId) -> bool:
        return self._quenched.get(member, False)

    # -- internals ---------------------------------------------------------

    def _evaluate(self, member: ServiceId) -> None:
        if not self.bus.is_member(member):
            self.withdraw_advertisement(member)
            return
        advertisement = self._advertisements[member]
        interested = self._anyone_interested(advertisement)
        should_quench = not interested
        if self._quenched.get(member, False) == should_quench:
            return
        self._quenched[member] = should_quench
        self.bus.proxy_of(member).send_quench(should_quench)
        if should_quench:
            self.stats.quench_messages_sent += 1
        else:
            self.stats.wake_messages_sent += 1
        self._recount()

    def _anyone_interested(self, advertisement: Filter) -> bool:
        for subscription in self.bus.all_subscriptions():
            for filt in subscription.filters:
                if filters_overlap(advertisement, filt):
                    return True
        return False

    def _recount(self) -> None:
        self.stats.currently_quenched = sum(
            1 for quenched in self._quenched.values() if quenched)
