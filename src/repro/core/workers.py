"""Multi-core match execution: a process pool behind the plan boundary.

Architecture note — how the match phase escapes the GIL
=======================================================

PR 3 split :meth:`~repro.core.bus.EventBus.publish_batch` into a *pure*
match phase and a stateful dispatch phase; PR 5 made every value crossing
the shard boundary cheap to serialise; the plan refactor
(:mod:`repro.matching.plan`) turned the match phase's input into an
explicit value.  This module supplies the executor that makes all of that
pay: a :class:`WorkerPoolExecutor` runs each :class:`~repro.matching.plan.
MatchPlan` on one of N **worker processes**, so a cell's matching runs on
as many cores as the hardware offers while the dispatch phase — and every
delivery guarantee — stays on the core host.

The division of state:

* **host** — the full :class:`~repro.core.sharding.ShardedMatcher` stays
  completely registered (single-event path, introspection, the autonomic
  rebalancer's analysis, and the inline fallback all need it);
* **worker w** — replica engines for the shards it *owns* (``shard %
  workers == w``), built from the matcher's named engine spec and kept
  current by **registration deltas replayed in epoch order**: every
  subscribe/unsubscribe/split on the host emits a per-shard delta into
  the pool's per-worker pending queues, and each queue is flushed ahead
  of that worker's next plans on the same FIFO pipe — a worker therefore
  always matches against the exact table version its plans were stamped
  with (``plan.epoch``), and a stale replica is a protocol error, not a
  silent wrong answer.

Load levelling is the autonomic plane's existing actuator: a hot name
class pins one shard and therefore one worker; the rebalancer's
:meth:`~repro.core.sharding.ShardedMatcher.split_class` spreads the class
(and its events) across shards *and therefore across workers* — the
deltas it generates re-route the worker replicas live, mid-stream.

Fork-safety: workers are started with the ``spawn`` method by default, so
they inherit **no** descriptors — not the cell's UDP sockets, not the
healthz listener, no registered pollables — and a worker crash cannot
disturb the parent's selector loop.  (Transport/healthz sockets are also
explicitly non-inheritable, belt and braces.)  Crashes are absorbed: a
dead worker's plans fall back to the host's inline engines for that round
(results stay exact), and the worker is respawned and resynchronised from
a fresh table snapshot.

Everything crosses the pipe as TLV wire bytes — plans via
:func:`~repro.matching.plan.write_plan`, subscription fragments via the
stock filter codec — never as pickled objects, the same rule the network
path follows.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

from repro.errors import ConfigurationError, ReproError
from repro.matching.engine import MatchingEngine, make_engine
from repro.matching.filters import decode_subscription, encode_subscription
from repro.matching.plan import decode_plan, write_plan
from repro.transport import wire

#: Default worker start method.  ``spawn`` inherits no fds and no mutable
#: parent state — the only fork-safe choice next to live sockets and a
#: selector loop.  ``fork`` is accepted for latency-sensitive tests.
DEFAULT_START_METHOD = "spawn"

#: How long the host waits for one worker reply before declaring the
#: worker wedged, killing it and falling back inline for the round.
DEFAULT_RECV_TIMEOUT_S = 30.0


class WorkerError(ReproError):
    """A worker replied with a protocol error (stale epoch, bad frame)."""


# -- pipe protocol -----------------------------------------------------------
#
# parent -> worker messages (one send_bytes each):
#   WORK  := 0x01, varint host_epoch, varint n_deltas, n x delta,
#            varint n_plans, n x plan
#   RESET := 0x02, varint base_epoch, varint n_deltas, n x delta
#   STOP  := 0x03
# worker -> parent:
#   RESULTS := 0x01, varint n_plans,
#              per plan: varint n_events, per event: varint k, k x varint id
#   FAIL    := 0x02, varint len, utf-8 reason
#
# delta := kind (0x01 sub / 0x02 unsub), varint epoch, varint shard,
#          sub:   varint len, encoded Subscription fragment
#          unsub: varint sub_id
#
# A WORK message's deltas precede its plans on the same FIFO pipe, so a
# worker's replica table is always at the plans' epoch before matching.
# The host epoch is global across shards while a worker sees only its own
# shards' deltas, so WORK carries ``host_epoch`` explicitly: the sender
# guarantees every delta this worker's shards need up to that epoch is in
# (or ahead of) this message, and the worker advances to it after replay.
# A plan stamped beyond the advanced epoch is then a true protocol error.
# Replies are sent only for WORK messages that carry plans.

_MSG_WORK = b"\x01"
_MSG_RESET = b"\x02"
_MSG_STOP = b"\x03"
_REPLY_RESULTS = 1
_REPLY_FAIL = 2
_DELTA_SUB = b"\x01"
_DELTA_UNSUB = b"\x02"


def _encode_delta(kind: str, shard: int, epoch: int, payload) -> bytes:
    parts: list[bytes]
    if kind == "sub":
        body = encode_subscription(payload)
        parts = [_DELTA_SUB, wire.encode_varint(epoch),
                 wire.encode_varint(shard),
                 wire.encode_varint(len(body)), body]
    else:
        parts = [_DELTA_UNSUB, wire.encode_varint(epoch),
                 wire.encode_varint(shard), wire.encode_varint(payload)]
    return b"".join(parts)


def _apply_delta(buf: bytes, pos: int, engines: dict[int, MatchingEngine],
                 engine_name: str) -> tuple[int, int]:
    """Apply one delta at ``pos``; returns (epoch, new pos)."""
    kind = buf[pos]
    epoch, pos = wire.decode_varint(buf, pos + 1)
    shard, pos = wire.decode_varint(buf, pos)
    if kind == _DELTA_SUB[0]:
        length, pos = wire.decode_varint(buf, pos)
        fragment, end = decode_subscription(buf[pos:pos + length])
        engine = engines.get(shard)
        if engine is None:
            engines[shard] = engine = make_engine(engine_name)
        engine.subscribe(fragment)
        pos += length
    elif kind == _DELTA_UNSUB[0]:
        sub_id, pos = wire.decode_varint(buf, pos)
        engines[shard].unsubscribe(sub_id)
    else:
        raise WorkerError(f"unknown delta kind: {kind}")
    return epoch, pos


def _worker_main(conn, engine_name: str) -> None:
    """One worker process: apply deltas, execute plans, reply with ids.

    Runs until STOP or until the parent's end of the pipe closes (parent
    death must never leave an orphan matching process).
    """
    engines: dict[int, MatchingEngine] = {}
    epoch = 0
    try:
        while True:
            try:
                msg = conn.recv_bytes()
            except (EOFError, OSError):
                return
            op = msg[0:1]
            if op == _MSG_STOP:
                return
            if op == _MSG_RESET:
                engines.clear()
                epoch, pos = wire.decode_varint(msg, 1)
                count, pos = wire.decode_varint(msg, pos)
                for _ in range(count):
                    _, pos = _apply_delta(msg, pos, engines, engine_name)
                continue
            if op != _MSG_WORK:
                conn.send_bytes(_encode_fail(f"unknown opcode {msg[0]}"))
                continue
            try:
                host_epoch, pos = wire.decode_varint(msg, 1)
                count, pos = wire.decode_varint(msg, pos)
                for _ in range(count):
                    epoch, pos = _apply_delta(msg, pos, engines, engine_name)
                epoch = max(epoch, host_epoch)
                plan_count, pos = wire.decode_varint(msg, pos)
                if not plan_count:
                    continue
                out = [wire.encode_varint(_REPLY_RESULTS),
                       wire.encode_varint(plan_count)]
                for _ in range(plan_count):
                    plan, pos = decode_plan(msg, pos)
                    if plan.epoch > epoch:
                        raise WorkerError(
                            f"stale replica: plan epoch {plan.epoch} > "
                            f"applied epoch {epoch}")
                    engine = engines.get(plan.shard)
                    if engine is None or not len(engine):
                        id_sets = [()] * len(plan.projections)
                    else:
                        id_sets = engine._match_ids_batch(plan.projections)
                    out.append(wire.encode_varint(len(id_sets)))
                    for ids in id_sets:
                        out.append(wire.encode_varint(len(ids)))
                        for sub_id in ids:
                            out.append(wire.encode_varint(sub_id))
                conn.send_bytes(b"".join(out))
            except Exception as exc:      # noqa: BLE001 - reported to parent
                try:
                    conn.send_bytes(_encode_fail(f"{type(exc).__name__}: "
                                                 f"{exc}"))
                except (BrokenPipeError, OSError):
                    return
    finally:
        conn.close()


def _encode_fail(reason: str) -> bytes:
    body = reason.encode("utf-8", "replace")
    return b"".join([wire.encode_varint(_REPLY_FAIL),
                     wire.encode_varint(len(body)), body])


def _parse_results(msg: bytes) -> list[list[list[int]]]:
    """Parse a RESULTS reply into per-plan, per-event id lists."""
    op, pos = wire.decode_varint(msg)
    if op == _REPLY_FAIL:
        length, pos = wire.decode_varint(msg, pos)
        raise WorkerError(bytes(msg[pos:pos + length]).decode(
            "utf-8", "replace"))
    if op != _REPLY_RESULTS:
        raise WorkerError(f"unknown reply opcode {op}")
    plan_count, pos = wire.decode_varint(msg, pos)
    per_plan: list[list[list[int]]] = []
    for _ in range(plan_count):
        event_count, pos = wire.decode_varint(msg, pos)
        events: list[list[int]] = []
        for _ in range(event_count):
            id_count, pos = wire.decode_varint(msg, pos)
            ids: list[int] = []
            for _ in range(id_count):
                sub_id, pos = wire.decode_varint(msg, pos)
                ids.append(sub_id)
            events.append(ids)
        per_plan.append(events)
    return per_plan


# -- the pool ----------------------------------------------------------------

@dataclass
class WorkerPoolStats:
    """Aggregate counters for the pool (per-worker detail in stats())."""

    executes: int = 0          # execute() rounds
    plans: int = 0             # plans shipped (or attempted)
    ipc_bytes_out: int = 0
    ipc_bytes_in: int = 0
    respawns: int = 0          # replacement spawns after a crash/wedge
    inline_fallbacks: int = 0  # plans that ran on host engines instead


class WorkerPoolExecutor:
    """Execute match plans on N worker processes; the multi-core executor.

    Construction binds the pool to a :class:`~repro.core.sharding.
    ShardedMatcher` (it installs itself as the matcher's executor and
    delta sink and spawns the workers immediately).  :meth:`rebind` moves
    a live pool to another matcher — worker replicas are reset from a
    snapshot, not respawned — which is what the differential suite uses
    to reuse one pool across many tables.

    Shard ownership is static (``shard % workers``): deltas and plans for
    one shard always meet the same replica, so replay order per engine is
    total.  Every failure path degrades to correctness, never to error:
    a crashed, wedged or protocol-violating worker is killed, its plans
    for the round run inline on the host engines, and the worker is
    respawned from a fresh snapshot before its next round.
    """

    def __init__(self, matcher, workers: int = 2, *,
                 start_method: str = DEFAULT_START_METHOD,
                 engine: str | None = None,
                 recv_timeout_s: float | None = DEFAULT_RECV_TIMEOUT_S
                 ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.stats = WorkerPoolStats()
        self._recv_timeout_s = recv_timeout_s
        self._ctx = multiprocessing.get_context(start_method)
        self._engine_spec = engine
        self._procs: list = [None] * workers
        self._conns: list = [None] * workers
        self._pending: list[list[bytes]] = [[] for _ in range(workers)]
        self._synced_epoch = [0] * workers
        self._worker_events = [0] * workers
        self._matcher = None
        self._closed = False
        self.bind(matcher)

    # -- binding ------------------------------------------------------------

    def bind(self, matcher) -> None:
        """Attach to ``matcher``: executor + delta sink + replica sync."""
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        spec = self._engine_spec or matcher.engine_spec
        if spec is None:
            raise ConfigurationError(
                "worker replicas need a named engine — build the matcher "
                "with an engine name, or pass engine= to the pool")
        if self._matcher is not None:
            self._release_matcher()
        self._matcher = matcher
        self._bound_spec = spec
        matcher.attach_delta_sink(self._on_delta)
        matcher.set_executor(self)
        for w in range(self.workers):
            self._pending[w] = []
            proc = self._procs[w]
            if proc is not None and proc.is_alive() \
                    and self._conns[w] is not None:
                # A live worker still holds the previous matcher's
                # replicas — reset it in place instead of respawning.
                self._send_reset(w)
            else:
                self._ensure_worker(w)

    rebind = bind

    def _release_matcher(self) -> None:
        matcher, self._matcher = self._matcher, None
        if matcher is not None:
            matcher.detach_delta_sink(self._on_delta)
            if matcher.executor is self:
                matcher.set_executor(None)

    def _on_delta(self, kind: str, shard: int, epoch: int, payload) -> None:
        self._pending[shard % self.workers].append(
            _encode_delta(kind, shard, epoch, payload))

    # -- worker lifecycle ---------------------------------------------------

    def owned_shards(self, worker: int) -> list[int]:
        """Shards statically owned by ``worker`` (``shard % workers``)."""
        return list(range(worker, self._matcher.shard_count, self.workers))

    def _ensure_worker(self, worker: int) -> bool:
        """Spawn (or replace) one worker and sync it from a snapshot."""
        proc = self._procs[worker]
        if proc is not None and proc.is_alive() and \
                self._conns[worker] is not None:
            return True
        if proc is not None:
            self._reap(worker)
            self.stats.respawns += 1
        try:
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._bound_spec),
                name=f"repro-match-worker-{worker}", daemon=True)
            proc.start()
            child_conn.close()
        except (OSError, ValueError):
            return False
        self._procs[worker] = proc
        self._conns[worker] = parent_conn
        return self._send_reset(worker)

    def _send_reset(self, worker: int) -> bool:
        """Replace the worker's replica tables with a fresh host snapshot."""
        matcher = self._matcher
        base = matcher.epoch
        entries = [_encode_delta("sub", sidx, base, fragment)
                   for sidx, fragment
                   in matcher.shard_snapshot(self.owned_shards(worker))]
        parts = [_MSG_RESET, wire.encode_varint(base),
                 wire.encode_varint(len(entries))] + entries
        self._pending[worker] = []
        self._synced_epoch[worker] = base
        return self._send(worker, b"".join(parts))

    def _send(self, worker: int, msg: bytes) -> bool:
        conn = self._conns[worker]
        if conn is None:
            return False
        try:
            conn.send_bytes(msg)
        except (BrokenPipeError, OSError):
            return False
        self.stats.ipc_bytes_out += len(msg)
        return True

    def _reap(self, worker: int) -> None:
        conn = self._conns[worker]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        self._conns[worker] = None
        proc = self._procs[worker]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
                proc.join(0.5)
            if proc.is_alive():
                proc.kill()
                proc.join(0.5)
            self._procs[worker] = None

    def ensure_alive(self) -> int:
        """Respawn any dead worker now (the server's sweep calls this);
        returns the number of live workers."""
        if self._closed:
            return 0
        return sum(1 for w in range(self.workers) if self._ensure_worker(w))

    # -- execution ----------------------------------------------------------

    def execute(self, plans):
        """Run ``plans`` across the pool; exact results, whatever fails.

        Deltas pending for a worker are flushed ahead of its plans on the
        same pipe (and flushed on their own when the worker has no plans
        this round, so replicas never lag more than one round).  Any
        worker failure — dead pipe, wedged reply, protocol error — kills
        that worker, runs its plans inline on the host engines, and
        schedules a respawn.
        """
        stats = self.stats
        stats.executes += 1
        stats.plans += len(plans)
        results: list = [None] * len(plans)
        by_worker: dict[int, list[int]] = {}
        for pos, plan in enumerate(plans):
            by_worker.setdefault(plan.shard % self.workers, []).append(pos)
        awaiting: list[tuple[int, list[int]]] = []
        for worker in range(self.workers):
            positions = by_worker.get(worker, [])
            if not positions and not self._pending[worker]:
                continue
            if self._dispatch(worker, [plans[p] for p in positions]):
                if positions:
                    awaiting.append((worker, positions))
            elif positions:
                self._run_inline(plans, positions, results)
        for worker, positions in awaiting:
            try:
                per_plan = self._collect(worker)
                if len(per_plan) != len(positions):
                    raise WorkerError(
                        f"expected {len(positions)} plan results, "
                        f"got {len(per_plan)}")
                for pos, id_lists in zip(positions, per_plan):
                    results[pos] = id_lists
                    self._worker_events[worker] += len(id_lists)
            except (WorkerError, EOFError, OSError, TimeoutError):
                self._reap(worker)
                self._run_inline(plans, positions, results)
        return results

    def _dispatch(self, worker: int, assigned: list) -> bool:
        """Send pending deltas + plans to one worker; False on failure
        (after one respawn-and-retry attempt)."""
        for _attempt in (0, 1):
            if not self._ensure_worker(worker):
                continue
            parts = [_MSG_WORK,
                     wire.encode_varint(self._matcher.epoch),
                     wire.encode_varint(len(self._pending[worker]))]
            parts += self._pending[worker]
            parts.append(wire.encode_varint(len(assigned)))
            for plan in assigned:
                write_plan(parts, plan)
            if self._send(worker, b"".join(parts)):
                self._pending[worker] = []
                self._synced_epoch[worker] = self._matcher.epoch
                return True
            self._reap(worker)
        return False

    def _collect(self, worker: int) -> list[list[list[int]]]:
        conn = self._conns[worker]
        if conn is None:
            raise WorkerError("worker connection lost")
        if self._recv_timeout_s is not None \
                and not conn.poll(self._recv_timeout_s):
            raise TimeoutError(
                f"worker {worker} reply timed out "
                f"after {self._recv_timeout_s}s")
        msg = conn.recv_bytes()
        self.stats.ipc_bytes_in += len(msg)
        return _parse_results(msg)

    def _run_inline(self, plans, positions: list[int], results: list) -> None:
        """Host-engine fallback: exact results for a failed worker's plans."""
        engines = self._matcher.shard_engines()
        for pos in positions:
            plan = plans[pos]
            results[pos] = engines[plan.shard]._match_ids_batch(
                plan.projections)
        self.stats.inline_fallbacks += len(positions)

    # -- observability / lifecycle ------------------------------------------

    def worker_pids(self) -> list[int | None]:
        return [proc.pid if proc is not None else None
                for proc in self._procs]

    def stats_dict(self) -> dict:
        """JSON-ready pool view (the healthz ``workers`` section)."""
        matcher_epoch = self._matcher.epoch if self._matcher is not None else 0
        return {
            "workers": self.workers,
            "alive": [proc is not None and proc.is_alive()
                      for proc in self._procs],
            "pids": self.worker_pids(),
            "executes": self.stats.executes,
            "plans": self.stats.plans,
            "respawns": self.stats.respawns,
            "inline_fallbacks": self.stats.inline_fallbacks,
            "ipc_bytes_out": self.stats.ipc_bytes_out,
            "ipc_bytes_in": self.stats.ipc_bytes_in,
            "queue_depth": [len(pending) for pending in self._pending],
            "epoch_lag": [max(0, matcher_epoch - synced)
                          for synced in self._synced_epoch],
            "worker_events": list(self._worker_events),
        }

    def close(self) -> None:
        """Drain and stop every worker; restore the inline executor."""
        if self._closed:
            return
        self._closed = True
        for worker in range(self.workers):
            if self._conns[worker] is not None:
                self._send(worker, _MSG_STOP)
        for worker, proc in enumerate(self._procs):
            if proc is not None:
                proc.join(1.0)
            self._reap(worker)
        self._release_matcher()

    def __enter__(self) -> "WorkerPoolExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        alive = sum(1 for p in self._procs if p is not None and p.is_alive())
        return (f"<WorkerPoolExecutor workers={self.workers} alive={alive} "
                f"respawns={self.stats.respawns}>")


def available_cores() -> int:
    """CPUs this process may actually run on (cgroup/affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):          # pragma: no cover - non-linux
        return os.cpu_count() or 1
