"""The event bus.

"The event bus is required to forward events from services in an SMC onto
any interested parties within the SMC which have subscribed to receive the
event" (Section II-C).  This class is the semantics layer the paper builds
*around* its pub/sub mechanism:

* **matching** is delegated to a pluggable
  :class:`~repro.matching.engine.MatchingEngine` (Siena-based or
  forwarding-based, exactly the two generations the paper built);
* **exactly-once-while-member**: per-sender sequence-number watermarks
  drop duplicates; watermarks are erased when a member is purged, so a
  re-admitted device starts a fresh delivery session;
* **per-sender FIFO**: publications arrive in order per sender (the
  reliable channel guarantees it), are matched in arrival order, and are
  dispatched through per-subscriber FIFO paths (a proxy's outbound channel,
  or the scheduler's FIFO for local subscribers);
* **per-component delivery**: a subscriber with several overlapping
  subscriptions still receives each event once ("all events are delivered
  to each interested component exactly once");
* **membership coupling**: proxies register per member; purging a member
  tears down its subscriptions, its proxy and its queued events.

Services co-located with the bus (the policy and discovery services) use
the local API (:meth:`subscribe_local` / :class:`LocalPublisher`); remote
services reach the same code path through their proxies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import (
    BusError,
    DuplicateMemberError,
    NotAMemberError,
    SubscriptionNotFoundError,
)
from repro.ids import ServiceId, service_id_from_name
from repro.matching.engine import MatchingEngine
from repro.matching.filters import Filter, Subscription
from repro.matching.forwarding import ForwardingMatcher
from repro.sim.hosts import CostMeter, NullCostMeter
from repro.sim.kernel import Scheduler
from repro.transport.wire import Value

from repro.core import protocol
from repro.core.events import Event

if TYPE_CHECKING:                                    # pragma: no cover
    from repro.core.proxy import Proxy
    from repro.core.quench import QuenchController

LocalCallback = Callable[[Event], None]


class DeliverMemo:
    """Encode-once cache for one dispatch fan-out.

    Dispatch TLV-encodes each matched event exactly once and shares the
    framed DELIVER payload with every interested service-style proxy —
    at 50 subscribers the old per-proxy ``encode_outbound`` ran the full
    TLV encode 50 times for identical bytes.  Keyed by event identity:
    the memo lives only for one dispatch, during which every event in
    the batch is strongly referenced.
    """

    __slots__ = ("_frames",)

    def __init__(self) -> None:
        self._frames: dict[int, bytes] = {}

    def deliver_frame(self, event: Event) -> bytes:
        """The shared DELIVER framing of ``event``, encoded on first use."""
        framed = self._frames.get(id(event))
        if framed is None:
            framed = protocol.deliver_frame(event)
            self._frames[id(event)] = framed
        return framed


def _run_slice(callback: LocalCallback, events: list["Event"]) -> None:
    """Deliver one local subscriber's FIFO slice of a batch."""
    for event in events:
        callback(event)


@dataclass
class BusStats:
    """Counters the bus maintains (benchmarks and tests read these).

    Every publication *attempt* presented to the bus service increments
    ``published`` and exactly one of ``matched``, ``unmatched``,
    ``duplicates_dropped`` or ``from_unknown_member`` — so

        ``published == matched + unmatched + duplicates_dropped
        + from_unknown_member``

    is an invariant the soak tests assert after thousands of events.
    """

    published: int = 0
    matched: int = 0
    delivered_local: int = 0
    delivered_remote: int = 0
    duplicates_dropped: int = 0
    unmatched: int = 0
    from_unknown_member: int = 0
    subscriptions_active: int = 0
    members_active: int = 0
    purged_members: int = field(default=0, repr=False)


class LocalPublisher:
    """A co-located service's publishing handle.

    Owns a service id and a monotonically increasing sequence counter, so
    events from in-process services carry the same ordering/dedup metadata
    as events from remote devices.
    """

    def __init__(self, bus: "EventBus", sender: ServiceId) -> None:
        self._bus = bus
        self._sender = sender
        self._next_seqno = itertools.count(1)

    @property
    def sender(self) -> ServiceId:
        return self._sender

    def publish(self, event_type: str, attributes: dict[str, Value]
                | None = None) -> Event:
        """Build, stamp and publish an event; returns it."""
        event = Event(event_type, attributes or {}, self._sender,
                      next(self._next_seqno), self._bus.scheduler.now())
        self._bus.publish(event)
        return event

    def publish_batch(self, items: Iterable[tuple[str, dict[str, Value]]]
                      ) -> list[Event]:
        """Stamp a batch of ``(event_type, attributes)`` pairs and publish
        them through the bus's amortised batch pipeline; returns the
        events in publication order."""
        now = self._bus.scheduler.now()
        events = [Event(event_type, attributes or {}, self._sender,
                        next(self._next_seqno), now)
                  for event_type, attributes in items]
        self._bus.publish_batch(events)
        return events


class EventBus:
    """The SMC's central event service."""

    def __init__(self, scheduler: Scheduler,
                 engine: MatchingEngine | None = None,
                 *, name: str = "event-bus") -> None:
        self.scheduler = scheduler
        self.name = name
        self.service_id = service_id_from_name(name)
        self.engine = engine if engine is not None else ForwardingMatcher()
        #: Cost meter for the bus software's own payload copies (simulation
        #: charges them to the core host's CPU; see repro.sim.hosts).
        self.meter: CostMeter = NullCostMeter()
        self.stats = BusStats()
        self.quench: "QuenchController | None" = None

        self._local_publishers: dict[str, LocalPublisher] = {}
        self._local_callbacks: dict[int, LocalCallback] = {}
        # sub id -> owner: None for local, member ServiceId for proxied.
        self._sub_owner: dict[int, ServiceId | None] = {}
        self._member_subs: dict[ServiceId, set[int]] = {}
        self._proxies: dict[ServiceId, "Proxy"] = {}
        self._watermarks: dict[ServiceId, int] = {}
        self._next_sub_id = itertools.count(1)

    # -- local services ----------------------------------------------------

    def local_publisher(self, service_name: str) -> LocalPublisher:
        """Publishing handle for a co-located service.

        Handles are cached by name: the same name always returns the same
        publisher, so its sequence counter — which drives duplicate
        suppression — survives repeated lookups.
        """
        publisher = self._local_publishers.get(service_name)
        if publisher is None:
            publisher = LocalPublisher(self, service_id_from_name(service_name))
            self._local_publishers[service_name] = publisher
        return publisher

    def subscribe_local(self, filters: Filter | Iterable[Filter],
                        callback: LocalCallback) -> int:
        """Subscribe an in-process callback; returns the subscription id."""
        if isinstance(filters, Filter):
            filters = [filters]
        sub_id = next(self._next_sub_id)
        subscription = Subscription(sub_id, self.service_id, filters)
        self.engine.subscribe(subscription)
        self._local_callbacks[sub_id] = callback
        self._sub_owner[sub_id] = None
        self.stats.subscriptions_active = len(self.engine)
        self._notify_quench()
        return sub_id

    def unsubscribe_local(self, sub_id: int) -> None:
        if sub_id not in self._sub_owner:
            raise SubscriptionNotFoundError(f"no subscription with id {sub_id}")
        if self._sub_owner[sub_id] is not None:
            raise BusError(f"subscription {sub_id} is not a local subscription")
        self.engine.unsubscribe(sub_id)
        del self._local_callbacks[sub_id]
        del self._sub_owner[sub_id]
        self.stats.subscriptions_active = len(self.engine)
        self._notify_quench()

    # -- membership / proxies ------------------------------------------------

    def register_proxy(self, proxy: "Proxy") -> None:
        """Attach a member's proxy.  One proxy per member id."""
        member = proxy.member_id
        if member in self._proxies:
            raise DuplicateMemberError(f"member {member} already has a proxy")
        self._proxies[member] = proxy
        self._member_subs.setdefault(member, set())
        self.stats.members_active = len(self._proxies)

    def proxy_of(self, member: ServiceId) -> "Proxy":
        try:
            return self._proxies[member]
        except KeyError:
            raise NotAMemberError(f"no proxy for member {member}") from None

    def is_member(self, member: ServiceId) -> bool:
        return member in self._proxies

    def members(self) -> list[ServiceId]:
        return sorted(self._proxies)

    def unregister_member(self, member: ServiceId) -> None:
        """Tear down a member: subscriptions, dedup state and proxy record.

        Called by the member's proxy as it destroys itself on a Purge
        Member event.  Erasing the watermark is what scopes exactly-once
        delivery to one membership session.
        """
        self._proxies.pop(member, None)
        for sub_id in self._member_subs.pop(member, set()):
            self.engine.unsubscribe(sub_id)
            del self._sub_owner[sub_id]
        self._watermarks.pop(member, None)
        self.stats.members_active = len(self._proxies)
        self.stats.subscriptions_active = len(self.engine)
        self.stats.purged_members += 1
        self._notify_quench()

    # -- member subscriptions (called by proxies) --------------------------

    def subscribe_member(self, member: ServiceId,
                         filters: Iterable[Filter]) -> int:
        """Register a subscription on behalf of a member; returns bus id."""
        if member not in self._proxies:
            raise NotAMemberError(f"{member} is not an SMC member")
        sub_id = next(self._next_sub_id)
        subscription = Subscription(sub_id, member, list(filters))
        self.engine.subscribe(subscription)
        self._sub_owner[sub_id] = member
        self._member_subs[member].add(sub_id)
        self.stats.subscriptions_active = len(self.engine)
        self._notify_quench()
        return sub_id

    def unsubscribe_member(self, member: ServiceId, sub_id: int) -> None:
        if self._sub_owner.get(sub_id) != member:
            raise BusError(
                f"subscription {sub_id} is not owned by member {member}")
        self.engine.unsubscribe(sub_id)
        del self._sub_owner[sub_id]
        self._member_subs[member].discard(sub_id)
        self.stats.subscriptions_active = len(self.engine)
        self._notify_quench()

    def subscriptions_of(self, member: ServiceId) -> set[int]:
        return set(self._member_subs.get(member, set()))

    # -- publication ----------------------------------------------------------

    def publish(self, event: Event) -> bool:
        """Match and dispatch one event.

        Returns True if the event was fresh (not a duplicate).  Publications
        must arrive in per-sender seqno order — both the reliable channel
        and LocalPublisher guarantee this — so a single high-watermark per
        sender implements duplicate suppression.
        """
        self.stats.published += 1
        watermark = self._watermarks.get(event.sender, 0)
        if event.seqno <= watermark:
            self.stats.duplicates_dropped += 1
            return False
        self._watermarks[event.sender] = event.seqno

        matched = self.engine.match(event.attrs_view())
        if not matched:
            self.stats.unmatched += 1
            return True
        self.stats.matched += 1

        # Deliver once per interested *component*, not per subscription.
        # One memo per dispatch: the standard DELIVER framing is encoded
        # at most once however many proxies the fan-out reaches.
        memo = DeliverMemo()
        local_done = set()
        remote_done = set()
        for subscription in matched:
            owner = self._sub_owner.get(subscription.sub_id)
            if owner is None:
                if subscription.sub_id in self._local_callbacks:
                    if subscription.sub_id not in local_done:
                        local_done.add(subscription.sub_id)
                        callback = self._local_callbacks[subscription.sub_id]
                        self.scheduler.call_soon(callback, event)
                        self.stats.delivered_local += 1
            elif owner not in remote_done:
                remote_done.add(owner)
                proxy = self._proxies.get(owner)
                if proxy is not None:
                    proxy.deliver(event, memo)
                    self.stats.delivered_remote += 1
        return True

    def publish_batch(self, events: Sequence[Event]) -> int:
        """Match and dispatch a batch of events; returns the fresh count.

        Semantically equivalent to calling :meth:`publish` per event (the
        differential and soak suites enforce this) but amortised, and
        split into two phases so the matching work can be partitioned
        while the delivery state cannot:

        * **match phase** — one watermark/dedup pass, then one
          :meth:`MatchingEngine.match_batch_ids` call.  This phase is a
          pure function of the subscription table and the event stream,
          which is what lets :class:`~repro.core.sharding.ShardedEventBus`
          fan it out across shards and merge the per-event id sets;
        * **dispatch phase** — shared regardless of how matching was
          partitioned: watermarks, subscription ownership, proxies and
          the quench hook live only on this bus object, so
          exactly-once-per-component and the :class:`BusStats` invariant
          hold unchanged under sharding.

        Deliveries are *coalesced per subscriber* — each interested proxy
        receives its whole slice of the batch in one
        :meth:`~repro.core.proxy.Proxy.deliver_batch` flush (one packet
        per scheduling round instead of one per event), and each local
        callback is scheduled once with its slice.
        """
        fresh = self._dedup_phase(events)
        if not fresh:
            return 0
        matched_ids = self._match_phase(fresh)
        self._dispatch_phase(fresh, matched_ids)
        return len(fresh)

    def _match_phase(self, fresh: Sequence[Event]) -> Sequence[Sequence[int]]:
        """Pure match phase: per-event sorted subscription-id lists.

        A pure function of the subscription table and the event stream —
        no dispatch state is read or written — which is what lets a
        sharded engine fan it out, and a
        :class:`~repro.core.workers.WorkerPoolExecutor` behind it run the
        fan-out on worker processes.  Whatever executes the match, the
        dispatch phase below consumes only the resulting id lists.
        """
        return self.engine.match_batch_ids(
            [event.attrs_view() for event in fresh])

    def _dedup_phase(self, events: Sequence[Event]) -> list[Event]:
        """Watermark pass: count every attempt, keep the fresh events."""
        stats = self.stats
        watermarks = self._watermarks
        fresh: list[Event] = []
        for event in events:
            stats.published += 1
            if event.seqno <= watermarks.get(event.sender, 0):
                stats.duplicates_dropped += 1
                continue
            watermarks[event.sender] = event.seqno
            fresh.append(event)
        return fresh

    def _dispatch_phase(self, fresh: Sequence[Event],
                        matched_ids: Sequence[Sequence[int]]) -> None:
        """Coalesce deliveries: per-subscriber FIFO slices of the batch.

        ``matched_ids`` carries one sorted, duplicate-free subscription-id
        list per fresh event; delivery stays once per interested
        *component* because local ids are unique per event and remote
        owners are deduplicated here.
        """
        stats = self.stats
        local_slices: dict[int, list[Event]] = {}
        remote_slices: dict[ServiceId, list[Event]] = {}
        sub_owner = self._sub_owner
        local_callbacks = self._local_callbacks
        for event, matched in zip(fresh, matched_ids):
            if not matched:
                stats.unmatched += 1
                continue
            stats.matched += 1
            remote_done = set()
            for sub_id in matched:
                owner = sub_owner.get(sub_id)
                if owner is None:
                    if sub_id in local_callbacks:
                        local_slices.setdefault(sub_id, []).append(event)
                        stats.delivered_local += 1
                elif owner not in remote_done:
                    remote_done.add(owner)
                    if owner in self._proxies:
                        remote_slices.setdefault(owner, []).append(event)
                        stats.delivered_remote += 1
        for sub_id, events_slice in local_slices.items():
            # Capture the callback now, exactly as the per-event path's
            # call_soon(callback, event) does: a subscriber that
            # unsubscribes before the scheduler turn still receives events
            # already matched for it.
            self.scheduler.call_soon(_run_slice,
                                     local_callbacks[sub_id], events_slice)
        # One memo across every subscriber's slice: overlapping slices
        # share each event's DELIVER encoding instead of re-running it.
        memo = DeliverMemo()
        for owner, events_slice in remote_slices.items():
            proxy = self._proxies.get(owner)
            if proxy is not None:
                proxy.deliver_batch(events_slice, memo)

    # -- quenching -----------------------------------------------------------

    def attach_quench(self, controller: "QuenchController") -> None:
        """Enable Elvin-style quenching (Section VI future work)."""
        self.quench = controller

    def _notify_quench(self) -> None:
        if self.quench is not None:
            self.quench.on_subscriptions_changed()

    def all_subscriptions(self) -> list[Subscription]:
        return self.engine.subscriptions()

    def __repr__(self) -> str:
        return (f"<EventBus {self.name} engine={self.engine.name} "
                f"members={len(self._proxies)} subs={len(self.engine)}>")
