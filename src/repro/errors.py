"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
applications embedding a Self-Managed Cell can catch library failures with a
single ``except`` clause while still distinguishing subsystem-specific
failures when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class CodecError(ReproError):
    """Raised when encoding or decoding wire data fails."""


class PacketError(CodecError):
    """A packet was malformed: bad magic, truncated, checksum mismatch."""


class TransportError(ReproError):
    """Raised for transport-layer failures (closed transport, bad address)."""


class TransportClosedError(TransportError):
    """An operation was attempted on a transport that has been closed."""


class AddressError(TransportError):
    """An address could not be parsed or is not reachable on this transport."""


class FilterError(ReproError):
    """A content filter was malformed (unknown operator, bad operand type)."""


class MatchingError(ReproError):
    """Raised by matching engines for invalid subscriptions/unsubscriptions."""


class SubscriptionNotFoundError(MatchingError):
    """An unsubscribe referenced a subscription id that is not registered."""


class BusError(ReproError):
    """Raised by the event bus for protocol violations."""


class NotAMemberError(BusError):
    """An operation referenced a service that is not an SMC member."""


class DuplicateMemberError(BusError):
    """A member id was admitted twice without an intervening purge."""


class DiscoveryError(ReproError):
    """Raised by the discovery service."""


class AuthenticationError(DiscoveryError):
    """A device failed SMC admission authentication."""


class PolicyError(ReproError):
    """Raised by the policy service."""


class PolicyParseError(PolicyError):
    """The Ponder-lite policy source text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PolicyConflictError(PolicyError):
    """Two policies with the same name were loaded into one engine."""


class AuthorisationDenied(PolicyError):
    """An obligation action was blocked by a negative authorisation policy."""


class SimulationError(ReproError):
    """Raised by the simulation kernel (e.g. scheduling in the past)."""


class FederationError(ReproError):
    """Raised when SMC peering/composition fails."""
