"""repro-lint: the repository's invariants as executable checks.

Seven PRs of this reproduction accumulated rules that previously lived
only in reviewer memory — the simulated clock discipline, RFC-1982 serial
arithmetic, the zero-copy wire path, codec symmetry, and worker fork
safety.  This package turns each into an AST-visitor rule with per-line
suppressions, a ``file:line`` findings report, and a CLI
(``python -m repro.analysis`` / ``repro-lint``) that exits non-zero on
findings so CI can gate on it.  The paper's autonomic thesis applied to
the codebase itself: the system polices its own health, including the
health of its source.

Public surface:

* :func:`repro.analysis.cli.main` — the CLI entry point;
* :class:`repro.analysis.engine.Analyzer` /
  :class:`repro.analysis.engine.Finding` — programmatic use;
* :data:`repro.analysis.rules.ALL_RULES` — the rule catalogue.
"""

from repro.analysis.engine import Analyzer, Finding, Rule
from repro.analysis.rules import ALL_RULES

__all__ = ["ALL_RULES", "Analyzer", "Finding", "Rule"]
