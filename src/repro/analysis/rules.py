"""The repro-lint rules: this codebase's hard-won invariants, as ASTs.

Each rule encodes a bug class a past PR actually hit (see the ROADMAP's
"Enforced invariants" section for the history).  Rules are deliberately
scoped by path pattern to the modules where the invariant is load-bearing,
and every deliberate exception in the tree carries a
``# repro-lint: ignore[RLxxx]`` suppression with a one-line justification.

==========  ==============================================================
rule id     invariant
==========  ==============================================================
RL001       wall-clock discipline: simulated-path code never reads the
            real clock or sleeps — only the scheduler clock (PR 6's
            "deaf broadcast socket" bug class: code that works on the
            virtual clock and silently fails on real timers).
RL002       serial arithmetic: seq/ack ordering in ``transport/`` goes
            through the RFC-1982 helpers, never raw ``<``/``>``/``-``
            (PR 2's 2^32 wraparound misclassification bug class).
RL003       zero-copy hot path: no ``bytes()`` materialisation, byte
            ``+``-concatenation or byte-join off the send boundary in the
            wire/packet/bus dispatch modules (PR 5's copy-per-layer bug
            class); ``encode*`` functions are the designated join points.
RL004       codec symmetry: every ``encode_X`` has ``write_X`` and
            ``decode_X`` siblings, and every BusOp opcode appears in the
            protocol module's opcode table (drift between the three
            codec faces is how decoders rot).
RL005       fork safety: no pickle import reachable from the worker-pool
            hot path, and every socket created in the deployment layer is
            ``set_inheritable(False)`` (PR 7's spawn-clean worker rules).
==========  ==============================================================
"""

from __future__ import annotations

import ast
import re

from typing import Iterator

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    identifier_segments,
    matches_any,
)


# ---------------------------------------------------------------------------
# RL001 — wall-clock discipline
# ---------------------------------------------------------------------------

#: Call targets that read the real clock or block on it.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``from time import <these>`` is flagged at the import itself: once the
#: bare name escapes into a variable the call sites are unresolvable.
_WALL_CLOCK_FROM_TIME = frozenset({
    name.split(".", 1)[1] for name in _WALL_CLOCK_CALLS
    if name.startswith("time.")
})

#: Paths where wall-clock time is the point, not a bug.
_RL001_EXEMPT = (
    "sim/kernel.py",        # RealtimeScheduler is *the* wall-clock seam
    "deploy/",              # real sockets, real timers by design
    "benchmarks/",          # wall-clock measurement harnesses
    "examples/",            # demos run on real time
    "tests/",               # test timeouts and harness plumbing
    "conftest.py",
    "setup.py",
)


class _AliasTracker(ast.NodeVisitor):
    """Shared import-alias resolution for call-site rules."""

    def __init__(self) -> None:
        #: local name -> canonical dotted prefix it stands for.
        self.aliases: dict[str, str] = {}

    def record_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0])

    def record_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}")

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a call target, through import aliases."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        first, _, rest = dotted.partition(".")
        canonical = self.aliases.get(first)
        if canonical is None:
            return None
        return f"{canonical}.{rest}" if rest else canonical


class WallClockRule(Rule):
    """RL001: simulated-path code must use the scheduler clock."""

    rule_id = "RL001"
    title = "wall-clock discipline (scheduler clock only)"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if matches_any(module.rel, _RL001_EXEMPT):
            return
        tracker = _AliasTracker()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                tracker.record_import(node)
            elif isinstance(node, ast.ImportFrom):
                tracker.record_import_from(node)
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_FROM_TIME:
                            yield self.finding(
                                module, node,
                                f"wall-clock import 'from time import "
                                f"{alias.name}' outside the real-time "
                                f"layers; use the scheduler clock")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = tracker.resolve(node.func)
            if canonical in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"wall-clock call {canonical}() outside the real-time "
                    f"layers; use the scheduler clock (Scheduler.now / "
                    f"call_later)")


# ---------------------------------------------------------------------------
# RL002 — RFC-1982 serial arithmetic on sequence numbers
# ---------------------------------------------------------------------------

_RL002_SCOPE = ("transport/",)
_SEQ_SEGMENTS = frozenset({"seq", "seqs", "seqno", "ack"})
_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _is_seqish(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return bool(_SEQ_SEGMENTS & set(identifier_segments(name)))


def _is_bound_constant(node: ast.AST) -> bool:
    """Int literals and UPPER_CASE constants: range checks, not ordering."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
        return isinstance(node.operand.value, int)
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name is not None and name.isupper()


class SerialArithmeticRule(Rule):
    """RL002: raw ordering/subtraction on seq/ack names in transport/."""

    rule_id = "RL002"
    title = "RFC-1982 serial arithmetic for seq/ack math"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not matches_any(module.rel, _RL002_SCOPE):
            return
        yield from self._walk(module, module.tree, in_serial_helper=False)

    def _walk(self, module: ModuleInfo, node: ast.AST, *,
              in_serial_helper: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                helper = in_serial_helper or child.name.startswith("serial_")
                yield from self._walk(module, child, in_serial_helper=helper)
                continue
            if not in_serial_helper:
                if isinstance(child, ast.Compare):
                    yield from self._check_compare(module, child)
                elif (isinstance(child, ast.BinOp)
                        and isinstance(child.op, ast.Sub)):
                    yield from self._check_sub(module, child)
            yield from self._walk(module, child,
                                  in_serial_helper=in_serial_helper)

    def _check_compare(self, module: ModuleInfo,
                       node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, _ORDERING_OPS):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_bound_constant(left) or _is_bound_constant(right):
                continue                      # range validation, not ordering
            if _is_seqish(left) or _is_seqish(right):
                yield self.finding(
                    module, node,
                    "raw ordering comparison on a sequence-number value; "
                    "use serial_lt/serial_leq (RFC 1982) — raw compares "
                    "misclassify at the 2^32 wrap")

    def _check_sub(self, module: ModuleInfo,
                   node: ast.BinOp) -> Iterator[Finding]:
        if _is_bound_constant(node.left) or _is_bound_constant(node.right):
            return
        if _is_seqish(node.left) or _is_seqish(node.right):
            yield self.finding(
                module, node,
                "raw subtraction on a sequence-number value; distances "
                "must be computed in serial space (RFC 1982)")


# ---------------------------------------------------------------------------
# RL003 — zero-copy hot path
# ---------------------------------------------------------------------------

_RL003_SCOPE = ("transport/wire.py", "transport/packets.py", "core/bus.py")
#: Attribute calls that produce fresh byte buffers.
_BYTE_PRODUCER_ATTRS = frozenset({"pack", "to_bytes", "to_bytes48", "tobytes"})


def _is_byte_producer(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id.startswith("encode_"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _BYTE_PRODUCER_ATTRS or func.attr.startswith(
                    "encode_"):
                return True
            if func.attr == "join" and _is_byte_producer(func.value):
                return True
    return False


class ZeroCopyRule(Rule):
    """RL003: copies stay at the designated encode/send boundary."""

    rule_id = "RL003"
    title = "zero-copy hot path (join once, at the send boundary)"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not matches_any(module.rel, _RL003_SCOPE):
            return
        yield from self._walk(module, module.tree, in_function=False,
                              at_boundary=False)

    def _walk(self, module: ModuleInfo, node: ast.AST, *, in_function: bool,
              at_boundary: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                boundary = (at_boundary
                            or child.name.lstrip("_").startswith("encode"))
                yield from self._walk(module, child, in_function=True,
                                      at_boundary=boundary)
                continue
            if in_function and not at_boundary:
                yield from self._check_node(module, child)
            yield from self._walk(module, child, in_function=in_function,
                                  at_boundary=at_boundary)

    def _check_node(self, module: ModuleInfo,
                    node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name) and func.id == "bytes"
                    and len(node.args) == 1
                    and not isinstance(node.args[0],
                                       (ast.Tuple, ast.List, ast.Constant))):
                yield self.finding(
                    module, node,
                    "bytes() materialisation off the send boundary; pass "
                    "buffers through or append chunks to a write_* list")
            elif (isinstance(func, ast.Attribute) and func.attr == "join"
                    and isinstance(func.value, ast.Constant)
                    and isinstance(func.value.value, bytes)):
                yield self.finding(
                    module, node,
                    "byte join off the send boundary; only encode*/send "
                    "functions may join — stack chunks instead")
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            if _is_byte_producer(node.left) or _is_byte_producer(node.right):
                yield self.finding(
                    module, node,
                    "byte concatenation off the send boundary; append "
                    "chunks to a write_* list instead of copying")
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            if _is_byte_producer(node.value):
                yield self.finding(
                    module, node,
                    "byte concatenation off the send boundary; append "
                    "chunks to a write_* list instead of copying")


# ---------------------------------------------------------------------------
# RL004 — codec symmetry
# ---------------------------------------------------------------------------

_RL004_SCOPE = ("transport/wire.py", "core/events.py", "matching/plan.py",
                "matching/filters.py")
#: (module pattern, enum class) pairs whose members must appear in the
#: module docstring's opcode table.
_OPCODE_TABLES = (("core/protocol.py", "BusOp"),
                  ("transport/packets.py", "PacketType"))


class CodecSymmetryRule(Rule):
    """RL004: encode_X implies write_X + decode_X, opcodes stay documented."""

    rule_id = "RL004"
    title = "codec symmetry (encode/write/decode triples, opcode table)"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if matches_any(module.rel, _RL004_SCOPE):
            yield from self._check_triples(module)
        for pattern, class_name in _OPCODE_TABLES:
            if matches_any(module.rel, (pattern,)):
                yield from self._check_opcode_table(module, class_name)

    def _check_triples(self, module: ModuleInfo) -> Iterator[Finding]:
        functions = {node.name: node for node in module.tree.body
                     if isinstance(node, ast.FunctionDef)}
        for name, node in functions.items():
            if not name.startswith("encode_"):
                continue
            stem = name[len("encode_"):]
            for sibling in (f"write_{stem}", f"decode_{stem}"):
                if sibling not in functions:
                    yield self.finding(
                        module, node,
                        f"{name} has no {sibling} sibling; the wire codec "
                        f"keeps encode/write/decode triples in lockstep "
                        f"(zero-copy writers, symmetric decoders)")

    def _check_opcode_table(self, module: ModuleInfo,
                            class_name: str) -> Iterator[Finding]:
        docstring = ast.get_docstring(module.tree) or ""
        for node in module.tree.body:
            if not (isinstance(node, ast.ClassDef)
                    and node.name == class_name):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (isinstance(target, ast.Name)
                            and not target.id.startswith("_")
                            and not re.search(
                                rf"\b{re.escape(target.id)}\b", docstring)):
                        yield self.finding(
                            module, stmt,
                            f"opcode {class_name}.{target.id} is missing "
                            f"from the module docstring's opcode table; "
                            f"document its wire body before shipping it")


# ---------------------------------------------------------------------------
# RL005 — fork safety
# ---------------------------------------------------------------------------

#: Modules whose transitive (repo-internal) import closure must stay
#: pickle-free: everything a worker process replays on its hot path.
_RL005_ROOTS = ("core/workers.py", "matching/plan.py")
_PICKLE_MODULES = frozenset({"pickle", "cPickle", "dill", "cloudpickle"})
#: Where sockets must be created non-inheritable.
_RL005_SOCKET_SCOPE = ("deploy/", "transport/udp.py")


def _imported_modules(tree: ast.Module) -> list[tuple[str, ast.stmt]]:
    """Every (dotted module, import node) a module references."""
    out: list[tuple[str, ast.stmt]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append((alias.name, node))
        elif isinstance(node, ast.ImportFrom) and node.module:
            out.append((node.module, node))
            for alias in node.names:
                # ``from pkg import mod`` may name a submodule.
                out.append((f"{node.module}.{alias.name}", node))
    return out


def _resolve_internal(project: Project, dotted: str) -> ModuleInfo | None:
    """Map a dotted import onto an analyzed file, if it names one.

    Tries progressively shorter tails so ``repro.matching.plan`` resolves
    both over the real tree (``src/repro/matching/plan.py``) and over a
    fixture tree rooted below the package (``matching/plan.py``).
    """
    parts = dotted.split(".")
    for start in range(len(parts)):
        tail = parts[start:]
        if not tail:
            break
        for suffix in ("/".join(tail) + ".py",
                       "/".join(tail) + "/__init__.py"):
            matches = project.by_pattern(suffix)
            if len(matches) == 1:
                return matches[0]
    return None


class ForkSafetyRule(Rule):
    """RL005: pickle-free worker hot path, non-inheritable sockets."""

    rule_id = "RL005"
    title = "fork safety (no pickle on the worker path, fds stay private)"

    def check_project(self, project: Project) -> Iterator[Finding]:
        roots = [module for module in project.modules
                 if matches_any(module.rel, _RL005_ROOTS)]
        seen: set[str] = set()
        queue: list[tuple[ModuleInfo, str]] = [
            (root, root.rel) for root in roots]
        while queue:
            module, chain = queue.pop(0)
            if module.path in seen:
                continue
            seen.add(module.path)
            for dotted, node in _imported_modules(module.tree):
                if dotted.split(".")[0] in _PICKLE_MODULES:
                    yield self.finding(
                        module, node,
                        f"pickle-family import ({dotted}) reachable from "
                        f"the worker hot path via {chain}; everything "
                        f"crossing the worker pipe must use the TLV codec")
                    continue
                target = _resolve_internal(project, dotted)
                if target is not None and target.path not in seen:
                    queue.append((target, f"{chain} -> {target.rel}"))

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not matches_any(module.rel, _RL005_SOCKET_SCOPE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    def _check_function(self, module: ModuleInfo,
                        func: ast.FunctionDef | ast.AsyncFunctionDef,
                        ) -> Iterator[Finding]:
        creations: list[tuple[str | None, ast.AST]] = []
        protected: set[str] = set()
        assigned_calls: set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if (isinstance(node.value, ast.Call)
                        and dotted_name(node.value.func) == "socket.socket"):
                    assigned_calls.add(id(node.value))
                    creations.append((dotted_name(node.targets[0]),
                                      node.value))
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if (dotted_name(node.func) == "socket.socket"
                    and id(node) not in assigned_calls):
                # Anonymous socket: nothing can set_inheritable on it.
                creations.append((None, node))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "set_inheritable"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is False):
                receiver = dotted_name(node.func.value)
                if receiver is not None:
                    protected.add(receiver)
        for target, node in creations:
            if target is None or target not in protected:
                yield self.finding(
                    module, node,
                    "socket created without set_inheritable(False) in the "
                    "same function; spawned workers must not inherit fds "
                    "(PEP 446 belt-and-braces)")


ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    SerialArithmeticRule(),
    ZeroCopyRule(),
    CodecSymmetryRule(),
    ForkSafetyRule(),
)
