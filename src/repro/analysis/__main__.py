"""``python -m repro.analysis`` — run repro-lint."""

import sys

from repro.analysis.cli import main

sys.exit(main())
